//! Network serving-tier integration tests: the three tiers over real TCP
//! sockets, driven through overload, socket faults and graceful drain.
//!
//! The degradation contract under test, end to end:
//!
//! - every response satisfies the coverage identity
//!   `ok + timed_out + failed + shed == total` — no partition is ever
//!   lost *silently*, no matter what the sockets do;
//! - overload is answered by fast `Overloaded` rejections at admission,
//!   not by queueing into collapse;
//! - a graceful drain answers in-flight work, sheds new work, then closes
//!   the listener.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use jdvs::core::{IndexConfig, VisualIndex};
use jdvs::metrics::ResilienceMetrics;
use jdvs::net::admission::AdmissionConfig;
use jdvs::net::balancer::Balancer;
use jdvs::net::rpc::RpcError;
use jdvs::net::tcp::{TcpChannel, TcpTier};
use jdvs::search::broker::BrokerService;
use jdvs::search::protocol::{FanoutQuery, PartialResponse, SearchQuery, SearchResponse};
use jdvs::search::searcher::SearcherService;
use jdvs::search::topology::TopologyConfig;
use jdvs::search::{wire, BatchConfig, NetServing, NetServingConfig, SearchClient};
use jdvs::storage::{ProductAttributes, ProductEvent, ProductId};
use jdvs::vector::rng::Xoshiro256;
use jdvs::vector::Vector;
use jdvs::workload::catalog::CatalogConfig;
use jdvs::workload::openloop::{OpenLoopConfig, OpenLoopDriver, OpenLoopOutcome};
use jdvs::workload::queries::{FilteredQueryGenerator, QueryGenerator};
use jdvs::workload::scenario::{World, WorldConfig};
use jdvs::workload::FaultProxy;

/// The overload test saturates every core on purpose; the fault-injection
/// and drain tests assert wall-clock bounds on healthy calls. Running them
/// concurrently lets the saturator starve a healthy fan-out past its
/// deadline, which fails the timing assertions for reasons that have
/// nothing to do with the serving tier. Tests that either saturate the
/// machine or depend on it being responsive take this lock.
fn timing_sensitive() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn serving_world() -> World {
    World::build(WorldConfig {
        catalog: CatalogConfig {
            num_products: 60,
            num_clusters: 6,
            ..Default::default()
        },
        topology: TopologyConfig {
            index: IndexConfig {
                dim: 16,
                num_lists: 4,
                nprobe: 4,
                initial_list_capacity: 16,
                ..Default::default()
            },
            num_partitions: 4,
            replicas_per_partition: 1,
            num_broker_groups: 2,
            broker_replicas: 1,
            num_blenders: 2,
            ranking: jdvs::search::RankingPolicy::similarity_only(),
            ..Default::default()
        },
        seed: 0x5E17,
        ..Default::default()
    })
}

/// Every successful response must satisfy the coverage identity.
fn assert_identity(resp: &SearchResponse) {
    assert_eq!(
        resp.partitions_ok
            + resp.partitions_timed_out
            + resp.partitions_failed
            + resp.partitions_shed,
        resp.partitions_total,
        "accounting identity violated: {resp:?}"
    );
}

#[test]
fn network_tiers_answer_like_the_in_process_stack() {
    let world = serving_world();
    let serving = NetServing::over(world.topology(), NetServingConfig::default()).unwrap();
    let net_client = serving.client();
    let generator = QueryGenerator::new(world.catalog(), 11);

    for _ in 0..20 {
        let (query, _) = generator.next_query(world.images(), 5);
        let resp = net_client.search(query.clone()).unwrap();
        assert_identity(&resp);
        assert!(
            resp.is_complete(),
            "healthy stack must cover all partitions"
        );
        assert!(!resp.results.is_empty());
        // Same query through the in-process stack ranks the same top hit.
        let local = world.topology().search(query).unwrap();
        assert_eq!(
            resp.results[0].hit.product_id, local.results[0].hit.product_id,
            "network and in-process tiers serve the same index"
        );
    }
}

#[test]
fn realtime_updates_become_visible_over_the_network() {
    let world = serving_world();
    let serving = NetServing::over(world.topology(), NetServingConfig::default()).unwrap();
    let client = serving.client();

    // Publish a brand-new image through the topology's queue; the network
    // tiers serve the same hot-swappable handles, so it must become
    // searchable without touching the TCP stack.
    let url = "fresh/over/tcp.jpg".to_string();
    world.images().put_synthetic(&url, 3);
    world.topology().publish(ProductEvent::AddProduct {
        product_id: ProductId(500_000),
        images: vec![ProductAttributes::new(
            ProductId(500_000),
            1,
            100,
            1,
            url.clone(),
        )],
    });
    world.topology().wait_for_freshness(Duration::from_secs(30));

    let resp = client.search(SearchQuery::by_image_url(url, 3)).unwrap();
    assert_identity(&resp);
    assert_eq!(
        resp.results[0].hit.product_id,
        ProductId(500_000),
        "freshly indexed image must be its own nearest neighbor over TCP"
    );
}

#[test]
fn overload_sheds_fast_with_exact_accounting() {
    let _serial = timing_sensitive();
    let world = serving_world();
    // A deliberately tiny front door so a modest burst overloads it:
    // 1 worker, queue of 2, and a 200/s rate limit at the blender tier.
    let serving = NetServing::over(
        world.topology(),
        NetServingConfig {
            blender_admission: AdmissionConfig {
                rate_limit: Some(200.0),
                burst: 8,
                max_concurrency: 1,
                queue_capacity: 2,
                ..AdmissionConfig::default()
            },
            ..NetServingConfig::default()
        },
    )
    .unwrap();
    let client = serving.client();
    let generator = QueryGenerator::new(world.catalog(), 13);
    let violations = AtomicU64::new(0);

    let report = OpenLoopDriver::run(
        OpenLoopConfig {
            rate: 800.0,
            duration: Duration::from_millis(1500),
            workers: 24,
        },
        || {
            let (query, _) = generator.next_query(world.images(), 4);
            match client.search(query) {
                Ok(resp) => {
                    if resp.partitions_ok
                        + resp.partitions_timed_out
                        + resp.partitions_failed
                        + resp.partitions_shed
                        != resp.partitions_total
                    {
                        violations.fetch_add(1, Ordering::Relaxed);
                    }
                    OpenLoopOutcome::Accepted
                }
                Err(RpcError::Overloaded) => OpenLoopOutcome::Shed,
                Err(_) => OpenLoopOutcome::Failed,
            }
        },
    );

    assert_eq!(violations.load(Ordering::Relaxed), 0, "accounting violated");
    assert!(
        report.shed > 0,
        "4x the rate limit must shed: {}",
        report.summary()
    );
    assert!(
        report.accepted > 0,
        "shedding must not starve admitted work"
    );
    // Sheds are answered at admission, before any fan-out. The typical
    // shed is near-instant; the tail bound is loose because the observed
    // latency includes connects and scheduler jitter from 24 saturating
    // load workers, but even the tail must sit far inside the 5s client
    // deadline — a shed never rides the queue.
    let shed_p50 = report.shed_latency.percentile(0.50);
    let shed_p99 = report.shed_latency.percentile(0.99);
    assert!(
        shed_p50 < Duration::from_millis(100),
        "typical shed must be fast, p50 was {shed_p50:?}"
    );
    assert!(
        shed_p99 < Duration::from_millis(1000),
        "sheds must not queue, p99 was {shed_p99:?}"
    );
    // The blender tier's own counters saw the sheds.
    let front = serving.blender_serving();
    assert!(front.total_shed() > 0, "tier counters must record sheds");
    assert_eq!(front.admitted, front.completed, "no request leaked a slot");
}

#[test]
fn searcher_crash_degrades_with_partition_accounting() {
    let world = serving_world();
    let mut serving = NetServing::over(world.topology(), NetServingConfig::default()).unwrap();
    let client = serving.client();
    let generator = QueryGenerator::new(world.catalog(), 17);

    // Healthy first.
    let (q, _) = generator.next_query(world.images(), 4);
    assert!(client.search(q).unwrap().is_complete());

    // Kill partition 2's only searcher listener: its connections are
    // severed and new connects refused, while the other partitions (and
    // the wrapped topology) keep serving.
    serving.crash_searcher(2, 0);

    let mut degraded = 0;
    for _ in 0..10 {
        let (q, _) = generator.next_query(world.images(), 4);
        let resp = client.search(q).unwrap();
        assert_identity(&resp);
        if !resp.is_complete() {
            degraded += 1;
            assert!(
                resp.partitions_failed + resp.partitions_timed_out >= 1,
                "the lost partition must be accounted as failed/timed out: {resp:?}"
            );
            assert!(
                resp.results.iter().all(|r| r.hit.partition != 2),
                "no hit may claim to come from the dead partition"
            );
        }
    }
    assert!(
        degraded > 0,
        "losing 1 of 4 partitions must show in coverage"
    );
}

#[test]
fn socket_faults_never_violate_accounting() {
    let _serial = timing_sensitive();
    let world = serving_world();
    let serving = NetServing::over(world.topology(), NetServingConfig::default()).unwrap();
    let generator = QueryGenerator::new(world.catalog(), 19);

    // Dial the blender tier through a fault-injecting proxy.
    let blender = serving.blender_addrs()[0];
    let proxy = FaultProxy::spawn(blender).unwrap();
    fn enc(q: &SearchQuery) -> Vec<u8> {
        wire::encode_search_query(q)
    }
    fn dec(b: &[u8]) -> Option<SearchResponse> {
        wire::decode_search_response(b).ok()
    }
    let channel = TcpChannel::new("proxied", proxy.addr(), enc, dec);
    let client = SearchClient::new(
        Arc::new(Balancer::new(vec![channel])),
        Duration::from_millis(2000),
    );

    let check = |expect_ok: bool| {
        let (q, _) = generator.next_query(world.images(), 3);
        match client.search(q) {
            Ok(resp) => {
                assert_identity(&resp);
                true
            }
            Err(e) => {
                assert!(
                    expect_ok || e != RpcError::Overloaded,
                    "faults are not sheds: {e}"
                );
                false
            }
        }
    };

    // Recovery checks tolerate a transient timeout from scheduling jitter
    // elsewhere in the test process; a real fault fails all attempts.
    let recovers = || (0..3).any(|_| check(true));

    // Healthy through the proxy.
    assert!(check(true), "healthy proxy must pass queries");

    // Stall: bytes held, the client's deadline expires, no partial junk.
    proxy.set_stall(true);
    assert!(!check(false), "stalled proxy must fail the call");
    proxy.clear();
    assert!(recovers(), "recovery after stall");

    // Mid-frame cut: the connection dies partway through a frame; the
    // CRC-checked framing must turn that into a clean error, never a
    // misparse.
    proxy.set_cut_after(9);
    assert!(!check(false), "mid-frame cut must fail the call");
    proxy.clear();
    assert!(recovers(), "recovery after cut");

    // Refusal hits *new* connections: a fresh client (empty connection
    // pool) cannot get through, while the established client's pooled
    // connection keeps working — refusing connects is not a reset.
    proxy.set_refuse(true);
    let fresh = SearchClient::new(
        Arc::new(Balancer::new(vec![TcpChannel::new(
            "refused",
            proxy.addr(),
            enc,
            dec,
        )])),
        Duration::from_millis(2000),
    );
    let (q, _) = generator.next_query(world.images(), 3);
    assert!(
        fresh.search(q).is_err(),
        "refused connection must fail the call"
    );
    assert!(recovers(), "pooled connection survives a refusal fault");
    proxy.clear();
    assert!(recovers(), "recovery after refusal");
}

#[test]
fn batched_searcher_tier_is_transparent_and_observable() {
    let _serial = timing_sensitive();
    let world = serving_world();
    // Batching on: co-arriving fan-outs at each searcher coalesce into one
    // engine call. Responses must be indistinguishable from the unbatched
    // stack; only the tier's histograms show the coalescing.
    let serving = NetServing::over(
        world.topology(),
        NetServingConfig {
            searcher_batch: BatchConfig {
                window: Duration::from_millis(40),
                max_batch: 8,
                min_hold_budget: Duration::ZERO,
            },
            ..NetServingConfig::default()
        },
    )
    .unwrap();
    let client = serving.client();
    let generator = QueryGenerator::new(world.catalog(), 29);

    for _round in 0..3 {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let client = client.clone();
                let (q, _) = generator.next_query(world.images(), 5);
                std::thread::spawn(move || (q.clone(), client.search(q)))
            })
            .collect();
        for h in handles {
            let (q, resp) = h.join().unwrap();
            let resp = resp.expect("healthy batched stack must answer");
            assert_identity(&resp);
            assert!(resp.is_complete(), "batching must not cost coverage");
            assert!(!resp.results.is_empty());
            // Demux check: each connection got *its own* query's answer,
            // identical to the unbatched in-process stack.
            let local = world.topology().search(q).unwrap();
            assert_eq!(
                resp.results[0].hit.product_id, local.results[0].hit.product_id,
                "batched tier must rank the same top hit"
            );
        }
    }

    let snap = serving.searcher_serving();
    assert!(
        snap.batch_depth.count() > 0,
        "engine calls must be recorded"
    );
    // 24 client queries fan out to all 4 partitions = 96 searcher requests;
    // each must be accounted in exactly one engine call (retries on
    // transient timeouts can only add).
    let members = (snap.batch_depth.mean_us() * snap.batch_depth.count() as f64).round() as u64;
    assert!(members >= 96, "only {members} batch members recorded");
    assert!(
        snap.batch_depth.max_us() >= 2,
        "8 co-arriving queries inside a 40ms window must coalesce"
    );
    assert!(snap.batch_wait.count() > 0, "held members must record wait");
    assert!(
        snap.batch_wait.max_us() < 200_000,
        "no member may be held far past the window"
    );
}

#[test]
fn hedged_broker_over_tcp_beats_stalled_searcher() {
    let _serial = timing_sensitive();
    // One partition, two searcher replicas over the same index; replica 0
    // sits behind a fault proxy. A fresh balancer tries target 0 first, so
    // stalling the proxy forces the broker's hedge to win via replica 1.
    const DIM: usize = 8;
    let mut rng = Xoshiro256::seed_from(41);
    let data: Vec<Vector> = (0..80)
        .map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect())
        .collect();
    let index = Arc::new(VisualIndex::bootstrap(
        IndexConfig {
            dim: DIM,
            num_lists: 4,
            nprobe: 4,
            ..Default::default()
        },
        &data,
    ));
    for (i, v) in data.iter().enumerate() {
        index
            .insert(
                v.clone(),
                ProductAttributes::new(ProductId(i as u64), 1, 1, 1, format!("hedge/u{i}")),
            )
            .unwrap();
    }
    index.flush();

    fn enc(q: &FanoutQuery) -> Vec<u8> {
        wire::encode_fanout_query(q)
    }
    fn dec(b: &[u8]) -> Option<PartialResponse> {
        wire::decode_partial_response(b).ok()
    }
    let replica0 = TcpTier::spawn(
        "hedge-s0",
        SearcherService::for_index(0, Arc::clone(&index)),
        |b| wire::decode_fanout_query(b).ok(),
        wire::encode_partial_response,
        AdmissionConfig::default(),
    )
    .unwrap();
    let replica1 = TcpTier::spawn(
        "hedge-s1",
        SearcherService::for_index(0, Arc::clone(&index)),
        |b| wire::decode_fanout_query(b).ok(),
        wire::encode_partial_response,
        AdmissionConfig::default(),
    )
    .unwrap();
    let proxy = FaultProxy::spawn(replica0.local_addr()).unwrap();

    let resilience = Arc::new(ResilienceMetrics::new());
    let balancer = Balancer::new(vec![
        TcpChannel::new("proxied-r0", proxy.addr(), enc, dec),
        TcpChannel::new("healthy-r1", replica1.local_addr(), enc, dec),
    ])
    .with_metrics(Arc::clone(&resilience));
    let broker = BrokerService::new(0, vec![balancer], Duration::from_secs(3))
        .with_metrics(Arc::clone(&resilience))
        .with_hedging(Duration::from_millis(100));

    let query = FanoutQuery {
        features: data[5].as_slice().to_vec(),
        k: 5,
        nprobe: Some(4),
        compressed: false,
        budget: None,
        filter: None,
    };

    // Stall the proxy: bytes are read but never answered, so the primary
    // call hangs against its full 3s deadline while the hedge completes.
    proxy.set_stall(true);
    let start = Instant::now();
    let resp = broker.execute(&query);
    let elapsed = start.elapsed();

    assert_eq!(
        resp.partitions_ok
            + resp.partitions_timed_out
            + resp.partitions_failed
            + resp.partitions_shed,
        resp.partitions_total,
        "accounting identity violated: {resp:?}"
    );
    assert!(
        resp.is_complete(),
        "the hedge must deliver full coverage around the stalled replica: {resp:?}"
    );
    assert_eq!(resp.hits.len(), 5);
    assert!(
        elapsed < Duration::from_millis(2500),
        "hedged call took {elapsed:?}; it must not ride out the primary's 3s deadline"
    );
    let r = resilience.snapshot();
    assert!(r.hedges_launched >= 1, "no hedge launched: {r:?}");
    assert!(r.hedges_won >= 1, "the hedge must have won: {r:?}");
    proxy.clear();
}

#[test]
fn graceful_drain_finishes_work_sheds_new_and_closes() {
    let _serial = timing_sensitive();
    let world = serving_world();
    let mut serving = NetServing::over(world.topology(), NetServingConfig::default()).unwrap();
    let client = serving.client();
    let generator = QueryGenerator::new(world.catalog(), 23);

    // Background load while the stack drains: every query either
    // completes with exact accounting, is shed, or fails cleanly because
    // the listener closed under it — never a bogus response.
    let stop = Arc::new(AtomicBool::new(false));
    let bogus = Arc::new(AtomicU64::new(0));
    let answered = Arc::new(AtomicU64::new(0));
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let client = client.clone();
            let stop = Arc::clone(&stop);
            let bogus = Arc::clone(&bogus);
            let answered = Arc::clone(&answered);
            let (q, _) = generator.next_query(world.images(), 3);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    if let Ok(resp) = client.search(q.clone()) {
                        answered.fetch_add(1, Ordering::Relaxed);
                        if resp.partitions_ok
                            + resp.partitions_timed_out
                            + resp.partitions_failed
                            + resp.partitions_shed
                            != resp.partitions_total
                        {
                            bogus.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(100));
    assert!(
        serving.drain(Duration::from_secs(5)),
        "every tier must go idle within the drain timeout"
    );
    stop.store(true, Ordering::SeqCst);
    for t in threads {
        t.join().unwrap();
    }
    assert!(
        answered.load(Ordering::Relaxed) > 0,
        "some queries completed"
    );
    assert_eq!(bogus.load(Ordering::Relaxed), 0, "accounting violated");

    // Drained means *closed*: a fresh client cannot connect.
    let fresh = serving.client();
    let (q, _) = generator.next_query(world.images(), 3);
    assert!(
        fresh.search(q).is_err(),
        "a drained stack must not accept new work"
    );
}

/// Filtered-search satellite: a sales update published through the
/// realtime queue must re-rank *blended* results served over live TCP —
/// the blend stage reads sales from the forward index at response time,
/// so freshness needs no index rebuild and no restart.
#[test]
fn sales_update_over_tcp_reranks_blended_results_without_rebuild() {
    let world = World::build(WorldConfig {
        catalog: CatalogConfig {
            num_products: 60,
            num_clusters: 6,
            ..Default::default()
        },
        topology: TopologyConfig {
            index: IndexConfig {
                dim: 16,
                num_lists: 4,
                nprobe: 4,
                initial_list_capacity: 16,
                ..Default::default()
            },
            num_partitions: 4,
            replicas_per_partition: 1,
            num_broker_groups: 2,
            broker_replicas: 1,
            num_blenders: 2,
            // Normalized-distance blend: similarity ties let sales decide.
            ranking: jdvs::search::RankingPolicy::blend(1.0, 0.05, 0.0, 0.0)
                .with_normalized_distance(),
            ..Default::default()
        },
        seed: 0x5E17,
        ..Default::default()
    });
    let serving = NetServing::over(world.topology(), NetServingConfig::default()).unwrap();
    let client = serving.client();

    // Two distinct products with visually identical images (same synthetic
    // seed): both sit at distance zero from the probe, so only the blend's
    // attribute terms can separate them.
    world.images().put_synthetic("rerank/a.jpg", 777);
    world.images().put_synthetic("rerank/b.jpg", 777);
    for (pid, url) in [(910_000, "rerank/a.jpg"), (910_001, "rerank/b.jpg")] {
        world.topology().publish(ProductEvent::AddProduct {
            product_id: ProductId(pid),
            images: vec![ProductAttributes::new(
                ProductId(pid),
                5,
                100,
                1,
                url.to_string(),
            )],
        });
    }
    world.topology().wait_for_freshness(Duration::from_secs(30));

    let query = SearchQuery::by_image_url("rerank/a.jpg", 5);
    let resp = client.search(query.clone()).unwrap();
    assert_identity(&resp);
    let top2: Vec<ProductId> = resp
        .results
        .iter()
        .take(2)
        .map(|r| r.hit.product_id)
        .collect();
    assert_eq!(
        top2,
        vec![ProductId(910_000), ProductId(910_001)],
        "equal sales: deterministic URL tiebreak puts product a first"
    );

    let records_before: usize = world
        .topology()
        .indexes()
        .iter()
        .flatten()
        .map(|i| i.num_images())
        .sum();

    // One realtime sales tick for product b, straight through the queue.
    world.topology().publish(ProductEvent::UpdateAttributes {
        product_id: ProductId(910_001),
        urls: vec!["rerank/b.jpg".to_string()],
        sales: Some(9_000_000),
        price: None,
        praise: None,
    });
    world.topology().wait_for_freshness(Duration::from_secs(30));

    let resp = client.search(query).unwrap();
    assert_identity(&resp);
    assert_eq!(
        resp.results[0].hit.product_id,
        ProductId(910_001),
        "the sales bump must flip the blended order over TCP"
    );
    assert_eq!(
        resp.results[0].hit.sales, 9_000_000,
        "the blend stage must see the fresh forward-index value"
    );
    let records_after: usize = world
        .topology()
        .indexes()
        .iter()
        .flatten()
        .map(|i| i.num_images())
        .sum();
    assert_eq!(
        records_before, records_after,
        "re-ranking must come from the forward index, not a rebuild"
    );
}

/// Filtered-search smoke for CI: a low-selectivity attribute filter rides
/// the full TCP tier — blender encodes the [`FilterSpec`] into the wire
/// envelope, brokers fan it out, searchers push it down into the block
/// scan — and every hit that comes back satisfies the filter.
#[test]
fn low_selectivity_filtered_query_over_tcp() {
    let world = serving_world();
    let serving = NetServing::over(world.topology(), NetServingConfig::default()).unwrap();
    let client = serving.client();
    let generator = FilteredQueryGenerator::new(world.catalog(), 21);

    // ~5% of the catalog's images admitted; with nprobe == num_lists the
    // searchers scan everything, so the admitted survivors must surface.
    let selectivity = 0.05;
    let threshold = generator.min_sales_for_selectivity(selectivity);
    assert!(
        generator.achieved_selectivity(threshold) <= 0.25,
        "threshold must actually be selective on this catalog"
    );

    for _ in 0..10 {
        let (query, _, spec) = generator.next_filtered_query(world.images(), 5, selectivity);
        assert_eq!(spec.min_sales, Some(threshold));
        let resp = client.search(query).unwrap();
        assert_identity(&resp);
        assert!(
            resp.is_complete(),
            "healthy stack must cover all partitions"
        );
        assert!(
            !resp.results.is_empty(),
            "admitted products exist and every list is probed"
        );
        for r in &resp.results {
            assert!(
                r.hit.sales >= threshold,
                "hit {:?} (sales {}) violates min_sales {threshold}",
                r.hit.product_id,
                r.hit.sales
            );
        }
    }
}
