//! Offline shim for `criterion`: compiles and runs the workspace's benches
//! with a crude wall-clock measurement (median of a small fixed batch)
//! instead of criterion's statistical machinery. Good enough to smoke-run
//! `cargo bench` offline; not a replacement for real measurements.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 3;
const MEASURE_ITERS: u64 = 30;

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self { name: format!("{}/{}", name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { name: name.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { name }
    }
}

pub struct Bencher {
    measured: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(f());
        }
        self.measured = start.elapsed();
        self.iters = MEASURE_ITERS;
    }

    pub fn iter_with_setup<I, O, S, F>(&mut self, mut setup: S, mut f: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS {
            let input = setup();
            black_box(f(input));
        }
        let mut measured = Duration::ZERO;
        for _ in 0..MEASURE_ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(f(input));
            measured += start.elapsed();
        }
        self.measured = measured;
        self.iters = MEASURE_ITERS;
    }
}

pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Self { _private: () }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, group: name.to_string() }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.into().name, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.group, &id.into().name, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.group, &id.into().name, |b| f(b, input));
        self
    }

    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, name: &str, mut f: F) {
    let mut b = Bencher { measured: Duration::ZERO, iters: 1 };
    f(&mut b);
    let per_iter = b.measured.as_nanos() / u128::from(b.iters.max(1));
    let label =
        if group.is_empty() { name.to_string() } else { format!("{group}/{name}") };
    println!("bench {label:<48} ~{per_iter} ns/iter (offline shim, {} iters)", b.iters);
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            let _ = $config;
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("t", |b| b.iter(|| ran += 1));
        assert!(ran >= WARMUP_ITERS + MEASURE_ITERS);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(1)).sample_size(10);
        let mut total = 0u64;
        g.bench_with_input(BenchmarkId::new("x", 4), &4u64, |b, &n| b.iter(|| total += n));
        g.finish();
        assert!(total > 0);
    }
}
