//! Single-partition query evaluation (Section 2.4) — the block execution
//! engine.
//!
//! *"Each searcher node identifies the cluster that is most similar to the
//! queried image based on its features. It then scans the cluster's
//! inverted list and calculates the similarity as each image in the
//! inverted list. The top N most similar images are returned."*
//!
//! [`ann_search`] generalizes "the cluster" to the `nprobe` nearest
//! clusters (probing one list is the paper's letter; multi-probe is the
//! standard recall knob and the `ablate-nprobe` experiment sweeps it).
//! Invalid images — cleared bits in the validity bitmap — are skipped
//! during the scan, so logically deleted products never surface.
//!
//! ## The execution engine
//!
//! The serving paths share one scan core built for throughput:
//!
//! - **Block scan.** Inverted lists yield contiguous blocks of up to
//!   [`crate::inverted::SCAN_BLOCK`] ids
//!   ([`crate::inverted::InvertedList::scan_blocks`]) instead of one
//!   callback per id.
//! - **One lock per query.** The validity bitmap is pinned once via
//!   [`crate::bitmap::AtomicBitmap::reader`] and the vector / PQ-code
//!   stores via their snapshot/reader handles, so the per-candidate cost
//!   is a pure pointer chase — the pre-engine paths re-acquired a read
//!   lock for every candidate, twice.
//! - **SIMD kernels.** Distances dispatch through
//!   [`jdvs_vector::simd::active`] (AVX2+FMA / NEON / unrolled scalar,
//!   detected once at startup).
//! - **Fast-scan PQ.** In 4-bit PQ mode, stage 1 of
//!   [`compressed_search`] scores 32 candidates per
//!   [`jdvs_vector::simd::KernelSet::fastscan16`] call straight out of
//!   [`crate::pq_store::PqStore`]'s interleaved blocks, using a
//!   register-resident quantized LUT
//!   ([`jdvs_vector::pq::QuantizedAdcTable`]) instead of `m` scattered
//!   f32 table loads per candidate. Stage 2 re-ranks the quantized
//!   shortlist with exact f32 distances, so the over-fetch
//!   (`k · rerank_factor`) — not the u8 rounding — decides final quality.
//! - **Threshold pruning.** Once the top-k heap is full,
//!   [`TopK::would_accept`] rejects non-improving candidates before a
//!   [`Neighbor`] is even built.
//! - **Intra-query parallelism.** When
//!   [`crate::config::IndexConfig::intra_query_threads`] allows it *and*
//!   the probed lists hold at least [`PARALLEL_MIN_CANDIDATES`] published
//!   ids — with at least [`PARALLEL_MIN_PER_THREAD`] of them per spawned
//!   thread — lists fan out round-robin across scoped threads with
//!   per-thread collectors merged at the end. Results are identical to
//!   the sequential scan: merging is order-insensitive under the total
//!   (distance, id) order.
//!
//! Every engine path keeps a sequential per-id `*_reference` twin that uses
//! the same dispatched kernel — differential tests assert bit-identical
//! results — plus [`ann_search_scalar_baseline`], the pre-engine scan
//! (per-candidate locking, forced scalar kernel) kept as the benchmark
//! baseline.

use jdvs_vector::distance::squared_l2;
use jdvs_vector::simd::{self, KernelSet};
use jdvs_vector::topk::{Neighbor, TopK};

use crate::bitmap::BitmapReader;
use crate::ids::{ImageId, ListId};
use crate::index::VisualIndex;
use crate::inverted::InvertedIndex;
use crate::pq_store::{PqStore, FASTSCAN_BLOCK};
use crate::vectors::VectorSnapshot;

/// Minimum total published ids across the probed lists before a query fans
/// out across threads; below this, thread spawn and merge overhead dwarfs
/// the scan itself and the query stays sequential regardless of
/// [`crate::config::IndexConfig::intra_query_threads`].
pub const PARALLEL_MIN_CANDIDATES: usize = 2048;

/// Minimum published ids **per spawned thread**: a query only fans out to
/// as many threads as leave each at least this much work. Spawning a
/// scoped thread costs tens of microseconds; a thread handed fewer than
/// ~8k candidates (~100 µs of kernel work at d = 64) spends comparable
/// time being spawned and merged as scanning, which is how the 30k-image
/// bench regressed to *slower* with 4 threads under the old
/// total-count-only gate.
pub const PARALLEL_MIN_PER_THREAD: usize = 8192;

/// IVF search over one partition; see the module docs. Uses the configured
/// [`crate::config::IndexConfig::intra_query_threads`].
///
/// # Panics
///
/// Panics if `k == 0`, `nprobe == 0`, or `query` has the wrong dimension.
pub fn ann_search(index: &VisualIndex, query: &[f32], k: usize, nprobe: usize) -> Vec<Neighbor> {
    ann_search_with_threads(index, query, k, nprobe, index.config().intra_query_threads)
}

/// [`ann_search`] with an explicit thread budget (benchmarks sweep this;
/// serving goes through the config knob).
///
/// # Panics
///
/// Panics if `k == 0`, `nprobe == 0`, or `query` has the wrong dimension.
pub fn ann_search_with_threads(
    index: &VisualIndex,
    query: &[f32],
    k: usize,
    nprobe: usize,
    threads: usize,
) -> Vec<Neighbor> {
    assert!(k > 0, "k must be positive");
    assert!(nprobe > 0, "nprobe must be positive");
    assert_eq!(query.len(), index.config().dim, "query dimension mismatch");
    let lists = index.quantizer().assign_multi(query, nprobe);
    let kernels = simd::active();
    let bitmap = index.bitmap().reader();
    let vectors = index.vectors().snapshot();
    let eval = |id: ImageId| {
        if !bitmap.test(id.as_usize()) {
            return None; // logically deleted
        }
        // A published id whose feature vector has not landed yet is
        // *skipped*, not ranked at infinity: a sentinel distance would
        // surface the phantom whenever fewer than k real candidates exist.
        let v = vectors.get(id)?;
        Some(kernels.squared_l2(query, v.as_slice()))
    };
    let inverted = index.inverted_internal();
    let scan = |list: usize, topk: &mut TopK| scan_one_list(inverted, list, &eval, topk);
    scan_probed_lists(inverted, &lists, k, threads, &scan).into_sorted_vec()
}

/// Two-stage compressed (PQ) search; see
/// [`VisualIndex::search_compressed`]. Uses the configured
/// [`crate::config::IndexConfig::intra_query_threads`].
///
/// # Panics
///
/// Panics if PQ mode is disabled, any count is zero, or `query` has the
/// wrong dimension.
pub fn compressed_search(
    index: &VisualIndex,
    query: &[f32],
    k: usize,
    nprobe: usize,
    rerank_factor: usize,
) -> Vec<Neighbor> {
    compressed_search_with_threads(
        index,
        query,
        k,
        nprobe,
        rerank_factor,
        index.config().intra_query_threads,
    )
}

/// [`compressed_search`] with an explicit thread budget for stage 1.
///
/// # Panics
///
/// Panics if PQ mode is disabled, any count is zero, or `query` has the
/// wrong dimension.
pub fn compressed_search_with_threads(
    index: &VisualIndex,
    query: &[f32],
    k: usize,
    nprobe: usize,
    rerank_factor: usize,
    threads: usize,
) -> Vec<Neighbor> {
    assert!(k > 0, "k must be positive");
    assert!(nprobe > 0, "nprobe must be positive");
    assert!(rerank_factor > 0, "rerank_factor must be positive");
    assert_eq!(query.len(), index.config().dim, "query dimension mismatch");
    let pq = index
        .pq_store()
        .expect("compressed search requires config.pq_subspaces (see IndexConfig)");

    // Stage 1: quantized scan of the probed lists' PQ codes, shortlisting
    // k · rerank_factor candidates.
    let lists = index.quantizer().assign_multi(query, nprobe);
    let kernels = simd::active();
    let bitmap = index.bitmap().reader();
    let inverted = index.inverted_internal();
    let shortlist_k = k.saturating_mul(rerank_factor).max(k);
    let shortlist = if pq.is_four_bit() {
        // Fast-scan: one kernel call scores a whole interleaved block of
        // 32 codes against the register-resident quantized LUTs.
        let qt = pq.quantized_adc_table(query);
        let scan = |list: usize, topk: &mut TopK| {
            fastscan_one_list(inverted, pq, &bitmap, kernels, &qt, list, topk);
        };
        scan_probed_lists(inverted, &lists, shortlist_k, threads, &scan)
    } else {
        // Classic 8-bit ADC: m table lookups per candidate, codes read
        // by list position from the contiguous code area.
        let table = pq.adc_table(query);
        let scan = |list: usize, topk: &mut TopK| {
            let reader = pq.list_reader(ListId(list as u32));
            let mut code = vec![0u8; pq.code_len()];
            let mut base = 0usize;
            inverted.scan_blocks(ListId(list as u32), |ids| {
                for (i, &id) in ids.iter().enumerate() {
                    if bitmap.test(id.as_usize()) && reader.read_code(base + i, &mut code) {
                        let d = table.distance(&code);
                        if topk.would_accept(d) {
                            topk.push(id.as_u64(), d);
                        }
                    }
                }
                base += ids.len();
            });
        };
        scan_probed_lists(inverted, &lists, shortlist_k, threads, &scan)
    };

    // Stage 2: exact rerank of the shortlist over raw vectors.
    let vectors = index.vectors().snapshot();
    exact_rerank(&bitmap, &vectors, kernels, query, shortlist, k)
}

/// Stage 1 of the 4-bit compressed path over one list: loads each
/// 32-code interleaved block (partial tail lanes masked), scores it with
/// one [`jdvs_vector::simd::KernelSet::fastscan16`] call, and feeds the
/// published + valid lanes to `topk` in list order — the exact candidate
/// set and f32 distances of the per-id reference twin
/// ([`jdvs_vector::pq::QuantizedAdcTable::distance`] is bit-exact with a
/// kernel lane).
fn fastscan_one_list(
    inverted: &InvertedIndex,
    pq: &PqStore,
    bitmap: &BitmapReader<'_>,
    kernels: &KernelSet,
    qt: &jdvs_vector::pq::QuantizedAdcTable,
    list: usize,
    topk: &mut TopK,
) {
    let reader = pq.list_reader(ListId(list as u32));
    let mut tile = vec![0u8; reader.tile_len()];
    let mut acc = [0u16; FASTSCAN_BLOCK];
    // scan_blocks emits full SCAN_BLOCK-sized blocks (a multiple of
    // FASTSCAN_BLOCK) with one ragged tail, so every group base below is
    // block-aligned.
    let mut base = 0usize;
    inverted.scan_blocks(ListId(list as u32), |ids| {
        let mut g = 0usize;
        while g < ids.len() {
            let lanes = (ids.len() - g).min(FASTSCAN_BLOCK);
            let mask = reader.load_group(base + g, &mut tile);
            if mask != 0 {
                kernels.fastscan16(&tile, qt.luts(), &mut acc);
                for (lane, &id) in ids[g..g + lanes].iter().enumerate() {
                    // An unpublished lane's code is still mid-insert (its
                    // bitmap bit is not set yet either); a published one
                    // scores from the kernel accumulator.
                    if mask & (1 << lane) != 0 && bitmap.test(id.as_usize()) {
                        let d = qt.to_f32(acc[lane]);
                        if topk.would_accept(d) {
                            topk.push(id.as_u64(), d);
                        }
                    }
                }
            }
            g += lanes;
        }
        base += ids.len();
    });
}

/// Stage 2 of the compressed path: exact distances over the shortlist.
/// Split out so the between-stage deletion guard is directly testable.
fn exact_rerank(
    bitmap: &BitmapReader<'_>,
    vectors: &VectorSnapshot,
    kernels: &KernelSet,
    query: &[f32],
    shortlist: TopK,
    k: usize,
) -> Vec<Neighbor> {
    let mut topk = TopK::new(k);
    for candidate in shortlist.into_sorted_vec() {
        let id = ImageId(candidate.id as u32);
        // Re-check validity: the bitmap words are atomics behind the pinned
        // guard, so an image deleted after the ADC scan admitted it to the
        // shortlist is seen as invalid here and cannot be returned.
        if !bitmap.test(id.as_usize()) {
            continue;
        }
        let Some(v) = vectors.get(id) else { continue };
        topk.push(candidate.id, kernels.squared_l2(query, v.as_slice()));
    }
    topk.into_sorted_vec()
}

/// Exact top-k over every valid image (ground truth; `O(n·d)`). Walks the
/// validity bitmap a word at a time, skipping 64 deleted/unwritten images
/// per all-zero word.
///
/// # Panics
///
/// Panics if `k == 0` or `query` has the wrong dimension.
pub fn brute_force(index: &VisualIndex, query: &[f32], k: usize) -> Vec<Neighbor> {
    assert!(k > 0, "k must be positive");
    assert_eq!(query.len(), index.config().dim, "query dimension mismatch");
    let kernels = simd::active();
    let vectors = index.vectors().snapshot();
    let mut topk = TopK::new(k);
    index.bitmap().for_each_valid(index.forward().len(), |raw| {
        let id = ImageId(raw as u32);
        if let Some(v) = vectors.get(id) {
            let d = kernels.squared_l2(query, v.as_slice());
            if topk.would_accept(d) {
                topk.push(id.as_u64(), d);
            }
        }
    });
    topk.into_sorted_vec()
}

/// Scans the probed `lists` with the per-list `scan` closure (which feeds
/// a [`TopK`] of capacity `k`). Sequential when `threads <= 1` or the
/// lists are too small to amortize a fan-out; otherwise lists distribute
/// round-robin over scoped threads and per-thread collectors merge. Both
/// routes visit the same ids with the same scoring, so under the total
/// (distance, id) order the merged result is identical to the sequential
/// one.
fn scan_probed_lists<S>(
    inverted: &InvertedIndex,
    lists: &[usize],
    k: usize,
    threads: usize,
    scan: &S,
) -> TopK
where
    S: Fn(usize, &mut TopK) + Sync,
{
    let total: usize = lists
        .iter()
        .map(|&l| inverted.list(ListId(l as u32)).len())
        .sum();
    let threads = effective_threads(threads, lists.len(), total);
    if threads <= 1 {
        let mut topk = TopK::new(k);
        for &list in lists {
            scan(list, &mut topk);
        }
        return topk;
    }
    let mut merged = TopK::new(k);
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move |_| {
                    let mut topk = TopK::new(k);
                    for &list in lists.iter().skip(t).step_by(threads) {
                        scan(list, &mut topk);
                    }
                    topk
                })
            })
            .collect();
        for h in handles {
            merged.merge(h.join().expect("scan worker panicked"));
        }
    })
    .expect("scan scope");
    merged
}

/// The thread count a query actually uses: capped so each spawned thread
/// gets at least [`PARALLEL_MIN_PER_THREAD`] candidates (and by the list
/// count — distribution is per-list); see also
/// [`PARALLEL_MIN_CANDIDATES`].
fn effective_threads(configured: usize, num_lists: usize, total_candidates: usize) -> usize {
    if configured <= 1 || total_candidates < PARALLEL_MIN_CANDIDATES {
        1
    } else {
        configured
            .min(num_lists)
            .min(total_candidates / PARALLEL_MIN_PER_THREAD)
            .max(1)
    }
}

/// Block-scans one inverted list into `topk`.
#[inline]
fn scan_one_list<F: Fn(ImageId) -> Option<f32>>(
    inverted: &InvertedIndex,
    list: usize,
    eval: &F,
    topk: &mut TopK,
) {
    inverted.scan_blocks(ListId(list as u32), |ids| {
        for &id in ids {
            if let Some(d) = eval(id) {
                if topk.would_accept(d) {
                    topk.push(id.as_u64(), d);
                }
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Reference paths (differential-test twins) and the benchmark baseline.
// ---------------------------------------------------------------------------

/// Sequential per-id reference implementation of [`ann_search`]: one
/// callback and two lock acquisitions per candidate, same dispatched
/// kernel. Differential tests assert the engine matches this exactly.
///
/// # Panics
///
/// Panics if `k == 0`, `nprobe == 0`, or `query` has the wrong dimension.
pub fn ann_search_reference(
    index: &VisualIndex,
    query: &[f32],
    k: usize,
    nprobe: usize,
) -> Vec<Neighbor> {
    assert!(k > 0, "k must be positive");
    assert!(nprobe > 0, "nprobe must be positive");
    assert_eq!(query.len(), index.config().dim, "query dimension mismatch");
    let lists = index.quantizer().assign_multi(query, nprobe);
    let mut topk = TopK::new(k);
    for list in lists {
        index.inverted_internal().scan(ListId(list as u32), |id| {
            if !index.bitmap().test(id.as_usize()) {
                return; // logically deleted
            }
            if let Some(d) = index
                .vectors()
                .with(id, |v| squared_l2(query, v.as_slice()))
            {
                topk.push(id.as_u64(), d);
            }
        });
    }
    topk.into_sorted_vec()
}

/// Sequential per-id reference implementation of [`compressed_search`].
///
/// # Panics
///
/// Panics if PQ mode is disabled, any count is zero, or `query` has the
/// wrong dimension.
pub fn compressed_search_reference(
    index: &VisualIndex,
    query: &[f32],
    k: usize,
    nprobe: usize,
    rerank_factor: usize,
) -> Vec<Neighbor> {
    assert!(k > 0, "k must be positive");
    assert!(nprobe > 0, "nprobe must be positive");
    assert!(rerank_factor > 0, "rerank_factor must be positive");
    assert_eq!(query.len(), index.config().dim, "query dimension mismatch");
    let pq = index
        .pq_store()
        .expect("compressed search requires config.pq_subspaces (see IndexConfig)");

    // Per-id scoring twin of stage 1: in 4-bit mode the quantized per-id
    // distance is bit-exact with a fast-scan kernel lane, so the engine
    // and this loop push identical (id, f32) sequences in identical
    // order.
    let lists = index.quantizer().assign_multi(query, nprobe);
    let mut shortlist = TopK::new(k.saturating_mul(rerank_factor).max(k));
    if pq.is_four_bit() {
        let qt = pq.quantized_adc_table(query);
        for list in lists {
            index.inverted_internal().scan(ListId(list as u32), |id| {
                if !index.bitmap().test(id.as_usize()) {
                    return;
                }
                if let Some(d) = pq.quantized_distance(&qt, id) {
                    shortlist.push(id.as_u64(), d);
                }
            });
        }
    } else {
        let table = pq.adc_table(query);
        for list in lists {
            index.inverted_internal().scan(ListId(list as u32), |id| {
                if !index.bitmap().test(id.as_usize()) {
                    return;
                }
                if let Some(d) = pq.distance(&table, id) {
                    shortlist.push(id.as_u64(), d);
                }
            });
        }
    }

    let mut topk = TopK::new(k);
    for candidate in shortlist.into_sorted_vec() {
        let id = ImageId(candidate.id as u32);
        if !index.bitmap().test(id.as_usize()) {
            continue; // deleted between stages
        }
        if let Some(d) = index
            .vectors()
            .with(id, |v| squared_l2(query, v.as_slice()))
        {
            topk.push(candidate.id, d);
        }
    }
    topk.into_sorted_vec()
}

/// Sequential per-id reference implementation of [`brute_force`].
///
/// # Panics
///
/// Panics if `k == 0` or `query` has the wrong dimension.
pub fn brute_force_reference(index: &VisualIndex, query: &[f32], k: usize) -> Vec<Neighbor> {
    assert!(k > 0, "k must be positive");
    assert_eq!(query.len(), index.config().dim, "query dimension mismatch");
    let mut topk = TopK::new(k);
    for raw in 0..index.forward().len() {
        let id = ImageId(raw as u32);
        if !index.bitmap().test(raw) {
            continue;
        }
        if let Some(d) = index
            .vectors()
            .with(id, |v| squared_l2(query, v.as_slice()))
        {
            topk.push(id.as_u64(), d);
        }
    }
    topk.into_sorted_vec()
}

/// The pre-engine scan kept as the benchmark baseline: per-id callbacks,
/// two lock acquisitions per candidate, and the forced **scalar** kernel
/// regardless of CPU features. Not a serving path — the `searcher-scan`
/// experiment measures the engine's speedup against this.
///
/// # Panics
///
/// Panics if `k == 0`, `nprobe == 0`, or `query` has the wrong dimension.
pub fn ann_search_scalar_baseline(
    index: &VisualIndex,
    query: &[f32],
    k: usize,
    nprobe: usize,
) -> Vec<Neighbor> {
    assert!(k > 0, "k must be positive");
    assert!(nprobe > 0, "nprobe must be positive");
    assert_eq!(query.len(), index.config().dim, "query dimension mismatch");
    let kernels = simd::scalar();
    let lists = index.quantizer().assign_multi(query, nprobe);
    let mut topk = TopK::new(k);
    for list in lists {
        index.inverted_internal().scan(ListId(list as u32), |id| {
            if !index.bitmap().test(id.as_usize()) {
                return;
            }
            if let Some(d) = index
                .vectors()
                .with(id, |v| kernels.squared_l2(query, v.as_slice()))
            {
                topk.push(id.as_u64(), d);
            }
        });
    }
    topk.into_sorted_vec()
}

/// Recall@k of `got` against ground-truth `expected` (fraction of expected
/// ids present in got).
pub fn recall(got: &[Neighbor], expected: &[Neighbor]) -> f64 {
    if expected.is_empty() {
        return 1.0;
    }
    let got_ids: std::collections::HashSet<u64> = got.iter().map(|n| n.id).collect();
    let hit = expected.iter().filter(|n| got_ids.contains(&n.id)).count();
    hit as f64 / expected.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use jdvs_storage::model::{ProductAttributes, ProductId};
    use jdvs_vector::rng::Xoshiro256;
    use jdvs_vector::Vector;

    fn build_index(n: usize, num_lists: usize, seed: u64) -> (VisualIndex, Vec<Vector>) {
        let mut rng = Xoshiro256::seed_from(seed);
        let data: Vec<Vector> = (0..n)
            .map(|_| (0..8).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let config = IndexConfig {
            dim: 8,
            num_lists,
            initial_list_capacity: 8,
            ..Default::default()
        };
        let index = VisualIndex::bootstrap(config, &data);
        for (i, v) in data.iter().enumerate() {
            index
                .insert(
                    v.clone(),
                    ProductAttributes::new(ProductId(i as u64), 0, 0, 0, format!("u{i}")),
                )
                .unwrap();
        }
        index.flush();
        (index, data)
    }

    #[test]
    fn full_probe_equals_brute_force() {
        let (index, data) = build_index(300, 8, 3);
        for q in data.iter().take(20) {
            let ann = ann_search(&index, q.as_slice(), 5, 8);
            let exact = brute_force(&index, q.as_slice(), 5);
            assert_eq!(recall(&ann, &exact), 1.0);
        }
    }

    #[test]
    fn recall_grows_with_nprobe() {
        let (index, data) = build_index(500, 16, 5);
        let mut totals = Vec::new();
        for nprobe in [1usize, 4, 16] {
            let mut total = 0.0;
            for q in data.iter().take(30) {
                let ann = ann_search(&index, q.as_slice(), 10, nprobe);
                let exact = brute_force(&index, q.as_slice(), 10);
                total += recall(&ann, &exact);
            }
            totals.push(total / 30.0);
        }
        assert!(totals[0] <= totals[1] + 1e-9);
        assert!(totals[1] <= totals[2] + 1e-9);
        assert!((totals[2] - 1.0).abs() < 1e-9, "full probe is exact");
    }

    #[test]
    fn results_are_sorted_by_distance() {
        let (index, data) = build_index(200, 4, 7);
        let hits = ann_search(&index, data[0].as_slice(), 10, 4);
        for w in hits.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn deleted_images_are_skipped_by_both_paths() {
        let (index, data) = build_index(50, 4, 9);
        let key = jdvs_storage::model::ImageKey::from_url("u0");
        index.invalidate(key, "u0").unwrap();
        let ann = ann_search(&index, data[0].as_slice(), 50, 4);
        let exact = brute_force(&index, data[0].as_slice(), 50);
        assert!(ann.iter().all(|n| n.id != 0));
        assert!(exact.iter().all(|n| n.id != 0));
        assert_eq!(ann.len(), 49);
    }

    #[test]
    fn engine_matches_reference_paths_exactly() {
        let (index, data) = build_index(400, 8, 11);
        // Delete a spread of images so validity filtering is exercised.
        for i in (0..400).step_by(7) {
            let key = jdvs_storage::model::ImageKey::from_url(&format!("u{i}"));
            index.invalidate(key, &format!("u{i}")).unwrap();
        }
        for q in data.iter().take(25) {
            for nprobe in [1usize, 3, 8] {
                let engine = ann_search(&index, q.as_slice(), 10, nprobe);
                let reference = ann_search_reference(&index, q.as_slice(), 10, nprobe);
                assert_eq!(engine, reference, "nprobe = {nprobe}");
            }
            assert_eq!(
                brute_force(&index, q.as_slice(), 10),
                brute_force_reference(&index, q.as_slice(), 10)
            );
        }
    }

    #[test]
    fn parallel_scan_matches_sequential_exactly() {
        // Big enough that the per-thread work gate admits a real fan-out
        // (>= 2 * PARALLEL_MIN_PER_THREAD probed candidates).
        let (index, data) = build_index(2 * PARALLEL_MIN_PER_THREAD + 500, 4, 13);
        let total = index.inverted_internal().total_entries();
        assert!(
            effective_threads(4, 4, total) >= 2,
            "test must exercise a genuine fan-out (total = {total})"
        );
        for q in data.iter().take(5) {
            let sequential = ann_search_with_threads(&index, q.as_slice(), 10, 4, 1);
            for threads in [2usize, 3, 8] {
                let parallel = ann_search_with_threads(&index, q.as_slice(), 10, 4, threads);
                assert_eq!(sequential, parallel, "threads = {threads}");
            }
        }
    }

    #[test]
    fn small_queries_stay_sequential() {
        assert_eq!(effective_threads(4, 8, PARALLEL_MIN_CANDIDATES - 1), 1);
        // Regression guard (searcher-scan bench, 30k images): above the
        // absolute floor but with too little work to pay for even a second
        // thread, the query must stay sequential.
        assert_eq!(effective_threads(4, 8, PARALLEL_MIN_CANDIDATES), 1);
        assert_eq!(effective_threads(4, 8, 3750), 1, "bench-scale probe");
        assert_eq!(effective_threads(4, 8, 2 * PARALLEL_MIN_PER_THREAD), 2);
        assert_eq!(
            effective_threads(4, 8, 1 << 20),
            4,
            "ample work: full fan-out"
        );
        assert_eq!(effective_threads(1, 8, 1 << 20), 1, "knob off");
        assert_eq!(effective_threads(8, 3, 1 << 20), 3, "capped by lists");
    }

    #[test]
    fn missing_vector_is_skipped_not_ranked_at_infinity() {
        // Regression: an id published in an inverted list whose feature
        // vector never landed used to enter the heap at f32::INFINITY and
        // could surface whenever fewer than k real candidates existed.
        let (index, data) = build_index(5, 1, 17);
        let phantom = ImageId(4000);
        index.inverted_internal().append(ListId(0), phantom);
        index.bitmap().set(phantom.as_usize());
        index.inverted_internal().flush();
        for result in [
            ann_search(&index, data[0].as_slice(), 50, 1),
            ann_search_reference(&index, data[0].as_slice(), 50, 1),
        ] {
            assert_eq!(result.len(), 5, "only real images are returned");
            assert!(result.iter().all(|n| n.id != phantom.as_u64()));
            assert!(result.iter().all(|n| n.distance.is_finite()));
        }
    }

    #[test]
    fn rerank_drops_images_deleted_between_stages() {
        let (index, data) = build_index(30, 2, 19);
        let kernels = simd::active();
        let bitmap = index.bitmap().reader();
        let vectors = index.vectors().snapshot();
        // Stage 1 admitted ids 0 and 1 to the shortlist...
        let mut shortlist = TopK::new(4);
        shortlist.push(0, 0.5);
        shortlist.push(1, 0.7);
        // ...then image 0 is deleted before the rerank runs.
        index.bitmap().clear(0);
        let got = exact_rerank(&bitmap, &vectors, kernels, data[0].as_slice(), shortlist, 4);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].id, 1, "the deleted image cannot resurface");
    }

    #[test]
    fn compressed_engine_matches_reference() {
        let mut rng = Xoshiro256::seed_from(23);
        let data: Vec<Vector> = (0..500)
            .map(|_| (0..8).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let config = IndexConfig {
            dim: 8,
            num_lists: 4,
            initial_list_capacity: 8,
            pq_subspaces: Some(4),
            ..Default::default()
        };
        let index = VisualIndex::bootstrap(config, &data);
        for (i, v) in data.iter().enumerate() {
            index
                .insert(
                    v.clone(),
                    ProductAttributes::new(ProductId(i as u64), 0, 0, 0, format!("u{i}")),
                )
                .unwrap();
        }
        index.flush();
        for i in (0..500).step_by(9) {
            let key = jdvs_storage::model::ImageKey::from_url(&format!("u{i}"));
            index.invalidate(key, &format!("u{i}")).unwrap();
        }
        for q in data.iter().take(15) {
            let engine = compressed_search(&index, q.as_slice(), 10, 4, 3);
            let reference = compressed_search_reference(&index, q.as_slice(), 10, 4, 3);
            assert_eq!(engine, reference);
        }
    }

    /// Satellite differential: the two-stage 4-bit fast-scan engine must
    /// return top-k identical to the per-id reference at the default
    /// `rerank_factor`, deletions included.
    #[test]
    fn compressed_engine_matches_reference_four_bit() {
        let mut rng = Xoshiro256::seed_from(31);
        let data: Vec<Vector> = (0..600)
            .map(|_| (0..8).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let config = IndexConfig {
            dim: 8,
            num_lists: 4,
            initial_list_capacity: 8,
            pq_subspaces: Some(8),
            pq_bits: 4,
            ..Default::default()
        };
        let rerank = config.rerank_factor;
        let index = VisualIndex::bootstrap(config, &data);
        for (i, v) in data.iter().enumerate() {
            index
                .insert(
                    v.clone(),
                    ProductAttributes::new(ProductId(i as u64), 0, 0, 0, format!("u{i}")),
                )
                .unwrap();
        }
        index.flush();
        for i in (0..600).step_by(9) {
            let key = jdvs_storage::model::ImageKey::from_url(&format!("u{i}"));
            index.invalidate(key, &format!("u{i}")).unwrap();
        }
        for q in data.iter().take(15) {
            let engine = compressed_search(&index, q.as_slice(), 10, 4, rerank);
            let reference = compressed_search_reference(&index, q.as_slice(), 10, 4, rerank);
            assert_eq!(engine, reference);
        }
    }

    /// The re-rank contract: with full probing and a shortlist that covers
    /// everything, the 4-bit path's final top-k is *exact* — quantization
    /// error lives only in the shortlist ordering.
    #[test]
    fn four_bit_full_overfetch_is_exact() {
        let mut rng = Xoshiro256::seed_from(37);
        let data: Vec<Vector> = (0..200)
            .map(|_| (0..8).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let config = IndexConfig {
            dim: 8,
            num_lists: 2,
            initial_list_capacity: 8,
            pq_subspaces: Some(8),
            pq_bits: 4,
            ..Default::default()
        };
        let index = VisualIndex::bootstrap(config, &data);
        for (i, v) in data.iter().enumerate() {
            index
                .insert(
                    v.clone(),
                    ProductAttributes::new(ProductId(i as u64), 0, 0, 0, format!("u{i}")),
                )
                .unwrap();
        }
        index.flush();
        for q in data.iter().take(10) {
            let compressed = compressed_search(&index, q.as_slice(), 5, 2, 200);
            let exact = brute_force(&index, q.as_slice(), 5);
            assert_eq!(recall(&compressed, &exact), 1.0);
        }
    }

    #[test]
    fn scalar_baseline_agrees_on_ids_with_engine() {
        // Distances may differ in the last ulp between kernels, but on
        // well-separated random data the returned id set is stable.
        let (index, data) = build_index(300, 4, 29);
        for q in data.iter().take(10) {
            let engine: Vec<u64> = ann_search(&index, q.as_slice(), 5, 4)
                .into_iter()
                .map(|n| n.id)
                .collect();
            let baseline: Vec<u64> = ann_search_scalar_baseline(&index, q.as_slice(), 5, 4)
                .into_iter()
                .map(|n| n.id)
                .collect();
            assert_eq!(engine, baseline);
        }
    }

    #[test]
    fn recall_of_identical_sets_is_one() {
        let a = vec![Neighbor::new(1, 0.0), Neighbor::new(2, 1.0)];
        assert_eq!(recall(&a, &a), 1.0);
        assert_eq!(recall(&a, &[]), 1.0);
        let b = vec![Neighbor::new(1, 0.0), Neighbor::new(9, 1.0)];
        assert_eq!(recall(&b, &a), 0.5);
    }

    #[test]
    #[should_panic(expected = "query dimension mismatch")]
    fn wrong_query_dim_panics() {
        let (index, _) = build_index(10, 2, 1);
        ann_search(&index, &[0.0; 4], 1, 1);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let (index, data) = build_index(10, 2, 1);
        ann_search(&index, data[0].as_slice(), 0, 1);
    }
}
