//! Socket-level fault injection for the network serving tier.
//!
//! [`FaultProxy`] is a TCP proxy that sits between a client and one
//! upstream tier and injects the failures the in-process
//! [`jdvs_net::FaultInjector`] cannot: connection refusal, stalls that
//! hold bytes without closing the socket, and mid-frame cuts that sever
//! the connection after a byte budget — the torn-read case the framed
//! transport's CRC must catch. Faults are toggled at runtime, so a test
//! can run healthy traffic, flip a fault on, observe the degradation
//! accounting, and flip it off again, all against one proxy address.
//!
//! Everything is plain blocking `std::net` plus threads, consistent with
//! the transport itself (see `jdvs_net::tcp` for why).

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often pump and accept threads re-check fault flags and the stop
/// flag while idle.
const POLL_INTERVAL: Duration = Duration::from_millis(5);

/// Copy-buffer size of the pump threads. Small on purpose: a `cut_after`
/// budget lands mid-frame instead of on a frame boundary.
const PUMP_BUF: usize = 512;

/// Runtime-togglable fault state shared with the proxy threads.
#[derive(Debug, Default)]
struct Faults {
    /// Sever every new connection immediately after accept (the client
    /// observes connect-then-reset, i.e. refusal).
    refuse: AtomicBool,
    /// Hold all bytes in both directions without closing anything.
    stall: AtomicBool,
    /// Per-connection client→upstream byte budget; `u64::MAX` = off.
    /// After the budget, both directions are severed mid-frame.
    cut_after: AtomicU64,
}

/// A fault-injecting TCP proxy; see the module docs.
#[derive(Debug)]
pub struct FaultProxy {
    addr: SocketAddr,
    faults: Arc<Faults>,
    stop: Arc<AtomicBool>,
    connections: Arc<AtomicU64>,
    accept_thread: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Starts a proxy on an ephemeral loopback port forwarding to
    /// `upstream`. Healthy (no faults) until told otherwise.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from binding the listener.
    pub fn spawn(upstream: SocketAddr) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let faults = Arc::new(Faults {
            cut_after: AtomicU64::new(u64::MAX),
            ..Faults::default()
        });
        let stop = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(AtomicU64::new(0));
        let accept_thread = {
            let faults = Arc::clone(&faults);
            let stop = Arc::clone(&stop);
            let connections = Arc::clone(&connections);
            std::thread::Builder::new()
                .name("fault-proxy".into())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        match listener.accept() {
                            Ok((client, _)) => {
                                connections.fetch_add(1, Ordering::Relaxed);
                                if faults.refuse.load(Ordering::Relaxed) {
                                    // Drop without forwarding: the client
                                    // sees an immediate reset/EOF.
                                    continue;
                                }
                                let Ok(up) = TcpStream::connect(upstream) else {
                                    continue;
                                };
                                spawn_pumps(client, up, &faults, &stop);
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(POLL_INTERVAL);
                            }
                            Err(_) => break,
                        }
                    }
                })
                .expect("spawning fault-proxy accept thread")
        };
        Ok(Self {
            addr,
            faults,
            stop,
            connections,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Toggles connection refusal for new connections.
    pub fn set_refuse(&self, on: bool) {
        self.faults.refuse.store(on, Ordering::Relaxed);
    }

    /// Toggles stalling: bytes in both directions are held (sockets stay
    /// open) until unstalled.
    pub fn set_stall(&self, on: bool) {
        self.faults.stall.store(on, Ordering::Relaxed);
    }

    /// Arms a mid-frame cut: every connection forwards at most `bytes`
    /// client→upstream, then both directions are severed.
    pub fn set_cut_after(&self, bytes: u64) {
        self.faults.cut_after.store(bytes, Ordering::Relaxed);
    }

    /// Clears all faults (healthy pass-through).
    pub fn clear(&self) {
        self.set_refuse(false);
        self.set_stall(false);
        self.faults.cut_after.store(u64::MAX, Ordering::Relaxed);
    }

    /// Connections accepted so far (including refused ones).
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Stops the proxy; existing connections are severed.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Starts the two pump threads of one proxied connection. Threads are
/// detached: they exit on their own when either side closes, the cut
/// budget fires, or the proxy's stop flag rises.
fn spawn_pumps(
    client: TcpStream,
    upstream: TcpStream,
    faults: &Arc<Faults>,
    stop: &Arc<AtomicBool>,
) {
    // The client→upstream pump owns the cut budget; when it fires (or
    // either pump finishes) both sockets are shut down so its twin exits
    // too instead of waiting on a half-open connection.
    for (mut from, mut to, counted) in [
        (
            client.try_clone().expect("clone client stream"),
            upstream.try_clone().expect("clone upstream stream"),
            true,
        ),
        (upstream, client, false),
    ] {
        let faults = Arc::clone(faults);
        let stop = Arc::clone(stop);
        let _ = std::thread::Builder::new()
            .name("fault-pump".into())
            .spawn(move || {
                let _ = from.set_read_timeout(Some(POLL_INTERVAL));
                // Budget re-read every iteration: arming a cut must also
                // catch connections pooled before it was armed.
                let mut forwarded: u64 = 0;
                let mut buf = [0u8; PUMP_BUF];
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    if faults.stall.load(Ordering::Relaxed) {
                        std::thread::sleep(POLL_INTERVAL);
                        continue;
                    }
                    let budget = if counted {
                        faults.cut_after.load(Ordering::Relaxed)
                    } else {
                        u64::MAX
                    };
                    let max = (budget.saturating_sub(forwarded)).min(PUMP_BUF as u64) as usize;
                    if max == 0 {
                        break; // cut budget exhausted: sever mid-frame
                    }
                    match from.read(&mut buf[..max]) {
                        Ok(0) => break,
                        Ok(n) => {
                            // Re-check the stall flag *after* the read: the
                            // pump was already blocked in read() when the
                            // stall was flipped on, and these bytes must be
                            // held, not leaked. Held bytes flow on release.
                            while faults.stall.load(Ordering::Relaxed)
                                && !stop.load(Ordering::Relaxed)
                            {
                                std::thread::sleep(POLL_INTERVAL);
                            }
                            forwarded += n as u64;
                            if to.write_all(&buf[..n]).is_err() {
                                break;
                            }
                        }
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut =>
                        {
                            continue;
                        }
                        Err(_) => break,
                    }
                }
                let _ = from.shutdown(Shutdown::Both);
                let _ = to.shutdown(Shutdown::Both);
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::ErrorKind;

    /// A tiny echo server: reads lines of exactly 4 bytes, echoes them.
    fn echo_server() -> (SocketAddr, Arc<AtomicBool>, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let t = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((mut s, _)) => {
                        let _ = s.set_read_timeout(Some(Duration::from_millis(10)));
                        let mut buf = [0u8; 4];
                        loop {
                            match s.read_exact(&mut buf) {
                                Ok(()) => {
                                    if s.write_all(&buf).is_err() {
                                        break;
                                    }
                                }
                                Err(e)
                                    if e.kind() == ErrorKind::WouldBlock
                                        || e.kind() == ErrorKind::TimedOut =>
                                {
                                    if stop2.load(Ordering::Relaxed) {
                                        break;
                                    }
                                }
                                Err(_) => break,
                            }
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });
        (addr, stop, t)
    }

    fn roundtrip(addr: SocketAddr, msg: &[u8; 4]) -> std::io::Result<[u8; 4]> {
        let mut s = TcpStream::connect(addr)?;
        s.set_read_timeout(Some(Duration::from_millis(500)))?;
        s.write_all(msg)?;
        let mut out = [0u8; 4];
        s.read_exact(&mut out)?;
        Ok(out)
    }

    #[test]
    fn healthy_proxy_passes_traffic_through() {
        let (addr, stop, t) = echo_server();
        let proxy = FaultProxy::spawn(addr).unwrap();
        assert_eq!(&roundtrip(proxy.addr(), b"ping").unwrap(), b"ping");
        assert_eq!(proxy.connections(), 1);
        stop.store(true, Ordering::SeqCst);
        t.join().unwrap();
    }

    #[test]
    fn refuse_severs_new_connections_and_clears() {
        let (addr, stop, t) = echo_server();
        let proxy = FaultProxy::spawn(addr).unwrap();
        proxy.set_refuse(true);
        assert!(roundtrip(proxy.addr(), b"ping").is_err());
        proxy.clear();
        assert_eq!(&roundtrip(proxy.addr(), b"ping").unwrap(), b"ping");
        stop.store(true, Ordering::SeqCst);
        t.join().unwrap();
    }

    #[test]
    fn stall_holds_bytes_until_released() {
        let (addr, stop, t) = echo_server();
        let proxy = FaultProxy::spawn(addr).unwrap();
        proxy.set_stall(true);
        let mut s = TcpStream::connect(proxy.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
        s.write_all(b"ping").unwrap();
        let mut out = [0u8; 4];
        let err = s.read_exact(&mut out).unwrap_err();
        assert!(
            matches!(err.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut),
            "stalled read must time out, got {err:?}"
        );
        // Released: the held bytes flow and the echo arrives.
        proxy.set_stall(false);
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        s.read_exact(&mut out).unwrap();
        assert_eq!(&out, b"ping");
        stop.store(true, Ordering::SeqCst);
        t.join().unwrap();
    }

    #[test]
    fn cut_after_severs_mid_message() {
        let (addr, stop, t) = echo_server();
        let proxy = FaultProxy::spawn(addr).unwrap();
        proxy.set_cut_after(2); // half a 4-byte message
        let mut s = TcpStream::connect(proxy.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        s.write_all(b"ping").unwrap();
        let mut out = [0u8; 4];
        assert!(
            s.read_exact(&mut out).is_err(),
            "connection must be severed after 2 bytes"
        );
        stop.store(true, Ordering::SeqCst);
        t.join().unwrap();
    }
}
