//! Inverted-list append throughput — the real-time insertion hot path
//! (Figure 8), including the expansion protocol (Figure 9) and append
//! throughput under concurrent scans.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use jdvs_core::ids::ImageId;
use jdvs_core::inverted::InvertedList;

fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("inverted_append");
    group.throughput(Throughput::Elements(10_000));

    for background in [true, false] {
        let label = if background {
            "background_copy"
        } else {
            "inline_copy"
        };
        group.bench_with_input(
            BenchmarkId::new("append_10k", label),
            &background,
            |b, &bg| {
                b.iter(|| {
                    // Small initial capacity so the 10k appends cross several
                    // expansions.
                    let list = InvertedList::new(64, bg);
                    for i in 0..10_000u32 {
                        list.append(ImageId(black_box(i)));
                    }
                    list.flush();
                    list.len()
                })
            },
        );
    }

    // Appends racing concurrent scans: the paper's claim is that search
    // and update do not block each other.
    group.bench_function("append_10k_with_2_readers", |b| {
        b.iter_with_setup(
            || {
                let list = Arc::new(InvertedList::new(64, true));
                let stop = Arc::new(AtomicBool::new(false));
                let readers: Vec<_> = (0..2)
                    .map(|_| {
                        let list = Arc::clone(&list);
                        let stop = Arc::clone(&stop);
                        std::thread::spawn(move || {
                            let mut acc = 0u64;
                            while !stop.load(Ordering::Relaxed) {
                                list.scan(|id| acc = acc.wrapping_add(id.as_u64()));
                            }
                            acc
                        })
                    })
                    .collect();
                (list, stop, readers)
            },
            |(list, stop, readers)| {
                for i in 0..10_000u32 {
                    list.append(ImageId(black_box(i)));
                }
                list.flush();
                stop.store(true, Ordering::Relaxed);
                for r in readers {
                    let _ = r.join();
                }
            },
        )
    });
    group.finish();
}

criterion_group!(benches, bench_append);
criterion_main!(benches);
