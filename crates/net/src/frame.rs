//! Length-prefixed, CRC-checked wire frames and the RPC envelopes they
//! carry.
//!
//! Every message between tiers travels as one frame:
//!
//! ```text
//! [len: u32 LE] [crc32c(payload): u32 LE] [payload: len bytes]
//! ```
//!
//! `len` is bounded by [`MAX_FRAME_BYTES`] so a corrupt or hostile length
//! prefix cannot make the reader allocate gigabytes, and the CRC32C (the
//! same checksum guarding the durable log) rejects bit-flipped payloads at
//! read time instead of decoding them into garbage messages.
//!
//! Inside the payload, two fixed envelopes carry the RPC semantics the
//! serving tier needs *without decoding the body*:
//!
//! - **request** — `[budget_us: u64 LE] [body]`: the remaining deadline
//!   budget granted by the caller, so a listener can make its admission
//!   decision (shed or queue) before paying for body decode;
//! - **response** — `[status: u8] [body]`: `0` = success (body is the
//!   encoded response), `1` = overloaded (body is one [`ShedReason`]
//!   byte), `2` = error (the handler could not decode or serve the
//!   request).

use std::io::{self, Read, Write};
use std::time::Duration;

use jdvs_storage::checksum::crc32c;

/// Upper bound on one frame's payload (16 MiB). A search response carrying
/// a few thousand ranked hits is well under 1 MiB; anything larger is a
/// corrupt length prefix, not a message.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Why an admission controller rejected a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The token-bucket rate limiter had no token.
    RateLimited,
    /// The bounded admission queue was full.
    QueueFull,
    /// The request's remaining budget could not cover the estimated queue
    /// wait (or expired while queued) — rejecting now beats timing out
    /// downstream.
    DeadlineHopeless,
    /// The tier is draining for shutdown.
    Draining,
}

impl ShedReason {
    fn to_byte(self) -> u8 {
        match self {
            ShedReason::RateLimited => 0,
            ShedReason::QueueFull => 1,
            ShedReason::DeadlineHopeless => 2,
            ShedReason::Draining => 3,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(ShedReason::RateLimited),
            1 => Some(ShedReason::QueueFull),
            2 => Some(ShedReason::DeadlineHopeless),
            3 => Some(ShedReason::Draining),
            _ => None,
        }
    }
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::RateLimited => f.write_str("rate limited"),
            ShedReason::QueueFull => f.write_str("admission queue full"),
            ShedReason::DeadlineHopeless => f.write_str("remaining budget below queue wait"),
            ShedReason::Draining => f.write_str("tier draining"),
        }
    }
}

/// Errors reading or parsing a frame.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// An I/O error (including read timeouts) mid-frame.
    Io(io::Error),
    /// The length prefix exceeded [`MAX_FRAME_BYTES`].
    TooLarge(usize),
    /// The payload's CRC32C did not match the header.
    Corrupt {
        /// Checksum stated in the header.
        expected: u32,
        /// Checksum of the bytes actually read.
        actual: u32,
    },
    /// The payload was shorter than the envelope it should carry, or the
    /// envelope's fields were malformed.
    Malformed,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => f.write_str("connection closed"),
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::TooLarge(len) => {
                write!(f, "frame length {len} exceeds cap {MAX_FRAME_BYTES}")
            }
            FrameError::Corrupt { expected, actual } => {
                write!(
                    f,
                    "frame checksum mismatch: header {expected:#010x}, payload {actual:#010x}"
                )
            }
            FrameError::Malformed => f.write_str("malformed rpc envelope"),
        }
    }
}

impl std::error::Error for FrameError {}

impl FrameError {
    /// Whether the error was a socket read/write timing out (mapped from
    /// the platform's `WouldBlock`/`TimedOut` kinds).
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            FrameError::Io(e) if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            )
        )
    }
}

/// Writes one frame.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_FRAME_BYTES`] — the sender controls
/// its own payload sizes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    assert!(
        payload.len() <= MAX_FRAME_BYTES,
        "frame payload exceeds MAX_FRAME_BYTES"
    );
    let mut header = [0u8; 8];
    header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..].copy_from_slice(&crc32c(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload, verifying length bound and checksum.
///
/// # Errors
///
/// [`FrameError::Closed`] on clean EOF before the first header byte;
/// [`FrameError::Io`] on I/O errors (including timeouts) anywhere else;
/// [`FrameError::TooLarge`]/[`FrameError::Corrupt`] on malformed frames.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; 8];
    // Distinguish clean EOF (peer closed between frames) from a torn read.
    match r.read(&mut header) {
        Ok(0) => return Err(FrameError::Closed),
        Ok(n) => {
            if n < header.len() {
                r.read_exact(&mut header[n..]).map_err(map_eof)?;
            }
        }
        Err(e) => return Err(FrameError::Io(e)),
    }
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
    let expected = u32::from_le_bytes(header[4..].try_into().expect("4 bytes"));
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(map_eof)?;
    let actual = crc32c(&payload);
    if actual != expected {
        return Err(FrameError::Corrupt { expected, actual });
    }
    Ok(payload)
}

/// EOF mid-frame is an I/O error (torn frame), not a clean close.
fn map_eof(e: io::Error) -> FrameError {
    FrameError::Io(e)
}

/// A decoded request envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestEnvelope {
    /// Remaining deadline budget granted by the caller.
    pub budget: Duration,
    /// Encoded request body (the tier-specific wire message).
    pub body: Vec<u8>,
}

/// Encodes a request envelope (`[budget_us][body]`) into a frame payload.
pub fn encode_request(budget: Duration, body: &[u8]) -> Vec<u8> {
    let budget_us = u64::try_from(budget.as_micros()).unwrap_or(u64::MAX);
    let mut payload = Vec::with_capacity(8 + body.len());
    payload.extend_from_slice(&budget_us.to_le_bytes());
    payload.extend_from_slice(body);
    payload
}

/// Decodes a request envelope.
///
/// # Errors
///
/// [`FrameError::Malformed`] if the payload is shorter than the header.
pub fn decode_request(payload: &[u8]) -> Result<RequestEnvelope, FrameError> {
    if payload.len() < 8 {
        return Err(FrameError::Malformed);
    }
    let budget_us = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
    Ok(RequestEnvelope {
        budget: Duration::from_micros(budget_us),
        body: payload[8..].to_vec(),
    })
}

/// A decoded response envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResponseEnvelope {
    /// Success; the body is the encoded response message.
    Ok(Vec<u8>),
    /// The admission controller shed the request.
    Overloaded(ShedReason),
    /// The handler failed (e.g. the request body did not decode).
    Error,
}

/// Encodes a response envelope into a frame payload.
pub fn encode_response(resp: &ResponseEnvelope) -> Vec<u8> {
    match resp {
        ResponseEnvelope::Ok(body) => {
            let mut payload = Vec::with_capacity(1 + body.len());
            payload.push(0);
            payload.extend_from_slice(body);
            payload
        }
        ResponseEnvelope::Overloaded(reason) => vec![1, reason.to_byte()],
        ResponseEnvelope::Error => vec![2],
    }
}

/// Decodes a response envelope.
///
/// # Errors
///
/// [`FrameError::Malformed`] on an empty payload, unknown status byte, or
/// a malformed overload reason.
pub fn decode_response(payload: &[u8]) -> Result<ResponseEnvelope, FrameError> {
    match payload.split_first() {
        Some((0, body)) => Ok(ResponseEnvelope::Ok(body.to_vec())),
        Some((1, [b])) => ShedReason::from_byte(*b)
            .map(ResponseEnvelope::Overloaded)
            .ok_or(FrameError::Malformed),
        Some((2, [])) => Ok(ResponseEnvelope::Error),
        _ => Err(FrameError::Malformed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello frames").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), b"hello frames");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert!(matches!(read_frame(&mut r), Err(FrameError::Closed)));
    }

    #[test]
    fn corrupt_payload_is_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x40;
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)),
            Err(FrameError::Corrupt { .. })
        ));
    }

    #[test]
    fn corrupt_length_is_bounded() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        buf[3] = 0xFF; // blow up the length prefix
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)),
            Err(FrameError::TooLarge(_))
        ));
    }

    #[test]
    fn torn_frame_is_an_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"truncated-in-flight").unwrap();
        buf.truncate(buf.len() - 4);
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)),
            Err(FrameError::Io(_))
        ));
        // Torn header too.
        assert!(matches!(
            read_frame(&mut Cursor::new(vec![1u8, 2, 3])),
            Err(FrameError::Io(_))
        ));
    }

    #[test]
    fn request_envelope_round_trip() {
        let payload = encode_request(Duration::from_micros(12_345), b"body-bytes");
        let env = decode_request(&payload).unwrap();
        assert_eq!(env.budget, Duration::from_micros(12_345));
        assert_eq!(env.body, b"body-bytes");
        assert!(matches!(
            decode_request(&payload[..7]),
            Err(FrameError::Malformed)
        ));
    }

    #[test]
    fn response_envelope_round_trip() {
        for env in [
            ResponseEnvelope::Ok(b"resp".to_vec()),
            ResponseEnvelope::Ok(Vec::new()),
            ResponseEnvelope::Overloaded(ShedReason::RateLimited),
            ResponseEnvelope::Overloaded(ShedReason::QueueFull),
            ResponseEnvelope::Overloaded(ShedReason::DeadlineHopeless),
            ResponseEnvelope::Overloaded(ShedReason::Draining),
            ResponseEnvelope::Error,
        ] {
            assert_eq!(decode_response(&encode_response(&env)).unwrap(), env);
        }
        assert!(decode_response(&[]).is_err());
        assert!(decode_response(&[9]).is_err());
        assert!(decode_response(&[1, 77]).is_err());
        assert!(decode_response(&[2, 0]).is_err());
    }

    #[test]
    fn timeout_kinds_are_recognized() {
        let e = FrameError::Io(io::Error::new(io::ErrorKind::WouldBlock, "t"));
        assert!(e.is_timeout());
        let e = FrameError::Io(io::Error::new(io::ErrorKind::TimedOut, "t"));
        assert!(e.is_timeout());
        assert!(!FrameError::Closed.is_timeout());
    }
}
