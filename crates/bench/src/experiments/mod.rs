//! Experiment registry: one module per paper table/figure + ablations.
//!
//! | id | paper content | module |
//! |---|---|---|
//! | `table1` | daily update counts by type | [`day`] |
//! | `fig11a` | hourly real-time index update rates | [`day`] |
//! | `fig11b` | per-hour update latency (avg/p90/p99) | [`day`] |
//! | `fig12a` | QPS with vs without real-time indexing | [`serving`] |
//! | `fig12b` | response time with vs without real-time indexing | [`serving`] |
//! | `fig13a` | QPS vs client threads (saturation) | [`serving`] |
//! | `fig13b` | response-time CDF at max throughput | [`serving`] |
//! | `fig14` | qualitative search examples | [`examples_fig`] |
//! | `ablate-reuse` | feature-reuse on/off | [`ablations`] |
//! | `ablate-bitmap` | bitmap logical deletion vs physical rebuild | [`ablations`] |
//! | `ablate-expansion` | background vs inline list expansion | [`ablations`] |
//! | `ablate-nprobe` | recall/latency vs probe count | [`ablations`] |
//! | `ablate-pq` | raw vs product-quantized scan | [`ablations`] |
//! | `ablate-lsh` | IVF vs multi-probe LSH baseline | [`ablations`] |
//! | `ablate-cache` | blender query-feature cache on/off | [`ablations`] |
//! | `searcher-scan` | block execution engine vs per-id scalar scan | [`scan`] |
//! | `pq-fastscan` | 4-bit fast-scan blocks vs 8-bit ADC scan | [`pq_fastscan`] |
//! | `batch` | batched multi-query QPS/p99 frontier vs batch size | [`batch`] |
//! | `filtered` | attribute-filter pushdown vs post-filter + escalation fill | [`filtered`] |
//! | `recovery` | durable-log append throughput + crash-recovery time | [`recovery`] |
//! | `serving` | goodput under ~3x overload through the TCP tiers | [`overload`] |
//! | `lifecycle` | replica bootstrap time vs log-suffix length + split cost | [`lifecycle`] |
//! | `coarse` | hierarchical coarse quantizer vs flat centroid scan | [`coarse`] |

pub mod ablations;
pub mod batch;
pub mod coarse;
pub mod day;
pub mod examples_fig;
pub mod filtered;
pub mod lifecycle;
pub mod overload;
pub mod pq_fastscan;
pub mod recovery;
pub mod scan;
pub mod serving;

use std::path::PathBuf;

use crate::report::ExperimentResult;

/// Shared experiment context (CLI flags).
#[derive(Debug, Clone)]
pub struct Ctx {
    /// Multiplies dataset/event sizes (1.0 = paper-scaled defaults).
    pub scale: f64,
    /// Shorter measurement windows for smoke runs.
    pub quick: bool,
    /// Where JSON results are written.
    pub out_dir: PathBuf,
}

impl Default for Ctx {
    fn default() -> Self {
        Self {
            scale: 1.0,
            quick: false,
            out_dir: PathBuf::from("bench_results"),
        }
    }
}

impl Ctx {
    /// Scales a count, keeping at least `min`.
    pub fn scaled(&self, base: usize, min: usize) -> usize {
        ((base as f64 * self.scale) as usize).max(min)
    }

    /// Measurement window: `full` normally, 40% of it under `--quick`.
    pub fn window(&self, full: std::time::Duration) -> std::time::Duration {
        if self.quick {
            full.mul_f64(0.4)
        } else {
            full
        }
    }
}

/// All experiment ids, in run order.
pub const ALL: &[&str] = &[
    "table1",
    "fig11a",
    "fig11b",
    "fig12a",
    "fig12b",
    "fig13a",
    "fig13b",
    "fig14",
    "ablate-reuse",
    "ablate-bitmap",
    "ablate-expansion",
    "ablate-nprobe",
    "ablate-pq",
    "ablate-lsh",
    "ablate-cache",
    "searcher-scan",
    "pq-fastscan",
    "batch",
    "filtered",
    "recovery",
    "serving",
    "lifecycle",
    "coarse",
];

/// Runs one experiment by id.
///
/// # Panics
///
/// Panics on an unknown id (the CLI validates first).
pub fn run(id: &str, ctx: &Ctx) -> Vec<ExperimentResult> {
    match id {
        "table1" => vec![day::table1(ctx)],
        "fig11a" => vec![day::fig11a(ctx)],
        "fig11b" => vec![day::fig11b(ctx)],
        "fig12a" => vec![serving::fig12(ctx, serving::Fig12Metric::Throughput)],
        "fig12b" => vec![serving::fig12(ctx, serving::Fig12Metric::ResponseTime)],
        "fig13a" => vec![serving::fig13a(ctx)],
        "fig13b" => vec![serving::fig13b(ctx)],
        "fig14" => vec![examples_fig::fig14(ctx)],
        "ablate-reuse" => vec![ablations::reuse(ctx)],
        "ablate-bitmap" => vec![ablations::bitmap(ctx)],
        "ablate-expansion" => vec![ablations::expansion(ctx)],
        "ablate-nprobe" => vec![ablations::nprobe(ctx)],
        "ablate-pq" => vec![ablations::pq(ctx)],
        "ablate-lsh" => vec![ablations::lsh(ctx)],
        "ablate-cache" => vec![ablations::cache(ctx)],
        "searcher-scan" => vec![scan::searcher_scan(ctx)],
        "pq-fastscan" => vec![pq_fastscan::pq_fastscan(ctx)],
        "batch" => vec![batch::multi_query(ctx)],
        "filtered" => vec![filtered::filtered(ctx)],
        "recovery" => vec![recovery::recovery(ctx)],
        "serving" => vec![overload::serving_overload(ctx)],
        "lifecycle" => vec![lifecycle::lifecycle(ctx)],
        "coarse" => vec![coarse::coarse(ctx)],
        other => panic!("unknown experiment id {other:?}"),
    }
}
