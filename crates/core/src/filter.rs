//! Attribute filters for search-time pushdown.
//!
//! Real queries carry constraints — category, price range, in-stock — and
//! the paper's serving stack applies them *during* retrieval rather than by
//! trimming an unconstrained result list. This module provides:
//!
//! - [`FilterSpec`]: the query-side constraint set (what the user asked
//!   for), carried through the wire envelope down to each searcher;
//! - [`FilterIndex`]: the index-side materialization — one
//!   [`AtomicBitmap`] per category plus one in-stock bitmap, sharing the
//!   validity bitmap's word layout so a scan tests them with the same
//!   single-word atomic loads;
//! - [`QueryFilter`] / [`FilterView`]: the per-query evaluation context —
//!   bitmap readers and a pinned forward-index reader acquired once per
//!   query, exposing `admits(id)` and a per-group lane mask for the
//!   fast-scan kernel.
//!
//! ## Pushdown contract
//!
//! The scan computes the filter lane mask **before** the distance kernel
//! runs and skips the kernel for any 32-lane group whose combined
//! `published ∧ filter` mask is zero; a fully-filtered 256-id block
//! therefore costs a handful of bitmap word loads and no LUT work. The
//! result set is bit-identical to the post-filter reference (score every
//! valid candidate, then discard non-matching ones before top-k
//! insertion): both sides evaluate the same predicate over the same
//! snapshot, only the evaluation order differs.
//!
//! Filter bitmaps are *hints about listings*, not liveness: bits are set at
//! insert/re-list time and never cleared on delisting. Every scan ANDs
//! them with the validity bitmap, so a stale set bit on an invalidated id
//! is harmless, and clearing on delisting would race re-listing for no
//! benefit.

use std::collections::HashMap;

use crate::bitmap::{AtomicBitmap, BitmapReader};
use crate::forward::{ForwardIndex, ForwardReader, NumericAttributes};
use crate::ids::ImageId;
use crate::sync::{Arc, RwLock};

use serde::{Deserialize, Serialize};

/// A query's attribute constraints. An empty spec admits everything.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FilterSpec {
    /// Only products of this category.
    pub category: Option<u32>,
    /// Only products currently in stock.
    pub in_stock_only: bool,
    /// Minimum price, inclusive (minor currency units).
    pub price_min: Option<u64>,
    /// Maximum price, inclusive.
    pub price_max: Option<u64>,
    /// Minimum cumulative sales, inclusive.
    pub min_sales: Option<u64>,
}

impl FilterSpec {
    /// An unconstrained spec (admits everything).
    pub fn none() -> Self {
        Self::default()
    }

    /// Constrains to one category.
    pub fn by_category(category: u32) -> Self {
        Self {
            category: Some(category),
            ..Self::default()
        }
    }

    /// Requires the product to be in stock.
    pub fn in_stock(mut self) -> Self {
        self.in_stock_only = true;
        self
    }

    /// Constrains the price to `[min, max]` (inclusive).
    pub fn with_price_range(mut self, min: u64, max: u64) -> Self {
        self.price_min = Some(min);
        self.price_max = Some(max);
        self
    }

    /// Requires at least `min` cumulative sales.
    pub fn with_min_sales(mut self, min: u64) -> Self {
        self.min_sales = Some(min);
        self
    }

    /// Whether this spec constrains anything at all.
    pub fn is_unconstrained(&self) -> bool {
        self.category.is_none()
            && !self.in_stock_only
            && self.price_min.is_none()
            && self.price_max.is_none()
            && self.min_sales.is_none()
    }

    /// Whether evaluation needs the forward index (range predicates).
    pub fn needs_forward(&self) -> bool {
        self.price_min.is_some() || self.price_max.is_some() || self.min_sales.is_some()
    }

    /// Ground-truth predicate over one record's numeric attributes. The
    /// bitmap pushdown and the post-filter reference both reduce to this.
    pub fn matches(&self, n: &NumericAttributes) -> bool {
        self.category.is_none_or(|c| n.category == c)
            && (!self.in_stock_only || n.in_stock)
            && self.ranges_admit(n.sales, n.price)
    }

    #[inline]
    fn ranges_admit(&self, sales: u64, price: u64) -> bool {
        self.price_min.is_none_or(|m| price >= m)
            && self.price_max.is_none_or(|m| price <= m)
            && self.min_sales.is_none_or(|m| sales >= m)
    }
}

/// Materialized per-attribute bitmaps, maintained alongside the validity
/// bitmap by every insert and re-listing; see the module docs for the
/// staleness contract.
#[derive(Debug, Default)]
pub struct FilterIndex {
    /// Bit set ⇔ the id's last listing was in stock.
    stock: AtomicBitmap,
    /// Per-category bitmaps, created lazily on first listing.
    categories: RwLock<HashMap<u32, Arc<AtomicBitmap>>>,
}

impl FilterIndex {
    /// Creates an empty filter index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a (re-)listing of `id`: flips the stock bit to
    /// `attrs.in_stock`, sets the bit in the category's bitmap, and — when
    /// the category changed from `prev_category` — clears the old
    /// category's bit so an id is a member of exactly one category bitmap.
    pub fn note_listing(
        &self,
        id: ImageId,
        category: u32,
        in_stock: bool,
        prev_category: Option<u32>,
    ) {
        let idx = id.as_usize();
        self.stock.assign(idx, in_stock);
        if let Some(prev) = prev_category {
            if prev != category {
                if let Some(bm) = self.category_bitmap(prev) {
                    bm.clear(idx);
                }
            }
        }
        self.bitmap_for(category).set(idx);
    }

    /// The in-stock bitmap.
    pub fn stock(&self) -> &AtomicBitmap {
        &self.stock
    }

    /// The bitmap of `category`, if any listing ever used it.
    pub fn category_bitmap(&self, category: u32) -> Option<Arc<AtomicBitmap>> {
        self.categories.read().get(&category).cloned()
    }

    /// Number of materialized category bitmaps.
    pub fn num_categories(&self) -> usize {
        self.categories.read().len()
    }

    fn bitmap_for(&self, category: u32) -> Arc<AtomicBitmap> {
        if let Some(bm) = self.categories.read().get(&category) {
            return Arc::clone(bm);
        }
        let mut map = self.categories.write();
        Arc::clone(
            map.entry(category)
                .or_insert_with(|| Arc::new(AtomicBitmap::new())),
        )
    }
}

/// Per-query filter context: resolves the spec against one index's filter
/// bitmaps and forward index, holding the category bitmap's `Arc` so a
/// [`FilterView`] can borrow readers from it. Two-phase (context → view)
/// because the view pins lock guards that must borrow from storage owned
/// outside the view itself.
#[derive(Debug)]
pub struct QueryFilter<'a> {
    spec: &'a FilterSpec,
    category: Option<Arc<AtomicBitmap>>,
    /// The spec names a category no listing ever used: nothing matches.
    category_missing: bool,
    stock: Option<&'a AtomicBitmap>,
    forward: Option<&'a ForwardIndex>,
}

impl<'a> QueryFilter<'a> {
    /// Resolves `spec` against an index's filter bitmaps and forward index.
    pub fn new(spec: &'a FilterSpec, filters: &'a FilterIndex, forward: &'a ForwardIndex) -> Self {
        let category = spec.category.and_then(|c| filters.category_bitmap(c));
        let category_missing = spec.category.is_some() && category.is_none();
        Self {
            spec,
            category,
            category_missing,
            stock: spec.in_stock_only.then(|| filters.stock()),
            forward: spec.needs_forward().then_some(forward),
        }
    }

    /// Pins the readers for one query's scan.
    pub fn view(&self) -> FilterView<'_> {
        FilterView {
            spec: self.spec,
            category: self.category.as_deref().map(AtomicBitmap::reader),
            category_missing: self.category_missing,
            stock: self.stock.map(AtomicBitmap::reader),
            forward: self.forward.map(ForwardIndex::reader),
        }
    }
}

/// Pinned per-query filter evaluator; see [`QueryFilter::view`].
#[derive(Debug)]
pub struct FilterView<'a> {
    spec: &'a FilterSpec,
    category: Option<BitmapReader<'a>>,
    category_missing: bool,
    stock: Option<BitmapReader<'a>>,
    forward: Option<ForwardReader<'a>>,
}

impl FilterView<'_> {
    /// Whether the filter admits image `id`. Validity is *not* part of this
    /// predicate — every caller ANDs it with the validity bitmap, exactly
    /// as the unfiltered scan does.
    #[inline]
    pub fn admits(&self, id: usize) -> bool {
        if self.category_missing {
            return false;
        }
        if let Some(cat) = &self.category {
            if !cat.test(id) {
                return false;
            }
        }
        if let Some(stock) = &self.stock {
            if !stock.test(id) {
                return false;
            }
        }
        if let Some(fwd) = &self.forward {
            let Some(n) = fwd.numeric(id) else {
                return false;
            };
            if !self.spec.ranges_admit(n.sales, n.price) {
                return false;
            }
        }
        true
    }

    /// The admitted-lane mask for one fast-scan group: bit `l` survives iff
    /// it is set in `published` and `ids[l]` passes the filter. Computed
    /// before the distance kernel runs — a zero return means the whole
    /// group (kernel, LUT accumulation, bound pruning) is skipped.
    ///
    /// Bitmap-backed constraints (category, stock) are evaluated at **word
    /// granularity** first: the constraint words covering a run of lanes
    /// are loaded once and ANDed, so a 64-id span whose combined word is
    /// zero — the common case for selective categories — rejects every
    /// lane mapping into it with one load per bitmap and no per-lane
    /// verdicts. Only lanes surviving the word mask pay the per-lane
    /// forward-index range checks.
    pub fn lane_mask(&self, ids: &[ImageId], published: u32) -> u32 {
        if self.category_missing {
            return 0;
        }
        let lane_limit = if ids.len() >= 32 {
            u32::MAX
        } else {
            (1u32 << ids.len()) - 1
        };
        let mut bits = published & lane_limit;
        if bits != 0 && (self.category.is_some() || self.stock.is_some()) {
            // One combined (category ∧ stock) word load per distinct 64-id
            // word; lanes in a group map to consecutive ids, so this is one
            // or two loads per group, cached across the lane walk.
            let mut cached_wi = usize::MAX;
            let mut cached_word = 0u64;
            let mut scan = bits;
            while scan != 0 {
                let lane = scan.trailing_zeros() as usize;
                scan &= scan - 1;
                let idx = ids[lane].as_usize();
                let wi = idx / 64;
                if wi != cached_wi {
                    let mut word = u64::MAX;
                    if let Some(cat) = &self.category {
                        word &= cat.word(wi);
                    }
                    if let Some(stock) = &self.stock {
                        word &= stock.word(wi);
                    }
                    cached_wi = wi;
                    cached_word = word;
                }
                if cached_word & (1u64 << (idx % 64)) == 0 {
                    bits &= !(1u32 << lane);
                }
            }
        }
        let Some(fwd) = &self.forward else {
            return bits;
        };
        let mut mask = 0u32;
        while bits != 0 {
            let lane = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let idx = ids[lane].as_usize();
            if fwd
                .numeric(idx)
                .is_some_and(|n| self.spec.ranges_admit(n.sales, n.price))
            {
                mask |= 1 << lane;
            }
        }
        mask
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use jdvs_storage::model::ProductId;

    fn numeric(category: u32, in_stock: bool, sales: u64, price: u64) -> NumericAttributes {
        NumericAttributes {
            product_id: ProductId(1),
            sales,
            price,
            praise: 0,
            category,
            in_stock,
        }
    }

    #[test]
    fn unconstrained_spec_admits_everything() {
        let spec = FilterSpec::none();
        assert!(spec.is_unconstrained());
        assert!(!spec.needs_forward());
        assert!(spec.matches(&numeric(7, false, 0, u64::MAX)));
    }

    #[test]
    fn spec_predicates_compose() {
        let spec = FilterSpec::by_category(3)
            .in_stock()
            .with_price_range(100, 200)
            .with_min_sales(10);
        assert!(!spec.is_unconstrained());
        assert!(spec.needs_forward());
        assert!(spec.matches(&numeric(3, true, 10, 100)));
        assert!(spec.matches(&numeric(3, true, 999, 200)));
        assert!(!spec.matches(&numeric(4, true, 10, 100)), "wrong category");
        assert!(!spec.matches(&numeric(3, false, 10, 100)), "out of stock");
        assert!(!spec.matches(&numeric(3, true, 9, 100)), "too few sales");
        assert!(!spec.matches(&numeric(3, true, 10, 99)), "under price_min");
        assert!(!spec.matches(&numeric(3, true, 10, 201)), "over price_max");
    }

    #[test]
    fn filter_index_tracks_listings_and_category_moves() {
        let fi = FilterIndex::new();
        fi.note_listing(ImageId(0), 1, true, None);
        fi.note_listing(ImageId(1), 2, false, None);
        assert_eq!(fi.num_categories(), 2);
        assert!(fi.stock().test(0));
        assert!(!fi.stock().test(1));
        assert!(fi.category_bitmap(1).unwrap().test(0));
        assert!(fi.category_bitmap(2).unwrap().test(1));
        assert!(fi.category_bitmap(9).is_none());

        // Re-listing under a new category moves the bit and flips stock.
        fi.note_listing(ImageId(0), 2, false, Some(1));
        assert!(!fi.category_bitmap(1).unwrap().test(0));
        assert!(fi.category_bitmap(2).unwrap().test(0));
        assert!(!fi.stock().test(0));
    }

    #[test]
    fn view_admits_agrees_with_ground_truth() {
        let fi = FilterIndex::new();
        let fwd = ForwardIndex::new();
        use jdvs_storage::model::ProductAttributes;
        for i in 0..20u64 {
            let attrs = ProductAttributes::new(ProductId(i), i * 10, i * 100, 0, format!("u{i}"))
                .with_category((i % 3) as u32)
                .with_stock(i % 2 == 0);
            let id = fwd.append(&attrs).unwrap();
            fi.note_listing(id, attrs.category, attrs.in_stock, None);
        }
        let specs = [
            FilterSpec::none(),
            FilterSpec::by_category(1),
            FilterSpec::by_category(2).in_stock(),
            FilterSpec::none().with_price_range(300, 900),
            FilterSpec::by_category(0).with_min_sales(60),
            FilterSpec::by_category(77), // never listed
        ];
        for spec in &specs {
            let qf = QueryFilter::new(spec, &fi, &fwd);
            let view = qf.view();
            for i in 0..20usize {
                let truth = spec.matches(&fwd.numeric(ImageId(i as u32)).unwrap());
                assert_eq!(view.admits(i), truth, "spec {spec:?} id {i}");
            }
        }
    }

    #[test]
    fn lane_mask_respects_published_and_filter() {
        let fi = FilterIndex::new();
        let fwd = ForwardIndex::new();
        use jdvs_storage::model::ProductAttributes;
        for i in 0..32u64 {
            let attrs = ProductAttributes::new(ProductId(i), 0, 0, 0, format!("u{i}"))
                .with_category((i % 2) as u32);
            let id = fwd.append(&attrs).unwrap();
            fi.note_listing(id, attrs.category, attrs.in_stock, None);
        }
        let spec = FilterSpec::by_category(1);
        let qf = QueryFilter::new(&spec, &fi, &fwd);
        let view = qf.view();
        let ids: Vec<ImageId> = (0..32).map(ImageId).collect();
        // Odd ids are category 1 → odd lanes survive, masked by published.
        assert_eq!(view.lane_mask(&ids, u32::MAX), 0xAAAA_AAAA);
        assert_eq!(view.lane_mask(&ids, 0x0000_00FF), 0x0000_00AA);
        assert_eq!(view.lane_mask(&ids, 0), 0);
        // A ragged tail: lanes beyond the ids slice never survive.
        assert_eq!(view.lane_mask(&ids[..4], u32::MAX), 0x0000_000A);
    }

    #[test]
    fn lane_mask_matches_per_lane_admits_across_word_boundaries() {
        let fi = FilterIndex::new();
        let fwd = ForwardIndex::new();
        use jdvs_storage::model::ProductAttributes;
        // 200 listings spread over four bitmap words, mixed attributes.
        for i in 0..200u64 {
            let attrs = ProductAttributes::new(ProductId(i), i * 3, i * 7, 0, format!("u{i}"))
                .with_category((i % 5) as u32)
                .with_stock(i % 3 != 0);
            let id = fwd.append(&attrs).unwrap();
            fi.note_listing(id, attrs.category, attrs.in_stock, None);
        }
        let specs = [
            FilterSpec::by_category(2),
            FilterSpec::by_category(2).in_stock(),
            FilterSpec::none().in_stock(),
            FilterSpec::by_category(4).with_price_range(100, 900),
            FilterSpec::none().with_min_sales(90),
            FilterSpec::by_category(99), // never listed
        ];
        // Groups straddling word boundaries: ids 48..80 span words 0 and 1.
        let windows: [Vec<ImageId>; 3] = [
            (48..80).map(ImageId).collect(),
            (120..152).map(ImageId).collect(),
            (180..205).map(ImageId).collect(), // ragged: ids 200.. unseen
        ];
        for spec in &specs {
            let qf = QueryFilter::new(spec, &fi, &fwd);
            let view = qf.view();
            for ids in &windows {
                for published in [u32::MAX, 0xF0F0_F0F0, 0x0000_FFFF, 1, 0] {
                    let mut want = 0u32;
                    for (lane, id) in ids.iter().enumerate() {
                        if published & (1 << lane) != 0 && view.admits(id.as_usize()) {
                            want |= 1 << lane;
                        }
                    }
                    assert_eq!(
                        view.lane_mask(ids, published),
                        want,
                        "spec {spec:?} window {:?} published {published:#x}",
                        ids[0]
                    );
                }
            }
        }
    }

    #[test]
    fn fully_filtered_word_rejects_without_per_lane_checks() {
        let fi = FilterIndex::new();
        let fwd = ForwardIndex::new();
        use jdvs_storage::model::ProductAttributes;
        // Ids 0..64 (word 0) all category 8; ids 64..128 (word 1) category 9.
        for i in 0..128u64 {
            let cat = if i < 64 { 8 } else { 9 };
            let attrs =
                ProductAttributes::new(ProductId(i), 0, 0, 0, format!("u{i}")).with_category(cat);
            let id = fwd.append(&attrs).unwrap();
            fi.note_listing(id, attrs.category, attrs.in_stock, None);
        }
        let spec = FilterSpec::by_category(9);
        let qf = QueryFilter::new(&spec, &fi, &fwd);
        let view = qf.view();
        // A group entirely inside word 0: the category word is all-zero, so
        // the word pre-mask alone empties the group.
        let w0: Vec<ImageId> = (16..48).map(ImageId).collect();
        assert_eq!(view.lane_mask(&w0, u32::MAX), 0);
        // A group straddling the boundary keeps exactly the word-1 lanes.
        let straddle: Vec<ImageId> = (48..80).map(ImageId).collect();
        assert_eq!(view.lane_mask(&straddle, u32::MAX), 0xFFFF_0000);
    }
}
