//! RPC contract: the service trait and call errors.

use std::time::Duration;

/// A request handler living inside a [`crate::node::Node`].
///
/// One service instance is shared by all of a node's worker threads, so
/// handlers must be `Sync`; jdvs services (searchers, brokers, blenders)
/// hold their state in the concurrent structures of `jdvs-core`.
pub trait Service: Send + Sync + 'static {
    /// Request message type.
    type Request: Send + 'static;
    /// Response message type.
    type Response: Send + 'static;

    /// Handles one request. Runs on a node worker thread.
    fn handle(&self, req: Self::Request) -> Self::Response;
}

/// Errors a remote call can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcError {
    /// No reply within the caller's deadline.
    Timeout {
        /// The deadline that elapsed.
        deadline: Duration,
    },
    /// The target node has been shut down (or crashed via fault injection).
    NodeDown,
    /// The fault injector dropped the request.
    Dropped,
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Timeout { deadline } => write!(f, "rpc timed out after {deadline:?}"),
            RpcError::NodeDown => f.write_str("target node is down"),
            RpcError::Dropped => f.write_str("request dropped by fault injection"),
        }
    }
}

impl std::error::Error for RpcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        assert!(RpcError::Timeout {
            deadline: Duration::from_millis(5)
        }
        .to_string()
        .contains("timed out"));
        assert!(RpcError::NodeDown.to_string().contains("down"));
        assert!(RpcError::Dropped.to_string().contains("dropped"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes(_: &dyn std::error::Error) {}
        takes(&RpcError::NodeDown);
    }
}
