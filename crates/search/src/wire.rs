//! Binary wire codec for the search hierarchy's protocol messages.
//!
//! The TCP serving tier carries [`crate::protocol`] messages as frame
//! payloads; this module defines their encoding. Like the durable log's
//! event codec it is a fixed little-endian layout (not serde), and the
//! decoder refuses structurally invalid input — truncated bodies, unknown
//! tags, bad UTF-8, implausible counts, trailing bytes — returning
//! [`WireError`] instead of panicking or misparsing:
//!
//! ```text
//! search_query    := search_v1 | 2:u8 search_v1 filter          (v2)
//! search_v1       := input k:u64 opt(nprobe:u64) bool(compressed) opt(budget)
//! input           := 0 features | 1 url
//! fanout_query    := fanout_v1 | magic:u32 fanout_v1 filter     (v2)
//! fanout_v1       := features k:u64 opt(nprobe:u64) bool(compressed) opt(budget)
//! filter          := opt(category:u32) bool(in_stock_only) opt(price_min:u64)
//!                    opt(price_max:u64) opt(min_sales:u64)
//! partial_resp    := count hit* ok:u64 total:u64 timed_out:u64 failed:u64 shed:u64
//! hit             := partition:u64 local_id:u32 distance:f32 product_id:u64
//!                    sales:u64 price:u64 praise:u64 url
//! search_resp     := count ranked* answered:u64 failed:u64 ok:u64 total:u64
//!                    timed_out:u64 p_failed:u64 shed:u64 opt(category:u32)
//! ranked          := hit score:f64
//! features        := count f32*
//! f32/f64         := IEEE-754 bits, little-endian
//! budget          := nanos:u64
//! url             := len:u32 bytes (UTF-8)
//! opt(x)          := 0:u8 | 1:u8 x
//! bool            := 0:u8 | 1:u8
//! ```
//!
//! Bit-level integrity is the frame layer's job
//! ([`jdvs_net::frame`]'s CRC32C); this decoder's strictness is the second
//! line of defense, so a payload that survives the CRC but was produced by
//! a different encoder version degrades into a clean error.
//!
//! **Versioning.** Filtered queries ride a v2 envelope; unfiltered queries
//! still encode the original v1 layout byte-for-byte, so a mixed-version
//! fleet keeps interoperating for every query that doesn't use the new
//! field. The v2 markers are chosen to be unambiguous against v1: a
//! `SearchQuery` v1 payload always starts with input tag `0` or `1`, so tag
//! `2` is free; a `FanoutQuery` v1 payload starts with a feature count whose
//! value is bounded by the payload length, so the magic `0xF17E_0002`
//! (≈ 4 × 10⁹) can never be a valid v1 count.

use std::time::Duration;

use jdvs_core::FilterSpec;
use jdvs_storage::model::ProductId;

use crate::protocol::{
    FanoutQuery, PartialHit, PartialResponse, QueryInput, RankedHit, SearchQuery, SearchResponse,
};

/// Decoding failure: the payload is not a well-formed protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the field being read.
    Truncated {
        /// Field being decoded when the payload ran out.
        field: &'static str,
    },
    /// Unknown tag, option or boolean byte.
    UnknownTag(u8),
    /// A string field was not valid UTF-8.
    InvalidUtf8,
    /// Bytes remained after a complete message was decoded.
    TrailingBytes(usize),
    /// A length or count prefix was implausibly large for the remaining
    /// payload.
    LengthOverflow,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { field } => write!(f, "payload truncated reading {field}"),
            WireError::UnknownTag(t) => write!(f, "unknown tag byte {t}"),
            WireError::InvalidUtf8 => f.write_str("string is not valid UTF-8"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::LengthOverflow => f.write_str("length prefix exceeds payload"),
        }
    }
}

impl std::error::Error for WireError {}

const TAG_FEATURES: u8 = 0;
const TAG_IMAGE_URL: u8 = 1;
/// v2 [`SearchQuery`] envelope marker: distinct from both input tags, so a
/// v1 decoder rejects it cleanly instead of misparsing.
const TAG_QUERY_V2: u8 = 2;
/// v2 [`FanoutQuery`] envelope marker, read as the leading `u32` where v1
/// stores the feature count. Far beyond any count that passes the
/// length-bound check, so the two layouts can't be confused.
const FANOUT_MAGIC_V2: u32 = 0xF17E_0002;

/// Encodes a [`SearchQuery`]. Unfiltered queries produce the v1 layout
/// byte-for-byte; only a present `filter` engages the v2 envelope.
pub fn encode_search_query(q: &SearchQuery) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    if q.filter.is_some() {
        buf.push(TAG_QUERY_V2);
    }
    match &q.input {
        QueryInput::Features(f) => {
            buf.push(TAG_FEATURES);
            put_features(&mut buf, f);
        }
        QueryInput::ImageUrl(u) => {
            buf.push(TAG_IMAGE_URL);
            put_str(&mut buf, u);
        }
    }
    put_u64(&mut buf, q.k as u64);
    put_opt_u64(&mut buf, q.nprobe.map(|n| n as u64));
    put_bool(&mut buf, q.compressed);
    put_opt_duration(&mut buf, q.budget);
    if let Some(filter) = &q.filter {
        put_filter(&mut buf, filter);
    }
    buf
}

/// Decodes a [`SearchQuery`] (v1 or v2).
///
/// # Errors
///
/// Any [`WireError`] on malformed input.
pub fn decode_search_query(bytes: &[u8]) -> Result<SearchQuery, WireError> {
    let mut r = Cursor { buf: bytes, pos: 0 };
    let mut versioned = false;
    let input = match r.u8("input tag")? {
        TAG_QUERY_V2 => {
            versioned = true;
            match r.u8("input tag")? {
                TAG_FEATURES => QueryInput::Features(r.features()?),
                TAG_IMAGE_URL => QueryInput::ImageUrl(r.string("image url")?),
                other => return Err(WireError::UnknownTag(other)),
            }
        }
        TAG_FEATURES => QueryInput::Features(r.features()?),
        TAG_IMAGE_URL => QueryInput::ImageUrl(r.string("image url")?),
        other => return Err(WireError::UnknownTag(other)),
    };
    let q = SearchQuery {
        input,
        k: r.u64("k")? as usize,
        nprobe: r.opt_u64("nprobe")?.map(|n| n as usize),
        compressed: r.bool("compressed")?,
        budget: r.opt_duration("budget")?,
        filter: if versioned { Some(r.filter()?) } else { None },
    };
    r.finish()?;
    Ok(q)
}

/// Encodes a [`FanoutQuery`]. Unfiltered queries produce the v1 layout
/// byte-for-byte; only a present `filter` engages the v2 envelope.
pub fn encode_fanout_query(q: &FanoutQuery) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32 + 4 * q.features.len());
    if q.filter.is_some() {
        put_u32(&mut buf, FANOUT_MAGIC_V2);
    }
    put_features(&mut buf, &q.features);
    put_u64(&mut buf, q.k as u64);
    put_opt_u64(&mut buf, q.nprobe.map(|n| n as u64));
    put_bool(&mut buf, q.compressed);
    put_opt_duration(&mut buf, q.budget);
    if let Some(filter) = &q.filter {
        put_filter(&mut buf, filter);
    }
    buf
}

/// Decodes a [`FanoutQuery`] (v1 or v2).
///
/// # Errors
///
/// Any [`WireError`] on malformed input.
pub fn decode_fanout_query(bytes: &[u8]) -> Result<FanoutQuery, WireError> {
    let mut r = Cursor { buf: bytes, pos: 0 };
    let versioned =
        bytes.len() >= 4 && u32::from_le_bytes(bytes[..4].try_into().unwrap()) == FANOUT_MAGIC_V2;
    if versioned {
        r.take(4, "fanout magic")?;
    }
    let q = FanoutQuery {
        features: r.features()?,
        k: r.u64("k")? as usize,
        nprobe: r.opt_u64("nprobe")?.map(|n| n as usize),
        compressed: r.bool("compressed")?,
        budget: r.opt_duration("budget")?,
        filter: if versioned { Some(r.filter()?) } else { None },
    };
    r.finish()?;
    Ok(q)
}

/// Encodes a [`PartialResponse`].
pub fn encode_partial_response(p: &PartialResponse) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + 64 * p.hits.len());
    put_u32(&mut buf, p.hits.len() as u32);
    for hit in &p.hits {
        put_hit(&mut buf, hit);
    }
    put_u64(&mut buf, p.partitions_ok as u64);
    put_u64(&mut buf, p.partitions_total as u64);
    put_u64(&mut buf, p.partitions_timed_out as u64);
    put_u64(&mut buf, p.partitions_failed as u64);
    put_u64(&mut buf, p.partitions_shed as u64);
    buf
}

/// Decodes a [`PartialResponse`].
///
/// # Errors
///
/// Any [`WireError`] on malformed input.
pub fn decode_partial_response(bytes: &[u8]) -> Result<PartialResponse, WireError> {
    let mut r = Cursor { buf: bytes, pos: 0 };
    let count = r.count("hit count")?;
    let mut hits = Vec::with_capacity(count);
    for _ in 0..count {
        hits.push(r.hit()?);
    }
    let p = PartialResponse {
        hits,
        partitions_ok: r.u64("partitions_ok")? as usize,
        partitions_total: r.u64("partitions_total")? as usize,
        partitions_timed_out: r.u64("partitions_timed_out")? as usize,
        partitions_failed: r.u64("partitions_failed")? as usize,
        partitions_shed: r.u64("partitions_shed")? as usize,
    };
    r.finish()?;
    Ok(p)
}

/// Encodes a [`SearchResponse`].
pub fn encode_search_response(s: &SearchResponse) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + 72 * s.results.len());
    put_u32(&mut buf, s.results.len() as u32);
    for ranked in &s.results {
        put_hit(&mut buf, &ranked.hit);
        put_u64(&mut buf, ranked.score.to_bits());
    }
    put_u64(&mut buf, s.groups_answered as u64);
    put_u64(&mut buf, s.groups_failed as u64);
    put_u64(&mut buf, s.partitions_ok as u64);
    put_u64(&mut buf, s.partitions_total as u64);
    put_u64(&mut buf, s.partitions_timed_out as u64);
    put_u64(&mut buf, s.partitions_failed as u64);
    put_u64(&mut buf, s.partitions_shed as u64);
    match s.detected_category {
        None => buf.push(0),
        Some(c) => {
            buf.push(1);
            put_u32(&mut buf, c);
        }
    }
    buf
}

/// Decodes a [`SearchResponse`].
///
/// # Errors
///
/// Any [`WireError`] on malformed input.
pub fn decode_search_response(bytes: &[u8]) -> Result<SearchResponse, WireError> {
    let mut r = Cursor { buf: bytes, pos: 0 };
    let count = r.count("result count")?;
    let mut results = Vec::with_capacity(count);
    for _ in 0..count {
        let hit = r.hit()?;
        let score = f64::from_bits(r.u64("score")?);
        results.push(RankedHit { hit, score });
    }
    let s = SearchResponse {
        results,
        groups_answered: r.u64("groups_answered")? as usize,
        groups_failed: r.u64("groups_failed")? as usize,
        partitions_ok: r.u64("partitions_ok")? as usize,
        partitions_total: r.u64("partitions_total")? as usize,
        partitions_timed_out: r.u64("partitions_timed_out")? as usize,
        partitions_failed: r.u64("partitions_failed")? as usize,
        partitions_shed: r.u64("partitions_shed")? as usize,
        detected_category: match r.u8("category option")? {
            0 => None,
            1 => Some(r.u32("category")?),
            other => return Err(WireError::UnknownTag(other)),
        },
    };
    r.finish()?;
    Ok(s)
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(u8::from(v));
}

fn put_opt_u64(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => buf.push(0),
        Some(x) => {
            buf.push(1);
            put_u64(buf, x);
        }
    }
}

fn put_opt_u32(buf: &mut Vec<u8>, v: Option<u32>) {
    match v {
        None => buf.push(0),
        Some(x) => {
            buf.push(1);
            put_u32(buf, x);
        }
    }
}

fn put_filter(buf: &mut Vec<u8>, f: &FilterSpec) {
    put_opt_u32(buf, f.category);
    put_bool(buf, f.in_stock_only);
    put_opt_u64(buf, f.price_min);
    put_opt_u64(buf, f.price_max);
    put_opt_u64(buf, f.min_sales);
}

fn put_opt_duration(buf: &mut Vec<u8>, v: Option<Duration>) {
    put_opt_u64(
        buf,
        v.map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)),
    );
}

fn put_features(buf: &mut Vec<u8>, features: &[f32]) {
    put_u32(buf, features.len() as u32);
    for f in features {
        put_u32(buf, f.to_bits());
    }
}

fn put_hit(buf: &mut Vec<u8>, hit: &PartialHit) {
    put_u64(buf, hit.partition as u64);
    put_u32(buf, hit.local_id);
    put_u32(buf, hit.distance.to_bits());
    put_u64(buf, hit.product_id.0);
    put_u64(buf, hit.sales);
    put_u64(buf, hit.price);
    put_u64(buf, hit.praise);
    put_str(buf, &hit.url);
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::Truncated { field });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, field)?[0])
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, field)?.try_into().unwrap()))
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, field)?.try_into().unwrap()))
    }

    fn bool(&mut self, field: &'static str) -> Result<bool, WireError> {
        match self.u8(field)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::UnknownTag(other)),
        }
    }

    /// A count prefix, sanity-bounded by the bytes actually remaining
    /// (every counted element is at least one byte) so corrupt counts fail
    /// fast instead of attempting a giant allocation.
    fn count(&mut self, field: &'static str) -> Result<usize, WireError> {
        let n = self.u32(field)? as usize;
        if n > self.buf.len() - self.pos {
            return Err(WireError::LengthOverflow);
        }
        Ok(n)
    }

    fn string(&mut self, field: &'static str) -> Result<String, WireError> {
        let len = self.u32(field)? as usize;
        if len > self.buf.len() - self.pos {
            return Err(WireError::LengthOverflow);
        }
        let bytes = self.take(len, field)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::InvalidUtf8)
    }

    fn opt_u64(&mut self, field: &'static str) -> Result<Option<u64>, WireError> {
        match self.u8(field)? {
            0 => Ok(None),
            1 => Ok(Some(self.u64(field)?)),
            other => Err(WireError::UnknownTag(other)),
        }
    }

    fn opt_duration(&mut self, field: &'static str) -> Result<Option<Duration>, WireError> {
        Ok(self.opt_u64(field)?.map(Duration::from_nanos))
    }

    fn opt_u32(&mut self, field: &'static str) -> Result<Option<u32>, WireError> {
        match self.u8(field)? {
            0 => Ok(None),
            1 => Ok(Some(self.u32(field)?)),
            other => Err(WireError::UnknownTag(other)),
        }
    }

    fn filter(&mut self) -> Result<FilterSpec, WireError> {
        Ok(FilterSpec {
            category: self.opt_u32("filter.category")?,
            in_stock_only: self.bool("filter.in_stock_only")?,
            price_min: self.opt_u64("filter.price_min")?,
            price_max: self.opt_u64("filter.price_max")?,
            min_sales: self.opt_u64("filter.min_sales")?,
        })
    }

    fn features(&mut self) -> Result<Vec<f32>, WireError> {
        let n = self.u32("feature count")? as usize;
        if n.saturating_mul(4) > self.buf.len() - self.pos {
            return Err(WireError::LengthOverflow);
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(f32::from_bits(self.u32("feature")?));
        }
        Ok(out)
    }

    fn hit(&mut self) -> Result<PartialHit, WireError> {
        Ok(PartialHit {
            partition: self.u64("partition")? as usize,
            local_id: self.u32("local_id")?,
            distance: f32::from_bits(self.u32("distance")?),
            product_id: ProductId(self.u64("product_id")?),
            sales: self.u64("sales")?,
            price: self.u64("price")?,
            praise: self.u64("praise")?,
            url: self.string("url")?,
        })
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::TrailingBytes(self.buf.len() - self.pos));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_hit(partition: usize, id: u32) -> PartialHit {
        PartialHit {
            partition,
            local_id: id,
            distance: 0.25 + id as f32,
            product_id: ProductId(u64::from(id) * 3),
            sales: 7,
            price: 1999,
            praise: 42,
            url: format!("img/{id}.jpg"),
        }
    }

    #[test]
    fn search_query_round_trips() {
        let queries = [
            SearchQuery::by_features(vec![0.0, -1.5, f32::MAX], 10),
            SearchQuery::by_image_url("日本語/url.png", 3)
                .with_nprobe(8)
                .with_compressed()
                .with_budget(Duration::from_millis(450)),
            SearchQuery::by_features(vec![], 0),
        ];
        for q in queries {
            let bytes = encode_search_query(&q);
            assert_eq!(decode_search_query(&bytes).unwrap(), q);
        }
    }

    #[test]
    fn fanout_query_round_trips() {
        let q = FanoutQuery {
            features: vec![1.0, 2.0, 3.5],
            k: 20,
            nprobe: None,
            compressed: true,
            budget: Some(Duration::from_nanos(123_456_789)),
            filter: None,
        };
        let bytes = encode_fanout_query(&q);
        assert_eq!(decode_fanout_query(&bytes).unwrap(), q);
    }

    #[test]
    fn filtered_queries_round_trip_via_v2_envelope() {
        let spec = FilterSpec::by_category(7)
            .in_stock()
            .with_price_range(100, 5_000)
            .with_min_sales(3);
        let q = SearchQuery::by_features(vec![0.5, -2.0], 12).with_filter(spec.clone());
        let bytes = encode_search_query(&q);
        assert_eq!(bytes[0], TAG_QUERY_V2);
        assert_eq!(decode_search_query(&bytes).unwrap(), q);

        let f = FanoutQuery {
            features: vec![1.0; 4],
            k: 9,
            nprobe: Some(6),
            compressed: true,
            budget: Some(Duration::from_millis(80)),
            filter: Some(spec),
        };
        let bytes = encode_fanout_query(&f);
        assert_eq!(
            u32::from_le_bytes(bytes[..4].try_into().unwrap()),
            FANOUT_MAGIC_V2
        );
        assert_eq!(decode_fanout_query(&bytes).unwrap(), f);

        // An "empty" filter is still a filter: the v2 envelope carries it
        // distinctly from `None`.
        let q = SearchQuery::by_image_url("u", 1).with_filter(FilterSpec::none());
        assert_eq!(
            decode_search_query(&encode_search_query(&q))
                .unwrap()
                .filter,
            Some(FilterSpec::none())
        );
    }

    #[test]
    fn unfiltered_queries_stay_byte_identical_to_v1() {
        // A fleet mid-upgrade must keep interoperating: queries that don't
        // use the filter field encode exactly the legacy layout.
        let q = SearchQuery::by_image_url("img/q.png", 5).with_nprobe(4);
        let bytes = encode_search_query(&q);
        assert_eq!(bytes[0], TAG_IMAGE_URL, "no v2 envelope without a filter");

        let f = FanoutQuery {
            features: vec![1.0, 2.0],
            k: 3,
            nprobe: None,
            compressed: false,
            budget: None,
            filter: None,
        };
        let bytes = encode_fanout_query(&f);
        assert_eq!(
            u32::from_le_bytes(bytes[..4].try_into().unwrap()),
            2,
            "leading u32 is the v1 feature count"
        );
    }

    #[test]
    fn responses_round_trip() {
        let p = PartialResponse {
            hits: vec![sample_hit(0, 1), sample_hit(3, 9)],
            partitions_ok: 3,
            partitions_total: 6,
            partitions_timed_out: 1,
            partitions_failed: 1,
            partitions_shed: 1,
        };
        assert_eq!(
            decode_partial_response(&encode_partial_response(&p)).unwrap(),
            p
        );

        let s = SearchResponse {
            results: vec![RankedHit {
                hit: sample_hit(1, 5),
                score: 0.875,
            }],
            groups_answered: 2,
            groups_failed: 1,
            partitions_ok: 4,
            partitions_total: 8,
            partitions_timed_out: 2,
            partitions_failed: 1,
            partitions_shed: 1,
            detected_category: Some(17),
        };
        assert_eq!(
            decode_search_response(&encode_search_response(&s)).unwrap(),
            s
        );
    }

    #[test]
    fn rejects_unknown_tags_and_trailing_bytes() {
        let mut bytes = encode_search_query(&SearchQuery::by_image_url("u", 1));
        bytes[0] = 7;
        assert_eq!(decode_search_query(&bytes), Err(WireError::UnknownTag(7)));

        let mut bytes = encode_partial_response(&PartialResponse::default());
        bytes.push(0);
        assert_eq!(
            decode_partial_response(&bytes),
            Err(WireError::TrailingBytes(1))
        );
    }

    #[test]
    fn corrupt_counts_do_not_allocate_garbage() {
        let p = PartialResponse {
            hits: vec![sample_hit(0, 1)],
            ..PartialResponse::default()
        };
        let mut bytes = encode_partial_response(&p);
        bytes[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_partial_response(&bytes),
            Err(WireError::LengthOverflow)
        );
    }

    #[test]
    fn every_truncation_is_a_clean_error() {
        let q = SearchQuery::by_image_url("img/q.png", 5)
            .with_nprobe(4)
            .with_budget(Duration::from_millis(80));
        let bytes = encode_search_query(&q);
        for len in 0..bytes.len() {
            assert!(
                decode_search_query(&bytes[..len]).is_err(),
                "prefix of length {len} must not decode"
            );
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_string() -> impl Strategy<Value = String> {
        prop::collection::vec(any::<char>(), 0..12).prop_map(|cs| cs.into_iter().collect())
    }

    fn arb_budget() -> impl Strategy<Value = Option<Duration>> {
        prop_oneof![
            Just(None),
            any::<u64>().prop_map(|n| Some(Duration::from_nanos(n))),
        ]
    }

    fn arb_input() -> impl Strategy<Value = QueryInput> {
        prop_oneof![
            prop::collection::vec(any::<f32>(), 0..16).prop_map(QueryInput::Features),
            arb_string().prop_map(QueryInput::ImageUrl),
        ]
    }

    fn arb_filter() -> impl Strategy<Value = Option<FilterSpec>> {
        prop_oneof![
            Just(None),
            (
                prop_oneof![Just(None), any::<u32>().prop_map(Some)],
                any::<bool>(),
                prop_oneof![Just(None), any::<u64>().prop_map(Some)],
                prop_oneof![Just(None), any::<u64>().prop_map(Some)],
                prop_oneof![Just(None), any::<u64>().prop_map(Some)],
            )
                .prop_map(
                    |(category, in_stock_only, price_min, price_max, min_sales)| {
                        Some(FilterSpec {
                            category,
                            in_stock_only,
                            price_min,
                            price_max,
                            min_sales,
                        })
                    }
                ),
        ]
    }

    fn arb_search_query() -> impl Strategy<Value = SearchQuery> {
        (
            arb_input(),
            0usize..10_000,
            prop_oneof![Just(None), (1usize..64).prop_map(Some)],
            any::<bool>(),
            arb_budget(),
            arb_filter(),
        )
            .prop_map(
                |(input, k, nprobe, compressed, budget, filter)| SearchQuery {
                    input,
                    k,
                    nprobe,
                    compressed,
                    budget,
                    filter,
                },
            )
    }

    fn arb_fanout_query() -> impl Strategy<Value = FanoutQuery> {
        (
            prop::collection::vec(any::<f32>(), 0..16),
            0usize..10_000,
            prop_oneof![Just(None), (1usize..64).prop_map(Some)],
            any::<bool>(),
            arb_budget(),
            arb_filter(),
        )
            .prop_map(
                |(features, k, nprobe, compressed, budget, filter)| FanoutQuery {
                    features,
                    k,
                    nprobe,
                    compressed,
                    budget,
                    filter,
                },
            )
    }

    fn arb_hit() -> impl Strategy<Value = PartialHit> {
        (
            0usize..64,
            any::<u32>(),
            any::<f32>(),
            any::<u64>(),
            (any::<u64>(), any::<u64>(), any::<u64>()),
            arb_string(),
        )
            .prop_map(
                |(partition, local_id, distance, product, (sales, price, praise), url)| {
                    PartialHit {
                        partition,
                        local_id,
                        distance,
                        product_id: jdvs_storage::model::ProductId(product),
                        sales,
                        price,
                        praise,
                        url,
                    }
                },
            )
    }

    fn arb_partial_response() -> impl Strategy<Value = PartialResponse> {
        (
            prop::collection::vec(arb_hit(), 0..6),
            (0usize..100, 0usize..100, 0usize..100),
            (0usize..100, 0usize..100),
        )
            .prop_map(
                |(hits, (ok, total, timed_out), (failed, shed))| PartialResponse {
                    hits,
                    partitions_ok: ok,
                    partitions_total: total,
                    partitions_timed_out: timed_out,
                    partitions_failed: failed,
                    partitions_shed: shed,
                },
            )
    }

    fn arb_search_response() -> impl Strategy<Value = SearchResponse> {
        (
            prop::collection::vec(
                (arb_hit(), any::<f64>()).prop_map(|(hit, score)| RankedHit { hit, score }),
                0..6,
            ),
            (0usize..10, 0usize..10),
            (0usize..100, 0usize..100, 0usize..100),
            (0usize..100, 0usize..100),
            prop_oneof![Just(None), any::<u32>().prop_map(Some)],
        )
            .prop_map(
                |(results, (answered, failed), (ok, total, timed_out), (p_failed, shed), cat)| {
                    SearchResponse {
                        results,
                        groups_answered: answered,
                        groups_failed: failed,
                        partitions_ok: ok,
                        partitions_total: total,
                        partitions_timed_out: timed_out,
                        partitions_failed: p_failed,
                        partitions_shed: shed,
                        detected_category: cat,
                    }
                },
            )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn search_query_round_trip(q in arb_search_query()) {
            let bytes = encode_search_query(&q);
            prop_assert_eq!(decode_search_query(&bytes).unwrap(), q);
        }

        #[test]
        fn fanout_query_round_trip(q in arb_fanout_query()) {
            let bytes = encode_fanout_query(&q);
            prop_assert_eq!(decode_fanout_query(&bytes).unwrap(), q);
        }

        #[test]
        fn partial_response_round_trip(p in arb_partial_response()) {
            let bytes = encode_partial_response(&p);
            prop_assert_eq!(decode_partial_response(&bytes).unwrap(), p);
        }

        #[test]
        fn search_response_round_trip(s in arb_search_response()) {
            let bytes = encode_search_response(&s);
            prop_assert_eq!(decode_search_response(&bytes).unwrap(), s);
        }

        #[test]
        fn truncation_never_panics_never_misparses(
            q in arb_search_query(),
            cut in any::<u16>(),
        ) {
            let bytes = encode_search_query(&q);
            let len = (cut as usize) % (bytes.len() + 1);
            if len < bytes.len() {
                // A strict prefix must fail cleanly: fixed field order
                // means missing bytes are always detectable.
                prop_assert!(decode_search_query(&bytes[..len]).is_err());
            }
        }

        #[test]
        fn bit_flips_never_panic(
            p in arb_partial_response(),
            flip in (any::<u16>(), 0u8..8),
        ) {
            let mut bytes = encode_partial_response(&p);
            if !bytes.is_empty() {
                let (pos, bit) = flip;
                let idx = (pos as usize) % bytes.len();
                bytes[idx] ^= 1 << bit;
                // Either a clean error or a structurally valid message —
                // never a panic. (The frame CRC catches flips in
                // transit; this guards the decoder itself.)
                let _ = decode_partial_response(&bytes);
            }
        }

        #[test]
        fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
            let _ = decode_search_query(&bytes);
            let _ = decode_fanout_query(&bytes);
            let _ = decode_partial_response(&bytes);
            let _ = decode_search_response(&bytes);
        }
    }
}
