//! Concurrency stress tests for the real-time index: the paper's central
//! claim is that search and update never conflict. These tests run
//! searcher-like reader threads against a writer applying the full event
//! mix, checking invariants the whole time.

// These tests drive real OS threads; skip them under `--cfg loom`
// model builds (crates/core/tests/loom.rs owns that configuration).
#![cfg(not(loom))]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use jdvs_core::ids::ImageId;
use jdvs_core::{IndexConfig, VisualIndex};
use jdvs_storage::model::{ImageKey, ProductAttributes, ProductId};
use jdvs_vector::rng::Xoshiro256;
use jdvs_vector::Vector;

const DIM: usize = 16;

fn fresh_index() -> Arc<VisualIndex> {
    let mut rng = Xoshiro256::seed_from(77);
    let train: Vec<Vector> = (0..128)
        .map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect())
        .collect();
    Arc::new(VisualIndex::bootstrap(
        IndexConfig {
            dim: DIM,
            num_lists: 8,
            initial_list_capacity: 4, // force many expansions
            nprobe: 8,
            ..Default::default()
        },
        &train,
    ))
}

fn vec_for(i: u64) -> Vector {
    let mut rng = Xoshiro256::seed_from(i ^ 0xFEED);
    (0..DIM).map(|_| rng.next_gaussian() as f32).collect()
}

fn attrs_for(i: u64) -> ProductAttributes {
    ProductAttributes::new(ProductId(i), i, 100 + i, i % 7, format!("u{i}"))
}

#[test]
fn searches_stay_consistent_while_writer_inserts_through_expansions() {
    let index = fresh_index();
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|r| {
            let index = Arc::clone(&index);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let query = vec_for(r);
                let mut observed_max = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let hits = index.search(query.as_slice(), 10, 8);
                    // Results must be sorted, distinct, and reference
                    // readable records.
                    for w in hits.windows(2) {
                        assert!(w[0].distance <= w[1].distance);
                        assert_ne!(w[0].id, w[1].id);
                    }
                    for n in &hits {
                        let attrs = index
                            .attributes(ImageId(n.id as u32))
                            .expect("hit must reference a published record");
                        assert_eq!(attrs.url, format!("u{}", attrs.product_id.0));
                    }
                    observed_max = observed_max.max(hits.len());
                }
                observed_max
            })
        })
        .collect();

    for i in 0..5_000u64 {
        index.insert(vec_for(i), attrs_for(i)).unwrap();
    }
    index.flush();
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        assert!(r.join().unwrap() > 0, "readers must see results");
    }
    assert_eq!(index.num_images(), 5_000);
    assert!(
        index.inverted().total_expansions() > 0,
        "expansions must have occurred"
    );
    // Post-quiescence: every insert is searchable.
    let hits = index.search(vec_for(4_999).as_slice(), 1, 8);
    let top = index.attributes(ImageId(hits[0].id as u32)).unwrap();
    assert_eq!(top.url, "u4999");
}

#[test]
fn deletions_and_relistings_never_corrupt_reader_view() {
    let index = fresh_index();
    // Preload 2 000 images.
    for i in 0..2_000u64 {
        index.insert(vec_for(i), attrs_for(i)).unwrap();
    }
    index.flush();
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|r| {
            let index = Arc::clone(&index);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let query = vec_for(1_000 + r);
                while !stop.load(Ordering::Relaxed) {
                    for n in index.search(query.as_slice(), 20, 8) {
                        // Whatever the interleaving, a returned hit was
                        // valid at scan time and must still have coherent
                        // attributes.
                        let attrs = index.attributes(ImageId(n.id as u32)).unwrap();
                        assert!(attrs.product_id.0 < 2_000);
                    }
                }
            })
        })
        .collect();

    // Writer: delete/relist churn over the whole catalog.
    for round in 0..20 {
        for i in (0..2_000u64).filter(|i| i % 3 == round % 3) {
            let key = ImageKey::from_url(&format!("u{i}"));
            index.invalidate(key, &format!("u{i}")).unwrap();
        }
        for i in (0..2_000u64).filter(|i| i % 3 == round % 3) {
            index
                .upsert(attrs_for(i), || panic!("relist must reuse"))
                .unwrap();
        }
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }
    assert_eq!(index.valid_images(), 2_000, "all relisted at the end");
    assert_eq!(index.num_images(), 2_000, "no duplicate records from churn");
}

#[test]
fn attribute_updates_race_searches_without_torn_reads() {
    let index = fresh_index();
    for i in 0..500u64 {
        index.insert(vec_for(i), attrs_for(i)).unwrap();
    }
    index.flush();
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let index = Arc::clone(&index);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for i in 0..500u64 {
                        let a = index.attributes(ImageId(i as u32)).unwrap();
                        // The writer flips between two coherent states per
                        // field; any mix is fine, garbage is not.
                        assert!(
                            a.sales == i || a.sales == i + 1_000_000,
                            "torn sales {}",
                            a.sales
                        );
                        assert!(
                            a.price == 100 + i || a.price == 42,
                            "torn price {}",
                            a.price
                        );
                    }
                }
            })
        })
        .collect();
    for _ in 0..200 {
        for i in 0..500u64 {
            let key = ImageKey::from_url(&format!("u{i}"));
            index
                .update_numeric(key, &format!("u{i}"), Some(i + 1_000_000), Some(42), None)
                .unwrap();
            index
                .update_numeric(key, &format!("u{i}"), Some(i), Some(100 + i), None)
                .unwrap();
        }
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }
}

#[test]
fn single_writer_many_reader_throughput_smoke() {
    // Not a benchmark — just asserts forward progress under maximum
    // read-side pressure (regression guard against accidental writer
    // blocking on the read path).
    let index = fresh_index();
    for i in 0..100u64 {
        index.insert(vec_for(i), attrs_for(i)).unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let index = Arc::clone(&index);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let q = vec_for(3);
                while !stop.load(Ordering::Relaxed) {
                    index.search(q.as_slice(), 5, 8);
                }
            })
        })
        .collect();
    let start = std::time::Instant::now();
    for i in 100..1_100u64 {
        index.insert(vec_for(i), attrs_for(i)).unwrap();
    }
    let elapsed = start.elapsed();
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }
    assert!(
        elapsed < std::time::Duration::from_secs(30),
        "writer starved by readers: {elapsed:?}"
    );
    assert_eq!(index.num_images(), 1_100);
}

/// The `unsafe-slab` Miri exercise (referenced from the SAFETY comment on
/// `Slab::new` in src/inverted.rs): the one `unsafe` block on the mutation
/// path casts a zeroed `Box<[u64]>` to `Box<[AtomicU64]>`. Driving an
/// `InvertedList` through allocation, expansion (which re-runs the cast
/// for the larger slab), scanning and drop validates the cast and the
/// transferred ownership under `cargo miri test`. Under a normal build it
/// doubles as a cheap smoke test.
#[test]
fn unsafe_slab_cast_round_trips() {
    use jdvs_core::inverted::InvertedList;
    // Inline copy (background_copy = false) keeps this single-threaded so
    // Miri runs it quickly and deterministically.
    let list = InvertedList::new(2, false);
    for i in 0..33u32 {
        list.append(ImageId(i));
    }
    list.flush();
    let mut got = Vec::new();
    list.scan(|id| got.push(id.0));
    assert_eq!(got, (0..33).collect::<Vec<_>>());
    assert!(list.capacity() >= 33);
    assert!(list.expansions() >= 1, "the cast re-ran for a grown slab");
}
