//! Offline shim for the subset of `parking_lot` used in this workspace.
//!
//! Backed by `std::sync`; lock poisoning is ignored (a panicking holder does
//! not poison the lock for everyone else, matching parking_lot semantics).

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard wraps an `Option` so `Condvar::wait*` can temporarily take the inner
/// std guard by value (std's condvar consumes and returns guards).
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, res) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => p.into_inner(),
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
