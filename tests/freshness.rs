//! Cross-crate integration: real-time freshness through the full stack.
//!
//! The paper's differentiating requirement: catalog changes must be
//! visible to searches at sub-second timescales. These tests publish
//! events to the live topology's queue and bound the time to visibility.

use std::time::{Duration, Instant};

use jdvs::search::SearchQuery;
use jdvs::storage::{ProductAttributes, ProductEvent, ProductId};
use jdvs::workload::catalog::CatalogConfig;
use jdvs::workload::events::{DailyPlan, DailyPlanConfig};
use jdvs::workload::scenario::{World, WorldConfig};

fn world() -> World {
    World::build(WorldConfig {
        catalog: CatalogConfig {
            num_products: 100,
            num_clusters: 10,
            ..Default::default()
        },
        ..WorldConfig::fast_test()
    })
}

fn eventually(deadline: Duration, mut check: impl FnMut() -> bool) -> Option<Duration> {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if check() {
            return Some(start.elapsed());
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    None
}

fn flush_all(w: &World) {
    for replicas in w.topology().indexes() {
        for index in replicas {
            index.flush();
        }
    }
}

#[test]
fn new_product_is_searchable_subsecond() {
    let w = world();
    let client = w.client(Duration::from_secs(5));
    let url = "fresh/product/img.jpg".to_string();
    w.images().put_synthetic(&url, 3);
    w.topology().publish(ProductEvent::AddProduct {
        product_id: ProductId(500_000),
        images: vec![ProductAttributes::new(
            ProductId(500_000),
            1,
            100,
            1,
            url.clone(),
        )],
    });
    let latency = eventually(Duration::from_secs(5), || {
        flush_all(&w);
        let resp = client
            .search(SearchQuery::by_image_url(url.clone(), 1))
            .unwrap();
        resp.results.first().map(|r| r.hit.product_id) == Some(ProductId(500_000))
    })
    .expect("addition must become visible");
    assert!(
        latency < Duration::from_secs(1),
        "visibility took {latency:?}"
    );
}

#[test]
fn deletion_hides_subsecond_and_relist_restores() {
    let w = world();
    let client = w.client(Duration::from_secs(5));
    let product = w.catalog().products()[5].clone();
    let query = SearchQuery::by_image_url(product.urls[0].clone(), 1);

    // Delete.
    w.topology().publish(product.remove_event());
    let latency = eventually(Duration::from_secs(5), || {
        let resp = client.search(query.clone()).unwrap();
        resp.results.first().map(|r| r.hit.product_id) != Some(product.id)
    })
    .expect("deletion must hide the product");
    assert!(latency < Duration::from_secs(1));

    // Re-list (reuse path: no extraction).
    let misses_before = w.extractor().misses();
    w.topology().publish(product.add_event());
    eventually(Duration::from_secs(5), || {
        let resp = client.search(query.clone()).unwrap();
        resp.results.first().map(|r| r.hit.product_id) == Some(product.id)
    })
    .expect("re-listing must restore the product");
    assert_eq!(
        w.extractor().misses(),
        misses_before,
        "re-list must not re-extract"
    );
}

#[test]
fn attribute_update_propagates_to_results() {
    let w = world();
    let client = w.client(Duration::from_secs(5));
    let product = w.catalog().products()[8].clone();
    w.topology().publish(ProductEvent::UpdateAttributes {
        product_id: product.id,
        urls: product.urls.clone(),
        sales: Some(987_654),
        price: Some(42),
        praise: None,
    });
    eventually(Duration::from_secs(5), || {
        let resp = client
            .search(SearchQuery::by_image_url(product.urls[0].clone(), 1))
            .unwrap();
        resp.results
            .first()
            .map(|r| r.hit.sales == 987_654 && r.hit.price == 42)
            .unwrap_or(false)
    })
    .expect("attribute update must propagate");
}

#[test]
fn day_replay_keeps_replicas_consistent() {
    let mut w = World::build(WorldConfig {
        catalog: CatalogConfig {
            num_products: 400,
            num_clusters: 10,
            ..Default::default()
        },
        topology: jdvs::search::TopologyConfig {
            num_partitions: 2,
            replicas_per_partition: 2,
            num_broker_groups: 1,
            ..WorldConfig::fast_test().topology
        },
        ..WorldConfig::fast_test()
    });
    let store = std::sync::Arc::clone(w.images());
    let plan = DailyPlan::generate(
        w.catalog_mut(),
        &store,
        &DailyPlanConfig {
            total_events: 1_000,
            seed: 13,
            ..Default::default()
        },
    );
    let handle = w.start_update_stream(plan.events().to_vec(), 0);
    assert_eq!(handle.join(), 1_000);
    w.topology().wait_for_freshness(Duration::from_secs(60));

    for (p, replicas) in w.topology().indexes().iter().enumerate() {
        assert_eq!(
            replicas[0].num_images(),
            replicas[1].num_images(),
            "partition {p} record counts"
        );
        assert_eq!(
            replicas[0].valid_images(),
            replicas[1].valid_images(),
            "partition {p} valid counts"
        );
        assert_eq!(
            replicas[0].stats().total_mutations(),
            replicas[1].stats().total_mutations(),
            "partition {p} mutation counts"
        );
    }
}

#[test]
fn concurrent_queries_during_update_storm_stay_correct() {
    let mut w = world();
    let client = w.client(Duration::from_secs(5));
    let store = std::sync::Arc::clone(w.images());
    let plan = DailyPlan::generate(
        w.catalog_mut(),
        &store,
        &DailyPlanConfig {
            total_events: 2_000,
            seed: 29,
            ..Default::default()
        },
    );
    // Pick a product the plan never touches, as a stable query target.
    let touched: std::collections::HashSet<ProductId> = plan
        .events()
        .iter()
        .map(|te| te.event.product_id())
        .collect();
    let stable = w
        .catalog()
        .products()
        .iter()
        .find(|p| !touched.contains(&p.id) && !plan.predelisted().contains(&p.id))
        .expect("some product untouched by the plan")
        .clone();

    let stream = w.start_update_stream(plan.events().to_vec(), 0);
    // While the storm runs, the stable product must always be findable.
    for _ in 0..50 {
        let resp = client
            .search(SearchQuery::by_image_url(stable.urls[0].clone(), 1))
            .unwrap();
        assert_eq!(
            resp.results.first().map(|r| r.hit.product_id),
            Some(stable.id),
            "stable product must stay searchable mid-storm"
        );
    }
    stream.join();
    w.topology().wait_for_freshness(Duration::from_secs(60));
}

/// Durability satellite: a partition killed mid-stream and rebooted over
/// its ingestion log must replay the backlog **before serving** and then
/// still meet the sub-second visibility bound for post-restart publishes.
#[test]
fn restart_mid_stream_still_meets_subsecond_visibility_after_replay() {
    use jdvs::workload::recovery::{RecoveryConfig, RecoveryHarness};
    let dir = std::env::temp_dir().join(format!("jdvs-freshness-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let harness = RecoveryHarness::new(RecoveryConfig::fast(&dir));
    let mid = harness.events().len() / 2;

    // First life: ingest half the stream, then die without checkpointing.
    let topology = harness.boot().expect("first boot");
    harness.publish(&topology, 0..mid);
    harness.halt(topology);

    // Second life: startup recovery replays the whole backlog...
    let topology = harness.boot().expect("reboot");
    let replayed: u64 = topology
        .recovery_reports()
        .expect("durable topology")
        .iter()
        .map(|r| r.replayed)
        .sum();
    assert_eq!(
        replayed,
        2 * mid as u64,
        "both partitions replay the backlog"
    );

    // ...and a brand-new publish right after the restart is visible
    // sub-second, same bound as an uninterrupted stream.
    let client = topology.client(Duration::from_secs(5));
    let url = "restart/fresh-product.jpg".to_string();
    harness.images().put_synthetic(&url, 3);
    topology.publish(ProductEvent::AddProduct {
        product_id: ProductId(700_000),
        images: vec![ProductAttributes::new(
            ProductId(700_000),
            1,
            100,
            1,
            url.clone(),
        )],
    });
    let latency = eventually(Duration::from_secs(5), || {
        for replicas in topology.indexes() {
            for index in replicas {
                index.flush();
            }
        }
        let resp = client
            .search(SearchQuery::by_image_url(url.clone(), 1))
            .unwrap();
        resp.results.first().map(|r| r.hit.product_id) == Some(ProductId(700_000))
    })
    .expect("post-restart addition must become visible");
    assert!(
        latency < Duration::from_secs(1),
        "post-restart visibility took {latency:?}"
    );

    // The remainder of the planned stream still flows normally.
    harness.publish(&topology, mid..harness.events().len());
    harness.halt(topology);
    let _ = std::fs::remove_dir_all(&dir);
}
