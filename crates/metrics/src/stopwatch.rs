//! Wall-clock stopwatches.
//!
//! Thin helpers over [`std::time::Instant`] used by the workload drivers to
//! time individual operations and whole benchmark phases.

use std::time::{Duration, Instant};

/// A restartable wall-clock stopwatch.
///
/// # Example
///
/// ```
/// use jdvs_metrics::Stopwatch;
///
/// let sw = Stopwatch::start();
/// let elapsed = sw.elapsed();
/// assert!(elapsed.as_nanos() < 1_000_000_000);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts a new stopwatch.
    pub fn start() -> Self {
        Self {
            started: Instant::now(),
        }
    }

    /// Time since start (or last restart).
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Time since start in whole microseconds.
    pub fn elapsed_us(&self) -> u64 {
        self.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
    }

    /// Restarts the stopwatch, returning the elapsed time up to now.
    pub fn restart(&mut self) -> Duration {
        let e = self.elapsed();
        self.started = Instant::now();
        e
    }
}

/// Times a closure, returning its result and the elapsed duration.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let sw = Stopwatch::start();
    let out = f();
    (out, sw.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
    }

    #[test]
    fn restart_resets_clock() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        let before = sw.restart();
        assert!(before >= Duration::from_millis(2));
        assert!(sw.elapsed() < before);
    }

    #[test]
    fn time_reports_closure_result() {
        let (val, dur) = time(|| {
            std::thread::sleep(Duration::from_millis(1));
            7
        });
        assert_eq!(val, 7);
        assert!(dur >= Duration::from_millis(1));
    }

    #[test]
    fn elapsed_us_is_consistent() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(1));
        assert!(sw.elapsed_us() >= 1_000);
    }
}
