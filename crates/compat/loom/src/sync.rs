//! Scheduler-instrumented synchronization primitives.
//!
//! Every operation on these types is a scheduling point, so a model run
//! interleaves threads at exactly the places where real hardware could.
//! Outside a model run the instrumentation is a no-op and the types behave
//! like their std equivalents.
//!
//! The lock types expose the `parking_lot`-style non-poisoning API
//! (`lock()`/`read()`/`write()` return guards directly) because that is
//! the surface `jdvs-core`'s `sync` facade presents in both cfg modes.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

use crate::rt;

pub use std::sync::Arc;

pub mod atomic {
    //! Instrumented atomics. Orderings are accepted for API compatibility
    //! and recorded intent; the shim's scheduler serializes execution, so
    //! every explored execution is sequentially consistent regardless (see
    //! the crate docs for what that does and does not check).

    pub use std::sync::atomic::Ordering;

    use crate::rt;

    macro_rules! instrumented_atomic {
        ($name:ident, $std:ty, $prim:ty) => {
            /// Instrumented atomic; see the module docs.
            #[derive(Debug, Default)]
            pub struct $name($std);

            impl $name {
                /// Creates a new atomic with `value`.
                pub fn new(value: $prim) -> Self {
                    Self(<$std>::new(value))
                }

                /// Instrumented load.
                pub fn load(&self, _order: Ordering) -> $prim {
                    rt::schedule_point();
                    self.0.load(Ordering::SeqCst)
                }

                /// Instrumented store.
                pub fn store(&self, value: $prim, _order: Ordering) {
                    rt::schedule_point();
                    self.0.store(value, Ordering::SeqCst)
                }

                /// Instrumented swap.
                pub fn swap(&self, value: $prim, _order: Ordering) -> $prim {
                    rt::schedule_point();
                    self.0.swap(value, Ordering::SeqCst)
                }

                /// Instrumented compare-exchange.
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$prim, $prim> {
                    rt::schedule_point();
                    self.0
                        .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                }

                /// Unsynchronized read for exclusive contexts.
                pub fn get_mut(&mut self) -> &mut $prim {
                    self.0.get_mut()
                }

                /// Consumes the atomic, returning the value.
                pub fn into_inner(self) -> $prim {
                    self.0.into_inner()
                }
            }
        };
    }

    macro_rules! instrumented_fetch_arith {
        ($name:ident, $prim:ty) => {
            impl $name {
                /// Instrumented fetch-add.
                pub fn fetch_add(&self, value: $prim, _order: Ordering) -> $prim {
                    rt::schedule_point();
                    self.0.fetch_add(value, Ordering::SeqCst)
                }

                /// Instrumented fetch-sub.
                pub fn fetch_sub(&self, value: $prim, _order: Ordering) -> $prim {
                    rt::schedule_point();
                    self.0.fetch_sub(value, Ordering::SeqCst)
                }

                /// Instrumented fetch-or.
                pub fn fetch_or(&self, value: $prim, _order: Ordering) -> $prim {
                    rt::schedule_point();
                    self.0.fetch_or(value, Ordering::SeqCst)
                }

                /// Instrumented fetch-and.
                pub fn fetch_and(&self, value: $prim, _order: Ordering) -> $prim {
                    rt::schedule_point();
                    self.0.fetch_and(value, Ordering::SeqCst)
                }
            }
        };
    }

    instrumented_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
    instrumented_atomic!(AtomicU8, std::sync::atomic::AtomicU8, u8);
    instrumented_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
    instrumented_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    instrumented_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    instrumented_fetch_arith!(AtomicU8, u8);
    instrumented_fetch_arith!(AtomicU32, u32);
    instrumented_fetch_arith!(AtomicU64, u64);
    instrumented_fetch_arith!(AtomicUsize, usize);

    impl AtomicBool {
        /// Instrumented fetch-or.
        pub fn fetch_or(&self, value: bool, _order: Ordering) -> bool {
            rt::schedule_point();
            self.0.fetch_or(value, Ordering::SeqCst)
        }

        /// Instrumented fetch-and.
        pub fn fetch_and(&self, value: bool, _order: Ordering) -> bool {
            rt::schedule_point();
            self.0.fetch_and(value, Ordering::SeqCst)
        }
    }
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Instrumented mutex with the parking_lot-style API.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, parking at scheduling points while contended.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        loop {
            rt::schedule_point();
            match self.0.try_lock() {
                Ok(g) => return MutexGuard(g),
                Err(std::sync::TryLockError::Poisoned(p)) => return MutexGuard(p.into_inner()),
                Err(std::sync::TryLockError::WouldBlock) => {
                    // Contended: loop through scheduling points until the
                    // holder runs to release. The scheduler's step budget
                    // converts a true deadlock into a diagnostic panic.
                    if rt::current().is_none() {
                        std::thread::yield_now();
                    }
                }
            }
        }
    }

    /// Attempts the lock without blocking (still a scheduling point).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        rt::schedule_point();
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Unsynchronized access for exclusive contexts.
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Uninstrumented peek: formatting must not perturb the schedule.
        match self.0.try_lock() {
            Ok(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Instrumented reader-writer lock with the parking_lot-style API.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared guard, parking at scheduling points meanwhile.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        loop {
            rt::schedule_point();
            match self.0.try_read() {
                Ok(g) => return RwLockReadGuard(g),
                Err(std::sync::TryLockError::Poisoned(p)) => {
                    return RwLockReadGuard(p.into_inner())
                }
                Err(std::sync::TryLockError::WouldBlock) => {
                    if rt::current().is_none() {
                        std::thread::yield_now();
                    }
                }
            }
        }
    }

    /// Acquires the exclusive guard, parking at scheduling points meanwhile.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        loop {
            rt::schedule_point();
            match self.0.try_write() {
                Ok(g) => return RwLockWriteGuard(g),
                Err(std::sync::TryLockError::Poisoned(p)) => {
                    return RwLockWriteGuard(p.into_inner())
                }
                Err(std::sync::TryLockError::WouldBlock) => {
                    if rt::current().is_none() {
                        std::thread::yield_now();
                    }
                }
            }
        }
    }

    /// Attempts a shared guard without blocking (still a scheduling point).
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        rt::schedule_point();
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Unsynchronized access for exclusive contexts.
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Uninstrumented peek: formatting must not perturb the schedule.
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}
