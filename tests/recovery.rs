//! Crash-injection integration suite for the durability subsystem.
//!
//! Every test kills a live durable topology (or queue) at some point in
//! its ingestion stream, optionally mutilates the on-disk log tail the way
//! an OS crash would, reboots on the same directory, and checks the
//! recovery contract:
//!
//! - under `FsyncPolicy::Always` the recovered searchable set is
//!   **bit-identical** to the acknowledged pre-crash state (same ranked
//!   results, same float distances, same attributes);
//! - torn or corrupt log tails are CRC-detected and cleanly truncated to
//!   the last valid frame — recovery never panics and never indexes
//!   garbage, it just loses the un-fsynced suffix.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use jdvs::durability::{DurableQueue, FsyncPolicy, LogConfig};
use jdvs::metrics::DurabilityMetrics;
use jdvs::storage::model::{ProductEvent, ProductId};
use jdvs::workload::recovery::{
    run_crash_cycle, CrashCycleConfig, RecoveryConfig, RecoveryHarness,
};

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "jdvs-recovery-{}-{}-{}",
        tag,
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Killing ingestion after 1, 7, 23 or all events and rebooting from the
/// log alone reproduces the exact acknowledged searchable set: every probe
/// query answers identically down to the distance bits.
#[test]
fn kill_at_arbitrary_points_is_lossless_under_fsync_always() {
    let dir = scratch_dir("kill-points");
    let stream_len = RecoveryHarness::new(RecoveryConfig::fast(&dir))
        .events()
        .len();
    for crash_after in [1, 7, 23, stream_len] {
        let dir = scratch_dir("kill-point");
        let outcome = run_crash_cycle(CrashCycleConfig {
            recovery: RecoveryConfig::fast(&dir),
            crash_after,
            checkpoint_at: None,
            tear_tail_bytes: 0,
        })
        .expect("crash cycle");
        assert_eq!(
            outcome.recovered_events, crash_after as u64,
            "every acknowledged event must survive the kill at {crash_after}"
        );
        assert!(!outcome.from_snapshot, "no checkpoint was taken");
        assert_eq!(
            outcome.replayed,
            2 * crash_after as u64,
            "both partitions cold-replay the whole log"
        );
        assert_eq!(
            outcome.divergent_probes, 0,
            "recovered results diverged after kill at {crash_after}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A mid-stream checkpoint makes reboot recover from the snapshot and
/// replay only the suffix past its watermark — with identical results.
#[test]
fn checkpoint_mid_stream_recovers_from_snapshot_and_replays_only_suffix() {
    let dir = scratch_dir("ckpt");
    let recovery = RecoveryConfig::fast(&dir);
    let stream_len = RecoveryHarness::new(recovery.clone()).events().len();
    let checkpoint_at = stream_len / 2;
    let outcome = run_crash_cycle(CrashCycleConfig {
        recovery,
        crash_after: stream_len,
        checkpoint_at: Some(checkpoint_at),
        tear_tail_bytes: 0,
    })
    .expect("crash cycle");
    assert!(outcome.from_snapshot, "reboot must use the checkpoint");
    assert_eq!(
        outcome.replayed,
        2 * (stream_len - checkpoint_at) as u64,
        "only the post-checkpoint suffix is replayed"
    );
    assert!(
        outcome.recovered_events <= stream_len as u64,
        "retention may have pruned covered segments"
    );
    assert_eq!(
        outcome.divergent_probes, 0,
        "snapshot recovery must be exact"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Tearing into the final log frame loses exactly that un-fsynced record:
/// the reboot truncates the tail, recovers the remaining prefix, and keeps
/// serving queries without panicking.
#[test]
fn torn_tail_loses_only_the_final_record_and_still_serves() {
    let dir = scratch_dir("tear");
    let mut recovery = RecoveryConfig::fast(&dir);
    recovery.num_products = 20;
    let outcome = run_crash_cycle(CrashCycleConfig {
        recovery,
        crash_after: 20,
        checkpoint_at: None,
        tear_tail_bytes: 5, // strictly inside the last frame
    })
    .expect("crash cycle");
    assert_eq!(
        outcome.recovered_events, 19,
        "a 5-byte tear must cost exactly the final record"
    );
    assert_eq!(outcome.replayed, 2 * 19);
    assert!(
        outcome.divergent_probes <= outcome.probes,
        "probes must complete (no panic, no garbage) even when the tail was lost"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A flipped byte in the last frame's payload fails its CRC32C: the frame
/// is discarded — never decoded into the index — and recovery proceeds
/// with the valid prefix.
#[test]
fn corrupt_tail_byte_is_detected_and_truncated_cleanly() {
    let dir = scratch_dir("corrupt");
    let mut recovery = RecoveryConfig::fast(&dir);
    recovery.num_products = 20;
    let harness = RecoveryHarness::new(recovery);

    let topology = harness.boot().expect("first boot");
    harness.publish(&topology, 0..20);
    harness.halt(topology);
    harness.corrupt_tail_byte(3).expect("flip a payload byte");

    let topology = harness.boot().expect("reboot over corrupt tail");
    let queue = topology.durable_queue().expect("durable topology");
    assert_eq!(
        queue.recovered_events(),
        19,
        "the corrupt record must be dropped, the prefix kept"
    );
    assert_eq!(queue.open_report().corrupt_records, 1);
    let probes = harness.probe(&topology);
    assert!(
        probes.iter().any(|p| !p.is_empty()),
        "recovered index must answer queries"
    );
    harness.halt(topology);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Progressively truncating the log one byte at a time hits every byte
/// offset in every tail frame. Each reopen must succeed, monotonically
/// shrink the recovered prefix, and decode only intact records.
#[test]
fn truncation_at_every_byte_offset_never_panics_and_recovers_a_valid_prefix() {
    let dir = scratch_dir("every-byte");
    let mut config = LogConfig::new(dir.join("wal"));
    config.fsync = FsyncPolicy::Always;
    config.segment_max_bytes = 1 << 20;

    let published = 12u64;
    {
        let dq = DurableQueue::open(config.clone(), Arc::new(DurabilityMetrics::new()))
            .expect("fresh open");
        for i in 0..published {
            dq.queue().publish(ProductEvent::RemoveProduct {
                product_id: ProductId(i + 1),
                urls: vec![format!("https://img.jd.test/sku/{}/img0.jpg", i + 1)],
            });
        }
    }

    let segment = {
        let mut segs: Vec<_> = std::fs::read_dir(dir.join("wal"))
            .expect("wal dir")
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "seg"))
            .collect();
        segs.sort();
        assert_eq!(segs.len(), 1, "single-segment fixture");
        segs.remove(0)
    };

    let mut last_recovered = published;
    loop {
        let len = std::fs::metadata(&segment).expect("segment meta").len();
        if len == 0 {
            break;
        }
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&segment)
            .expect("open segment");
        file.set_len(len - 1).expect("truncate one byte");
        drop(file);

        let dq = DurableQueue::open(config.clone(), Arc::new(DurabilityMetrics::new()))
            .expect("reopen over torn tail");
        let recovered = dq.recovered_events();
        assert!(
            recovered <= last_recovered,
            "recovered prefix must shrink monotonically ({recovered} > {last_recovered})"
        );
        assert!(
            recovered < published,
            "a torn byte must cost at least the tail record"
        );
        // Continuation after a tear stays on absolute offsets: the next
        // publish lands exactly at the recovered prefix length.
        let offset = dq.queue().publish(ProductEvent::RemoveProduct {
            product_id: ProductId(999),
            urls: vec![],
        });
        assert_eq!(
            offset, recovered,
            "append offset must continue the valid prefix"
        );
        last_recovered = recovered;
        // Remove the probe record again so the next iteration tears into
        // the original stream, not our probe frame.
        let len = std::fs::metadata(&segment).expect("segment meta").len();
        drop(dq);
        let tail = {
            let bytes = std::fs::read(&segment).expect("read segment");
            bytes.len() as u64 - frame_len_at_end(&bytes)
        };
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&segment)
            .expect("open segment");
        file.set_len(tail.min(len)).expect("drop probe frame");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Length of the final frame of `bytes` (header + payload), found by
/// walking frames from the start — mirrors the log's framing:
/// `[len:u32le][crc:u32le][payload]`.
fn frame_len_at_end(bytes: &[u8]) -> u64 {
    let mut pos = 0usize;
    let mut last = 0usize;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        if pos + 8 + len > bytes.len() {
            break;
        }
        last = 8 + len;
        pos += 8 + len;
    }
    last as u64
}

/// An amortized-fsync log still reopens cleanly after an arbitrary tear:
/// the loss bound is the un-synced suffix, never a panic and never a
/// mis-decoded record.
#[test]
fn every_n_policy_survives_arbitrary_tear_with_bounded_loss() {
    let dir = scratch_dir("every-n");
    let mut recovery = RecoveryConfig::fast(&dir);
    recovery.options.fsync = FsyncPolicy::EveryN(4);
    recovery.num_products = 16;
    let outcome = run_crash_cycle(CrashCycleConfig {
        recovery,
        crash_after: 16,
        checkpoint_at: None,
        tear_tail_bytes: 37,
    })
    .expect("crash cycle");
    assert_eq!(
        outcome.recovered_events, 15,
        "the tear must cost exactly the record it landed in, nothing more"
    );
    assert_eq!(outcome.replayed, 2 * outcome.recovered_events);
    let _ = std::fs::remove_dir_all(&dir);
}
