//! Crash-injection suite for the partition lifecycle: checkpoint-seeded
//! rebuild, replica bootstrap and online split.
//!
//! Every scenario kills a durable topology at some point in a lifecycle
//! operation (or mutilates the on-disk state the way a mid-operation crash
//! would), reboots on the same directory, and holds the recovered world to
//! one standard: its probe answers must be **bit-identical** to a cold
//! full rebuild of the same log — same ranked results, same float
//! distances, same attributes ([`RecoveryHarness::cold_reference_probe`]).
//!
//! The lifecycle operations themselves write nothing mid-flight except
//! through atomic temp-file + rename commits, so each crash point maps to
//! a concrete on-disk state the harness can produce:
//!
//! - a kill during a replica bootstrap's log-tail leaves only the
//!   pre-bootstrap checkpoints and the log (the bootstrap is memory-only);
//! - a kill between an online split's half-swaps leaves the fully
//!   committed durable artifacts (sibling checkpoint, layout file,
//!   narrowed parent checkpoint) with the in-memory swaps lost;
//! - a crash *before* the split's layout commit leaves an orphan sibling
//!   store the old layout must ignore;
//! - a torn checkpoint write leaves a corrupt newest snapshot the
//!   manifest still names — recovery must walk the fallback chain;
//! - a crash between a checkpoint temp write and its rename strands
//!   `*.tmp` files the next boot must sweep.

use std::sync::atomic::{AtomicU64, Ordering};

use jdvs::workload::recovery::{RecoveryConfig, RecoveryHarness};

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "jdvs-lifecycle-{}-{}-{}",
        tag,
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A kill while a freshly bootstrapped replica is still the only one that
/// tailed the latest events: the bootstrap wrote nothing durable, so the
/// reboot must rebuild the acknowledged set from the pre-bootstrap
/// checkpoints plus the log — and match a cold rebuild exactly.
#[test]
fn kill_during_bootstrap_tail_recovers_bit_identical() {
    let dir = scratch_dir("boot-tail");
    let harness = RecoveryHarness::new(RecoveryConfig::fast(&dir));
    let n = harness.events().len();

    let mut topology = harness.boot().expect("first boot");
    harness.publish(&topology, 0..n / 3);
    topology.checkpoint_partition(0).expect("checkpoint p0");
    topology.checkpoint_partition(1).expect("checkpoint p1");
    harness.publish(&topology, n / 3..2 * n / 3);

    let report = topology.bootstrap_replica(0);
    assert!(report.from_snapshot, "durable bootstrap seeds from disk");
    assert_eq!(report.replica, 1, "joins after the configured replica");

    // The new replica serves the rest of the stream, then the process
    // dies without checkpointing anything it tailed.
    harness.publish(&topology, 2 * n / 3..n);
    let before = harness.probe(&topology);
    harness.halt(topology);

    let topology = harness.boot().expect("reboot");
    let after = harness.probe(&topology);
    assert_eq!(after, before, "reboot diverged from the killed life");
    assert_eq!(
        after,
        harness.cold_reference_probe(n),
        "reboot diverged from a cold full rebuild of the log"
    );
    harness.halt(topology);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A kill right between an online split's half-swaps: the durable
/// artifacts (sibling checkpoint at the cut, layout file, narrowed parent
/// checkpoint) are committed but the in-memory swaps die with the
/// process. The reboot must reconstruct the three-way layout and lose
/// nothing — including the events published after the split.
#[test]
fn kill_between_split_half_swaps_recovers_bit_identical() {
    let dir = scratch_dir("split-swap");
    let harness = RecoveryHarness::new(RecoveryConfig::fast(&dir));
    let n = harness.events().len();

    let mut topology = harness.boot().expect("first boot");
    harness.publish(&topology, 0..n / 3);
    topology.checkpoint_partition(0).expect("checkpoint p0");
    topology.checkpoint_partition(1).expect("checkpoint p1");
    harness.publish(&topology, n / 3..2 * n / 3);

    let report = topology.split_partition(0).expect("online split");
    assert_eq!(report.sibling, 2);
    assert!(report.from_snapshot, "split seeds from the checkpoint");

    harness.publish(&topology, 2 * n / 3..n);
    let before = harness.probe(&topology);
    harness.halt(topology);

    let topology = harness.boot().expect("reboot");
    assert_eq!(
        topology.partition_map().num_partitions(),
        3,
        "the persisted layout reconstructs the split"
    );
    assert_eq!(topology.recovery_reports().expect("durable").len(), 3);
    let after = harness.probe(&topology);
    assert_eq!(after, before, "reboot diverged from the killed life");
    assert_eq!(
        after,
        harness.cold_reference_probe(n),
        "reboot diverged from a cold full rebuild of the log"
    );

    // The post-split checkpoint chain is sound: checkpoint all three
    // halves, kill, reboot — still bit-identical.
    for p in 0..3 {
        topology.checkpoint_partition(p).expect("post-split ckpt");
    }
    harness.halt(topology);
    let topology = harness.boot().expect("third life");
    assert_eq!(
        harness.probe(&topology),
        before,
        "post-split checkpoints diverged"
    );
    harness.halt(topology);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A split that crashed after creating its sibling's checkpoint store but
/// before the layout file committed: the orphan store (with garbage
/// contents, even) must be ignored by a reboot under the old layout.
#[test]
fn orphan_sibling_store_from_aborted_split_is_ignored() {
    let dir = scratch_dir("orphan");
    let harness = RecoveryHarness::new(RecoveryConfig::fast(&dir));
    let n = harness.events().len();

    let topology = harness.boot().expect("first boot");
    harness.publish(&topology, 0..n);
    topology.checkpoint_partition(0).expect("checkpoint p0");
    topology.checkpoint_partition(1).expect("checkpoint p1");
    let before = harness.probe(&topology);
    harness.halt(topology);

    harness
        .plant_orphan_sibling_store(2)
        .expect("plant orphan store");

    let topology = harness.boot().expect("reboot");
    assert_eq!(
        topology.partition_map().num_partitions(),
        2,
        "an uncommitted split must not change the layout"
    );
    assert_eq!(harness.probe(&topology), before);
    harness.halt(topology);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn checkpoint write during a rebuild cycle: the newest snapshot is
/// corrupt but still named by the manifest. Recovery must walk down the
/// fallback chain to the older snapshot, converge bit-identically, and a
/// follow-up rebuild + checkpoint must repair the chain.
#[test]
fn torn_checkpoint_during_rebuild_falls_back_and_converges() {
    let dir = scratch_dir("torn-ckpt");
    let harness = RecoveryHarness::new(RecoveryConfig::fast(&dir));
    let n = harness.events().len();

    let topology = harness.boot().expect("first boot");
    harness.publish(&topology, 0..n / 3);
    topology.checkpoint_partition(0).expect("older checkpoint");
    topology.checkpoint_partition(1).expect("checkpoint p1");
    harness.publish(&topology, n / 3..2 * n / 3);
    topology.checkpoint_partition(0).expect("newest checkpoint");
    harness.publish(&topology, 2 * n / 3..n);
    let before = harness.probe(&topology);
    harness.halt(topology);

    assert!(
        harness.corrupt_newest_checkpoint(0).expect("corrupt"),
        "there must be a snapshot to tear"
    );

    let topology = harness.boot().expect("reboot");
    let after = harness.probe(&topology);
    assert_eq!(after, before, "fallback recovery diverged");
    assert_eq!(
        after,
        harness.cold_reference_probe(n),
        "fallback recovery diverged from a cold rebuild"
    );

    // Repair: a rebuild re-seeds from the surviving snapshot and a fresh
    // checkpoint replaces the torn one at the head of the chain.
    let report = topology.rebuild_partition(0);
    assert!(report.snapshot_bytes > 0, "rebuild produced a snapshot");
    assert_eq!(harness.probe(&topology), before, "rebuild diverged");
    topology.checkpoint_partition(0).expect("repair checkpoint");
    harness.halt(topology);

    let topology = harness.boot().expect("third life");
    assert_eq!(harness.probe(&topology), before, "repaired chain diverged");
    harness.halt(topology);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Stranded `*.tmp` files from a crash between a checkpoint's temp write
/// and its rename: the next boot sweeps them, and lifecycle operations
/// (replica bootstraps on both partitions, immediately after the sweep)
/// run over the swept stores without tripping on the leftovers.
#[test]
fn stranded_tmp_sweep_then_immediate_bootstrap() {
    let dir = scratch_dir("tmp-sweep");
    let harness = RecoveryHarness::new(RecoveryConfig::fast(&dir));
    let n = harness.events().len();

    let topology = harness.boot().expect("first boot");
    harness.publish(&topology, 0..n);
    topology.checkpoint_partition(0).expect("checkpoint p0");
    topology.checkpoint_partition(1).expect("checkpoint p1");
    let before = harness.probe(&topology);
    harness.halt(topology);

    harness.strand_checkpoint_tmp(0).expect("strand p0");
    harness.strand_checkpoint_tmp(1).expect("strand p1");

    let mut topology = harness.boot().expect("reboot sweeps");
    for p in 0..2 {
        let leftovers: Vec<_> = std::fs::read_dir(harness.checkpoint_dir(p))
            .expect("store dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "tmp files must be swept: {leftovers:?}"
        );
    }
    // Lifecycle straight after the sweep: both bootstraps read the stores
    // the sweep just cleaned, serialized on the maintenance mutex.
    for p in 0..2 {
        let report = topology.bootstrap_replica(p);
        assert!(report.from_snapshot, "bootstrap seeds from the snapshot");
    }
    assert_eq!(harness.probe(&topology), before);
    harness.halt(topology);
    let _ = std::fs::remove_dir_all(&dir);
}
