//! No-op `Serialize`/`Deserialize` derives for the offline serde shim.
//!
//! The shim's traits carry blanket impls, so the derives only need to accept
//! the syntax (including `#[serde(...)]` helper attributes) and emit nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
