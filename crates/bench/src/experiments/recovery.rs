//! The durability experiment: ingestion-log append throughput under each
//! fsync policy, and wall-clock recovery time of a crashed topology —
//! cold log replay vs checkpoint-snapshot + suffix.
//!
//! Not a paper figure: the paper's message queue (Section 2.3) and weekly
//! full index make crash recovery implicit. This experiment prices the
//! durable tee the reproduction adds: what `FsyncPolicy::Always` costs per
//! acknowledged event, and how much a checkpoint shortens restart.

use std::sync::Arc;
use std::time::Instant;

use jdvs_durability::{DurableQueue, FsyncPolicy, LogConfig};
use jdvs_metrics::DurabilityMetrics;
use jdvs_storage::model::{ProductAttributes, ProductEvent, ProductId};
use jdvs_workload::recovery::{RecoveryConfig, RecoveryHarness};

use crate::report::ExperimentResult;
use crate::row;

use super::Ctx;

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("jdvs-bench-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A realistic single-image `AddProduct` (~100-byte frame).
fn synthetic_event(i: u64) -> ProductEvent {
    ProductEvent::AddProduct {
        product_id: ProductId(i + 1),
        images: vec![ProductAttributes::new(
            ProductId(i + 1),
            i % 1_000,
            99 + i % 100_000,
            i % 500,
            format!("https://img.jd.test/sku/{}/img0.jpg", i + 1),
        )],
    }
}

fn dir_bytes(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

/// `recovery`: append throughput per fsync policy + restart wall time.
pub fn recovery(ctx: &Ctx) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "recovery",
        "Durable ingestion log: append throughput and crash-recovery time",
        "not in paper — prices durability of the Section 2.3 message queue on searcher restart",
    );

    // Part 1: log append throughput under each fsync policy.
    let n = {
        let base = ctx.scaled(8_000, 1_000);
        if ctx.quick {
            base / 4
        } else {
            base
        }
    };
    for (name, policy) in [
        ("always", FsyncPolicy::Always),
        ("every-64", FsyncPolicy::EveryN(64)),
        ("os", FsyncPolicy::Os),
    ] {
        let dir = scratch(name);
        let mut config = LogConfig::new(dir.join("wal"));
        config.fsync = policy;
        let dq = DurableQueue::open(config, Arc::new(DurabilityMetrics::new())).expect("open log");
        let t0 = Instant::now();
        for i in 0..n {
            dq.queue().publish(synthetic_event(i as u64));
        }
        dq.sync().expect("final sync");
        let secs = t0.elapsed().as_secs_f64();
        let mb = dir_bytes(&dir.join("wal")) as f64 / (1024.0 * 1024.0);
        result.push_row(row![
            "phase" => "append",
            "detail" => format!("fsync-{name}"),
            "events" => n,
            "wall_ms" => format!("{:.1}", secs * 1e3),
            "rate_per_sec" => format!("{:.0}", n as f64 / secs),
            "mb_per_sec" => format!("{:.1}", mb / secs),
        ]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Part 1b: group commit under concurrent publishers. `Always` with one
    // writer pays one fdatasync per event no matter what; the win shows up
    // when several ingestion threads publish at once and a single leader
    // sync retires the whole burst. Same loss bound in both rows.
    let writers = 4usize;
    let per_writer = n / writers;
    let mut sync_counts = Vec::new();
    for (name, group_commit) in [("always-4w", false), ("always-4w-group", true)] {
        let dir = scratch(name);
        let mut config = LogConfig::new(dir.join("wal"));
        config.fsync = FsyncPolicy::Always;
        config.group_commit = group_commit;
        let metrics = Arc::new(DurabilityMetrics::new());
        let dq = DurableQueue::open(config, Arc::clone(&metrics)).expect("open log");
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for w in 0..writers {
                let queue = Arc::clone(dq.queue());
                s.spawn(move || {
                    for i in 0..per_writer {
                        queue.publish(synthetic_event((w * per_writer + i) as u64));
                    }
                });
            }
        });
        dq.sync().expect("final sync");
        let secs = t0.elapsed().as_secs_f64();
        let events = writers * per_writer;
        let mb = dir_bytes(&dir.join("wal")) as f64 / (1024.0 * 1024.0);
        result.push_row(row![
            "phase" => "append",
            "detail" => format!("fsync-{name}"),
            "events" => events,
            "wall_ms" => format!("{:.1}", secs * 1e3),
            "rate_per_sec" => format!("{:.0}", events as f64 / secs),
            "mb_per_sec" => format!("{:.1}", mb / secs),
        ]);
        sync_counts.push(format!("{name}: {} syncs", metrics.log_syncs.get()));
        let _ = std::fs::remove_dir_all(&dir);
    }
    result.note(format!(
        "group commit, {} events over {writers} writers — {}",
        writers * per_writer,
        sync_counts.join("; ")
    ));

    // Part 2: restart wall time over a real topology — fresh boot (no
    // state, the baseline the other rows pay on top of), cold replay of
    // the whole log, and snapshot + empty suffix after a checkpoint.
    let products = {
        let base = ctx.scaled(3_000, 120);
        if ctx.quick {
            base / 2
        } else {
            base
        }
    };
    let dir = scratch("restart");
    let mut recovery_config = RecoveryConfig::fast(&dir);
    recovery_config.num_products = products;
    recovery_config.probes = 4;
    recovery_config.options.segment_max_bytes = 256 * 1024;
    let harness = RecoveryHarness::new(recovery_config);
    let total = harness.events().len();

    let mut boot = |detail: &str| {
        let t0 = Instant::now();
        let topology = harness.boot().expect("boot");
        let secs = t0.elapsed().as_secs_f64();
        let replayed: u64 = topology
            .recovery_reports()
            .expect("durable topology")
            .iter()
            .map(|r| r.replayed)
            .sum();
        result.push_row(row![
            "phase" => "restart",
            "detail" => detail,
            "events" => replayed,
            "wall_ms" => format!("{:.1}", secs * 1e3),
            "rate_per_sec" => format!("{:.0}", replayed as f64 / secs),
            "mb_per_sec" => 0,
        ]);
        topology
    };

    let topology = boot("fresh-boot");
    let publish_start = Instant::now();
    harness.publish(&topology, 0..total);
    let ingest_secs = publish_start.elapsed().as_secs_f64();
    harness.halt(topology);

    let topology = boot("cold-replay");
    topology.checkpoint_partition(0).expect("checkpoint p0");
    topology.checkpoint_partition(1).expect("checkpoint p1");
    harness.halt(topology);

    let topology = boot("snapshot+suffix");
    harness.halt(topology);

    result.note(format!(
        "backlog: {total} events across 2 partitions; live ingest of the same stream took {:.1} ms",
        ingest_secs * 1e3
    ));
    result.note(
        "restart rows time SearchTopology::build_durable end-to-end; fresh-boot is the no-state baseline",
    );
    let _ = std::fs::remove_dir_all(&dir);
    result
}
