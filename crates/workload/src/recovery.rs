//! Crash-injection and recovery scenarios over a durable topology.
//!
//! [`RecoveryHarness`] stands up the same stores and extraction pipeline a
//! [`World`](crate::scenario::World) uses, but routes **every** catalog
//! event through the durable ingestion log ([`SearchTopology::build_durable`])
//! instead of bulk-loading, so the log is the single source of truth and a
//! rebooted topology must reconstruct the searchable set from disk alone.
//! The harness can then
//!
//! - kill ingestion at an arbitrary point in the event stream
//!   ([`RecoveryHarness::halt`]),
//! - mutilate the log tail at arbitrary byte offsets
//!   ([`RecoveryHarness::tear_tail`], [`RecoveryHarness::corrupt_tail_byte`])
//!   to model bytes an OS crash would have lost or damaged, and
//! - prove the recovered index answers queries identically
//!   ([`RecoveryHarness::probe`] captures bit-comparable result sets).
//!
//! For the partition-lifecycle suite (rebuild / replica bootstrap / online
//! split) the harness adds **lifecycle crash hooks**: corrupting the
//! newest checkpoint snapshot ([`RecoveryHarness::corrupt_newest_checkpoint`],
//! a torn write during a rebuild's checkpoint), stranding `*.tmp` files in
//! a partition's checkpoint store ([`RecoveryHarness::strand_checkpoint_tmp`],
//! a crash between a temp write and its rename), planting an orphan
//! sibling store ([`RecoveryHarness::plant_orphan_sibling_store`], a crash
//! after an online split created its sibling store but before the layout
//! committed) — and the comparator they are all judged against:
//! [`RecoveryHarness::cold_reference_probe`] rebuilds the searchable set
//! from the full event stream alone (no checkpoints, no durable state), so
//! any recovered life can be compared bit-for-bit to a cold full rebuild
//! of the same log.
//!
//! [`run_crash_cycle`] is the one-call scenario driver used by the
//! `recovery` integration suite and the recovery experiment.

use std::fs;
use std::io;
use std::ops::Range;
use std::sync::Arc;
use std::time::Duration;

use jdvs_core::IndexConfig;
use jdvs_durability::FsyncPolicy;
use jdvs_features::cost::CostModel;
use jdvs_features::{CachingExtractor, ExtractorConfig, FeatureExtractor};
use jdvs_search::topology::{DurabilityOptions, SearchTopology, TopologyConfig};
use jdvs_search::{RankingPolicy, SearchQuery};
use jdvs_storage::model::ProductEvent;
use jdvs_storage::queue::MessageQueue;
use jdvs_storage::{FeatureDb, ImageStore};
use jdvs_vector::Vector;

use crate::catalog::{Catalog, CatalogConfig};

/// One probe query's answer in bit-comparable form: for each ranked hit,
/// `(url, product_id, distance bits, sales, price, praise)`. Two probes
/// are equal iff the search results are identical down to the float bits
/// of the distance.
pub type Probe = Vec<(String, u64, u32, u64, u64, u64)>;

/// Shape of a recovery scenario.
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// Durable-topology knobs; `dir` is the state that survives the crash.
    pub options: DurabilityOptions,
    /// Catalog size; the event stream is roughly 1.2x this (adds plus
    /// interleaved attribute updates and delists).
    pub num_products: usize,
    /// Probe queries captured per [`RecoveryHarness::probe`] call.
    pub probes: usize,
    /// Results per probe query.
    pub probe_k: usize,
    /// Master seed (catalog shape and visual clusters).
    pub seed: u64,
}

impl RecoveryConfig {
    /// A small, fast scenario writing under `dir` with `FsyncPolicy::Always`.
    pub fn fast(dir: impl Into<std::path::PathBuf>) -> Self {
        let mut options = DurabilityOptions::new(dir);
        options.fsync = FsyncPolicy::Always;
        // Small segments so even short streams exercise rotation,
        // multi-segment replay and retention.
        options.segment_max_bytes = 4096;
        Self {
            options,
            num_products: 36,
            probes: 18,
            probe_k: 3,
            seed: 0x00C4_A511,
        }
    }
}

/// A crash/recovery test bed: shared stores that survive "reboots" plus a
/// deterministic event stream; topologies come and go via
/// [`RecoveryHarness::boot`] / [`RecoveryHarness::halt`].
///
/// The image store and feature DB are shared across lives — they model
/// the production image storage and feature KV store, which are separate
/// durable systems; only the ingestion queue and the searcher indexes die
/// with the process.
pub struct RecoveryHarness {
    config: RecoveryConfig,
    topology_config: TopologyConfig,
    images: Arc<ImageStore>,
    feature_db: Arc<FeatureDb>,
    extractor: Arc<CachingExtractor>,
    training: Vec<Vector>,
    events: Vec<ProductEvent>,
    probe_urls: Vec<String>,
}

impl std::fmt::Debug for RecoveryHarness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecoveryHarness")
            .field("dir", &self.config.options.dir)
            .field("events", &self.events.len())
            .field("probes", &self.probe_urls.len())
            .finish()
    }
}

impl RecoveryHarness {
    /// Builds the bed: generates and materializes a catalog, extracts every
    /// image's features into the shared feature DB, and plans the event
    /// stream. Nothing is published yet and no topology is running.
    ///
    /// # Panics
    ///
    /// Panics on a zero-product config.
    pub fn new(config: RecoveryConfig) -> Self {
        let catalog_config = CatalogConfig {
            num_products: config.num_products,
            num_clusters: (config.num_products / 6).max(2),
            seed: config.seed,
            ..Default::default()
        };
        let mut topology_config = TopologyConfig {
            index: IndexConfig {
                dim: 16,
                num_lists: 8,
                nprobe: 8,
                initial_list_capacity: 16,
                // Hierarchical coarse quantizer on (bounded beam), so
                // every crash/recovery comparison also covers the centroid
                // graph's deterministic rebuild-on-load path.
                coarse_beam_width: 4,
                coarse_balance_factor: 1.5,
                ..Default::default()
            },
            num_partitions: 2,
            replicas_per_partition: 1,
            num_broker_groups: 1,
            broker_replicas: 1,
            num_blenders: 1,
            // Pure similarity ranking keeps probe comparisons exact.
            ranking: RankingPolicy::similarity_only(),
            ..Default::default()
        };
        topology_config.seed = config.seed;

        let images = Arc::new(ImageStore::with_blob_len(256));
        let feature_db = Arc::new(FeatureDb::new());
        let extractor = Arc::new(CachingExtractor::new(
            FeatureExtractor::new(ExtractorConfig {
                dim: topology_config.index.dim,
                ..Default::default()
            }),
            CostModel::free(),
        ));

        let catalog = Catalog::generate(&catalog_config);
        catalog.materialize(&images);

        let mut training: Vec<Vector> = Vec::new();
        for product in catalog.products() {
            for attrs in product.image_attributes() {
                let blob = images.get(attrs.image_key()).expect("materialized");
                let f = extractor.extractor().extract(&blob);
                feature_db.insert(f.clone(), attrs);
                if training.len() < topology_config.index.train_sample {
                    training.push(f);
                }
            }
        }
        assert!(!training.is_empty(), "catalog produced no features");

        let events = plan_events(&catalog);
        let probe_urls: Vec<String> = catalog
            .products()
            .iter()
            .flat_map(|p| p.urls.iter().cloned())
            .step_by(2)
            .take(config.probes)
            .collect();

        Self {
            config,
            topology_config,
            images,
            feature_db,
            extractor,
            training,
            events,
            probe_urls,
        }
    }

    /// The planned event stream (adds interleaved with updates/delists).
    pub fn events(&self) -> &[ProductEvent] {
        &self.events
    }

    /// The image store shared by every life of the topology (models the
    /// production image storage, which survives searcher crashes).
    pub fn images(&self) -> &Arc<ImageStore> {
        &self.images
    }

    /// Boots a topology over the harness's durable directory. On a fresh
    /// directory this is an empty cold start; after a [`halt`] it recovers
    /// the searchable set from checkpoints + log replay before serving.
    ///
    /// [`halt`]: RecoveryHarness::halt
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from opening the log or checkpoint stores.
    pub fn boot(&self) -> io::Result<SearchTopology> {
        SearchTopology::build_durable(
            self.topology_config.clone(),
            Arc::clone(&self.extractor),
            Arc::clone(&self.images),
            Arc::clone(&self.feature_db),
            &self.training,
            self.config.options.clone(),
        )
    }

    /// Publishes `range` of the planned stream and waits until every
    /// searcher has applied it.
    ///
    /// # Panics
    ///
    /// Panics if indexers fail to catch up within a minute.
    pub fn publish(&self, topology: &SearchTopology, range: Range<usize>) {
        for event in &self.events[range] {
            topology.publish(event.clone());
        }
        topology.wait_for_freshness(Duration::from_secs(60));
    }

    /// Kills ingestion: stops the topology's threads and drops it without
    /// checkpointing. Under [`FsyncPolicy::Always`] the on-disk log already
    /// equals the acknowledged stream at every instant, so this is
    /// byte-equivalent to a `SIGKILL`; for weaker policies pair it with
    /// [`tear_tail`](RecoveryHarness::tear_tail) to model the un-fsynced
    /// suffix an OS crash would lose.
    pub fn halt(&self, mut topology: SearchTopology) {
        topology.shutdown();
    }

    /// Truncates up to `bytes` off the end of the newest log segment
    /// (a torn tail). Returns how many bytes were actually removed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn tear_tail(&self, bytes: u64) -> io::Result<u64> {
        let path = self.last_segment()?;
        let len = fs::metadata(&path)?.len();
        let cut = bytes.min(len);
        let file = fs::OpenOptions::new().write(true).open(&path)?;
        file.set_len(len - cut)?;
        file.sync_all()?;
        Ok(cut)
    }

    /// Flips one byte `offset_from_end` bytes before the end of the newest
    /// log segment (tail corruption). No-op on an empty segment.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn corrupt_tail_byte(&self, offset_from_end: u64) -> io::Result<()> {
        let path = self.last_segment()?;
        let mut bytes = fs::read(&path)?;
        if bytes.is_empty() {
            return Ok(());
        }
        let i = bytes.len() - 1 - (offset_from_end as usize).min(bytes.len() - 1);
        bytes[i] ^= 0x5A;
        fs::write(&path, &bytes)?;
        Ok(())
    }

    /// Total bytes currently in the newest log segment.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn tail_len(&self) -> io::Result<u64> {
        Ok(fs::metadata(self.last_segment()?)?.len())
    }

    fn last_segment(&self) -> io::Result<std::path::PathBuf> {
        let wal = self.config.options.dir.join("wal");
        let mut segments: Vec<_> = fs::read_dir(&wal)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.extension().is_some_and(|x| x == "seg")
                    && p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("wal-"))
            })
            .collect();
        segments.sort();
        segments
            .pop()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no log segments"))
    }

    /// Directory of `partition`'s checkpoint store.
    pub fn checkpoint_dir(&self, partition: usize) -> std::path::PathBuf {
        self.config.options.dir.join(format!("ckpt-p{partition}"))
    }

    /// Flips one byte in the middle of `partition`'s newest checkpoint
    /// snapshot — a torn/damaged write from a crash during the snapshot's
    /// temp-file phase. Returns `false` if the store has no snapshot yet.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn corrupt_newest_checkpoint(&self, partition: usize) -> io::Result<bool> {
        let dir = self.checkpoint_dir(partition);
        let mut snaps: Vec<_> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "ckpt"))
            .collect();
        snaps.sort();
        let Some(newest) = snaps.pop() else {
            return Ok(false);
        };
        let mut bytes = fs::read(&newest)?;
        if bytes.is_empty() {
            return Ok(false);
        }
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x5A;
        fs::write(&newest, &bytes)?;
        Ok(true)
    }

    /// Strands half-written `*.tmp` files (a snapshot and a manifest) in
    /// `partition`'s checkpoint store — the state a crash between a temp
    /// write and its rename leaves behind. [`CheckpointStore::open`] must
    /// sweep them on the next boot.
    ///
    /// [`CheckpointStore::open`]: jdvs_durability::checkpoint::CheckpointStore::open
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn strand_checkpoint_tmp(&self, partition: usize) -> io::Result<()> {
        let dir = self.checkpoint_dir(partition);
        fs::create_dir_all(&dir)?;
        fs::write(
            dir.join("snap-99999999999999999999.ckpt.tmp"),
            b"torn snapshot",
        )?;
        fs::write(dir.join("MANIFEST.tmp"), b"torn manifest")?;
        Ok(())
    }

    /// Plants an orphan sibling checkpoint store for partition id
    /// `sibling` — the on-disk state of an online split that crashed after
    /// creating (and possibly part-seeding) its sibling's store but before
    /// the partition-map file committed the new layout. A reboot under the
    /// old layout must ignore it.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn plant_orphan_sibling_store(&self, sibling: usize) -> io::Result<()> {
        let dir = self.checkpoint_dir(sibling);
        fs::create_dir_all(&dir)?;
        fs::write(dir.join("snap-00000000000000000007.ckpt"), b"half-seeded")?;
        fs::write(dir.join("MANIFEST.tmp"), b"torn manifest")?;
        Ok(())
    }

    /// Boots a **non-durable** topology over the same stores and replays
    /// `events` of the planned stream through it from scratch — a cold
    /// full rebuild of the same log, with no checkpoints or durable state
    /// involved. The returned probes are the ground truth every recovered
    /// or lifecycle-mutated life must match bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `events` exceeds the planned stream or indexing stalls.
    pub fn cold_reference_probe(&self, events: usize) -> Vec<Probe> {
        assert!(events <= self.events.len(), "beyond the planned stream");
        let mut reference = SearchTopology::build(
            self.topology_config.clone(),
            Arc::clone(&self.extractor),
            Arc::clone(&self.images),
            Arc::clone(&self.feature_db),
            &self.training,
            MessageQueue::new(),
        );
        for event in &self.events[..events] {
            reference.publish(event.clone());
        }
        reference.wait_for_freshness(Duration::from_secs(60));
        let probes = self.probe(&reference);
        reference.shutdown();
        probes
    }

    /// Captures the answer to every probe query in bit-comparable form.
    /// Equal return values mean the two topologies rank identically down
    /// to the float bits of each hit's distance.
    ///
    /// # Panics
    ///
    /// Panics if a probe search fails outright.
    pub fn probe(&self, topology: &SearchTopology) -> Vec<Probe> {
        let client = topology.client(Duration::from_secs(5));
        self.probe_urls
            .iter()
            .map(|url| {
                let response = client
                    .search(SearchQuery::by_image_url(url.clone(), self.config.probe_k))
                    .expect("probe search");
                response
                    .results
                    .iter()
                    .map(|r| {
                        (
                            r.hit.url.clone(),
                            r.hit.product_id.0,
                            r.hit.distance.to_bits(),
                            r.hit.sales,
                            r.hit.price,
                            r.hit.praise,
                        )
                    })
                    .collect()
            })
            .collect()
    }
}

/// Interleaves every product's `AddProduct` with deterministic attribute
/// updates of earlier products and occasional delists, so replay exercises
/// all three event kinds (and their ordering) rather than a pure add
/// stream.
fn plan_events(catalog: &Catalog) -> Vec<ProductEvent> {
    let products = catalog.products();
    let mut events = Vec::with_capacity(products.len() * 2);
    for (i, product) in products.iter().enumerate() {
        events.push(product.add_event());
        if i >= 4 && i % 3 == 0 {
            let earlier = &products[i - 4];
            events.push(ProductEvent::UpdateAttributes {
                product_id: earlier.id,
                urls: earlier.urls.clone(),
                sales: Some(1_000 + i as u64),
                price: None,
                praise: Some(17 * i as u64),
            });
        }
        if i >= 6 && i % 7 == 0 {
            events.push(products[i - 6].remove_event());
        }
    }
    events
}

/// What a [`run_crash_cycle`] scenario proved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashCycleOutcome {
    /// Events published (and acknowledged) before the kill.
    pub published: usize,
    /// Events the rebooted queue recovered from the log.
    pub recovered_events: u64,
    /// Whether any replica was seeded from a checkpoint snapshot.
    pub from_snapshot: bool,
    /// Sum of events replayed through indexers across partition replicas.
    pub replayed: u64,
    /// Probe queries compared.
    pub probes: usize,
    /// Probe queries whose post-recovery answer differed from the
    /// pre-crash answer (must be 0 under `FsyncPolicy::Always` with an
    /// intact tail).
    pub divergent_probes: usize,
}

/// Shape of one [`run_crash_cycle`] run.
#[derive(Debug, Clone)]
pub struct CrashCycleConfig {
    /// Bed shape (stores, stream, probes, durable dir).
    pub recovery: RecoveryConfig,
    /// Events published before the kill.
    pub crash_after: usize,
    /// When set, checkpoint every partition after this many events.
    pub checkpoint_at: Option<usize>,
    /// Bytes torn off the newest log segment after the kill.
    pub tear_tail_bytes: u64,
}

/// Runs a complete crash cycle: boot on a fresh directory, stream events,
/// (optionally) checkpoint, capture probe answers, kill, (optionally) tear
/// the log tail, reboot on the same directory, and compare probe answers
/// bit-for-bit.
///
/// # Errors
///
/// Propagates I/O errors from the durable machinery.
///
/// # Panics
///
/// Panics if `crash_after` exceeds the planned stream or a probe fails.
pub fn run_crash_cycle(config: CrashCycleConfig) -> io::Result<CrashCycleOutcome> {
    let harness = RecoveryHarness::new(config.recovery);
    assert!(
        config.crash_after <= harness.events().len(),
        "crash_after {} exceeds planned stream {}",
        config.crash_after,
        harness.events().len()
    );

    // First life.
    let topology = harness.boot()?;
    let checkpoint_at = config.checkpoint_at.unwrap_or(usize::MAX);
    if checkpoint_at < config.crash_after {
        harness.publish(&topology, 0..checkpoint_at);
        for p in 0..2 {
            topology.checkpoint_partition(p)?;
        }
        harness.publish(&topology, checkpoint_at..config.crash_after);
    } else {
        harness.publish(&topology, 0..config.crash_after);
    }
    let before = harness.probe(&topology);
    harness.halt(topology);
    if config.tear_tail_bytes > 0 {
        harness.tear_tail(config.tear_tail_bytes)?;
    }

    // Second life.
    let topology = harness.boot()?;
    let recovered_events = topology
        .durable_queue()
        .expect("durable topology")
        .recovered_events();
    let reports = topology.recovery_reports().expect("durable topology");
    let from_snapshot = reports.iter().any(|r| r.from_snapshot);
    let replayed = reports.iter().map(|r| r.replayed).sum();
    let after = harness.probe(&topology);
    harness.halt(topology);

    let divergent_probes = before.iter().zip(&after).filter(|(b, a)| b != a).count();
    Ok(CrashCycleOutcome {
        published: config.crash_after,
        recovered_events,
        from_snapshot,
        replayed,
        probes: before.len(),
        divergent_probes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "jdvs-wl-recovery-{}-{}-{}",
            tag,
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn planned_stream_mixes_all_event_kinds_deterministically() {
        let dir = scratch_dir("plan");
        let a = RecoveryHarness::new(RecoveryConfig::fast(&dir));
        let b = RecoveryHarness::new(RecoveryConfig::fast(&dir));
        assert_eq!(a.events(), b.events());
        let kinds = |h: &RecoveryHarness| {
            let mut adds = 0;
            let mut updates = 0;
            let mut removes = 0;
            for e in h.events() {
                match e {
                    ProductEvent::AddProduct { .. } => adds += 1,
                    ProductEvent::UpdateAttributes { .. } => updates += 1,
                    ProductEvent::RemoveProduct { .. } => removes += 1,
                }
            }
            (adds, updates, removes)
        };
        let (adds, updates, removes) = kinds(&a);
        assert_eq!(adds, 36);
        assert!(updates > 0, "stream has no updates");
        assert!(removes > 0, "stream has no removes");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clean_crash_cycle_is_lossless() {
        let dir = scratch_dir("cycle");
        let mut recovery = RecoveryConfig::fast(&dir);
        recovery.num_products = 16;
        recovery.probes = 8;
        let outcome = run_crash_cycle(CrashCycleConfig {
            recovery,
            crash_after: 18,
            checkpoint_at: None,
            tear_tail_bytes: 0,
        })
        .expect("cycle runs");
        assert_eq!(outcome.recovered_events, 18);
        assert!(!outcome.from_snapshot);
        assert_eq!(outcome.replayed, 18 * 2, "both partitions replay the log");
        assert_eq!(outcome.divergent_probes, 0, "recovery must be exact");
        assert_eq!(outcome.probes, 8);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
