//! Daily catalog-update streams (Table 1 and Figure 11(a)).
//!
//! On 2018-08-04 the production system processed 977 M updates: 315 M
//! attribute updates, 521 M image additions (of which 513 M were
//! re-listings of previously known products) and 141 M removals, with an
//! hourly rate peaking at ~80 M/h around 11:00. [`DailyPlan::generate`]
//! reproduces that *mix and shape* at a configurable scale:
//!
//! - the event-kind mix follows Table 1's ratios;
//! - among additions, the re-list fraction defaults to 513/521;
//! - each event is stamped with an hour drawn from the Figure 11(a) curve;
//! - the stream is *stateful*: deletions target currently-listed products,
//!   re-listings target currently-delisted ones, so the reuse path really
//!   fires at the paper's rate.

use jdvs_storage::model::{EventKind, ProductEvent};
use jdvs_storage::ImageStore;
use jdvs_vector::rng::Xoshiro256;
use serde::{Deserialize, Serialize};

use crate::catalog::Catalog;

/// Hourly weight profile approximating Figure 11(a): quiet night hours, a
/// morning ramp to the 11:00 peak, a sustained afternoon/evening plateau.
pub const FIG11A_HOURLY_WEIGHTS: [f64; 24] = [
    30.0, 22.0, 18.0, 15.0, 14.0, 16.0, // 00–05: night trough
    24.0, 36.0, 50.0, 62.0, 74.0, 80.0, // 06–11: ramp to the peak
    72.0, 66.0, 62.0, 60.0, 58.0, 56.0, // 12–17: afternoon plateau
    55.0, 57.0, 60.0, 58.0, 48.0, 38.0, // 18–23: evening shoulder
];

/// Table 1 ratios.
pub const TABLE1_UPDATE_FRAC: f64 = 315.0 / 977.0;
/// Fraction of additions in the daily mix.
pub const TABLE1_ADDITION_FRAC: f64 = 521.0 / 977.0;
/// Fraction of deletions in the daily mix.
pub const TABLE1_DELETION_FRAC: f64 = 141.0 / 977.0;
/// Fraction of additions that are re-listings.
pub const TABLE1_RELIST_FRAC: f64 = 513.0 / 521.0;

/// Configuration of a day's event stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DailyPlanConfig {
    /// Total events to generate (the paper's day: 977 M; default scale
    /// 1e-4 ≈ 97.7 k).
    pub total_events: usize,
    /// Fraction of attribute updates.
    pub update_frac: f64,
    /// Fraction of additions.
    pub addition_frac: f64,
    /// Fraction of additions that re-list known products.
    pub relist_frac: f64,
    /// Fraction of the catalog that starts the day **delisted** (products
    /// taken off the market on previous days — the inventory that feeds
    /// re-listings; the paper's 513 M re-listed images per day far exceed
    /// its 141 M same-day deletions, so most re-listed products were
    /// delisted earlier).
    pub predelisted_frac: f64,
    /// Per-hour weights (normalized internally).
    pub hourly_weights: [f64; 24],
    /// Stream seed.
    pub seed: u64,
}

impl Default for DailyPlanConfig {
    fn default() -> Self {
        Self {
            total_events: 97_700,
            update_frac: TABLE1_UPDATE_FRAC,
            addition_frac: TABLE1_ADDITION_FRAC,
            relist_frac: TABLE1_RELIST_FRAC,
            predelisted_frac: 0.5,
            hourly_weights: FIG11A_HOURLY_WEIGHTS,
            seed: 0xDA7,
        }
    }
}

/// An event stamped with its simulated hour of day.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// Hour of day, 0–23.
    pub hour: usize,
    /// The catalog change.
    pub event: ProductEvent,
}

/// Summary counts of a generated day (the reproduction of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DayCounts {
    /// Total events.
    pub total: u64,
    /// Attribute updates.
    pub updates: u64,
    /// Additions (re-listings + new products).
    pub additions: u64,
    /// Additions that were re-listings.
    pub relists: u64,
    /// Deletions.
    pub deletions: u64,
}

/// A generated day of catalog updates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DailyPlan {
    events: Vec<TimedEvent>,
    counts: DayCounts,
    predelisted: Vec<jdvs_storage::model::ProductId>,
}

impl DailyPlan {
    /// Generates a day of events against (and mutating the listing state
    /// of) `catalog`. New products created for non-relist additions get
    /// their image blobs materialized into `store`.
    ///
    /// # Panics
    ///
    /// Panics if `config.total_events == 0`, fractions are out of range, or
    /// the catalog is empty.
    pub fn generate(catalog: &mut Catalog, store: &ImageStore, config: &DailyPlanConfig) -> Self {
        assert!(config.total_events > 0, "total_events must be positive");
        assert!(!catalog.is_empty(), "catalog cannot be empty");
        let frac_sum = config.update_frac + config.addition_frac;
        assert!(
            (0.0..=1.0 + 1e-9).contains(&config.update_frac)
                && (0.0..=1.0 + 1e-9).contains(&config.addition_frac)
                && frac_sum <= 1.0 + 1e-9,
            "event fractions must be probabilities summing to at most 1"
        );
        assert!(
            (0.0..=1.0).contains(&config.relist_frac),
            "relist_frac must be in [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&config.predelisted_frac),
            "predelisted_frac must be in [0,1]"
        );

        let mut rng = Xoshiro256::seed_from(config.seed);
        let weight_total: f64 = config.hourly_weights.iter().sum();
        assert!(weight_total > 0.0, "hourly weights must not be all zero");

        // Listing state: a configurable slice of the catalog starts the
        // day delisted (off-market inventory from previous days); the rest
        // is listed.
        let n_predelisted = ((catalog.len() as f64) * config.predelisted_frac).round() as usize;
        let n_predelisted = n_predelisted.min(catalog.len().saturating_sub(1));
        let mut all: Vec<usize> = (0..catalog.len()).collect();
        rng.shuffle(&mut all);
        let mut delisted: Vec<usize> = all[..n_predelisted].to_vec();
        let mut listed: Vec<usize> = all[n_predelisted..].to_vec();
        let predelisted: Vec<jdvs_storage::model::ProductId> =
            delisted.iter().map(|&i| catalog.products()[i].id).collect();

        let mut events = Vec::with_capacity(config.total_events);
        let mut counts = DayCounts::default();
        let mut hour_cursor = 0.0f64;
        let per_event = 24.0 / config.total_events as f64;

        for _ in 0..config.total_events {
            // Hour: inverse-CDF sample would shuffle hours; instead walk
            // time forward (events are ordered within the day, like a real
            // log) and pick the hour by scanning the weight CDF at the
            // current "progress through the day".
            let hour = hour_for_progress(hour_cursor / 24.0, &config.hourly_weights, weight_total);
            hour_cursor += per_event;

            let roll = rng.next_f64();
            let event = if roll < config.update_frac && !listed.is_empty() {
                // Attribute update of a random listed product.
                let idx = listed[rng.next_index(listed.len())];
                let p = &catalog.products()[idx];
                counts.updates += 1;
                ProductEvent::UpdateAttributes {
                    product_id: p.id,
                    urls: p.urls.clone(),
                    sales: Some(rng.next_bounded(200_000)),
                    price: if rng.next_bool(0.3) {
                        Some(99 + rng.next_bounded(1_000_000))
                    } else {
                        None
                    },
                    praise: if rng.next_bool(0.5) {
                        Some(rng.next_bounded(20_000))
                    } else {
                        None
                    },
                }
            } else if roll < config.update_frac + config.addition_frac {
                counts.additions += 1;
                let relist = rng.next_bool(config.relist_frac) && !delisted.is_empty();
                if relist {
                    counts.relists += 1;
                    let pos = rng.next_index(delisted.len());
                    let idx = delisted.swap_remove(pos);
                    listed.push(idx);
                    catalog.products()[idx].add_event()
                } else {
                    // Brand-new product: extend the catalog, materialize its
                    // blobs so extraction can run.
                    let p = catalog.push_new_product(&mut rng).clone();
                    for url in &p.urls {
                        store.put_synthetic(url, p.visual_seed());
                    }
                    listed.push(catalog.len() - 1);
                    p.add_event()
                }
            } else if !listed.is_empty() {
                // Deletion of a random listed product.
                counts.deletions += 1;
                let pos = rng.next_index(listed.len());
                let idx = listed.swap_remove(pos);
                delisted.push(idx);
                catalog.products()[idx].remove_event()
            } else {
                // Nothing listed to delete: degrade to an addition.
                counts.additions += 1;
                let p = catalog.push_new_product(&mut rng).clone();
                for url in &p.urls {
                    store.put_synthetic(url, p.visual_seed());
                }
                listed.push(catalog.len() - 1);
                p.add_event()
            };
            counts.total += 1;
            events.push(TimedEvent { hour, event });
        }
        Self {
            events,
            counts,
            predelisted,
        }
    }

    /// Products that start the day delisted — callers replaying the plan
    /// against a pre-loaded index should invalidate these first so
    /// re-listings exercise the revalidation path.
    pub fn predelisted(&self) -> &[jdvs_storage::model::ProductId] {
        &self.predelisted
    }

    /// The timed events, in day order.
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// Table-1-style counts.
    pub fn counts(&self) -> DayCounts {
        self.counts
    }

    /// Per-hour event counts by kind: `[hour][kind]` with kinds ordered
    /// update/addition/deletion — the bars of Figure 11(a).
    pub fn hourly_counts(&self) -> [[u64; 3]; 24] {
        let mut out = [[0u64; 3]; 24];
        for te in &self.events {
            let k = match te.event.kind() {
                EventKind::Update => 0,
                EventKind::Addition => 1,
                EventKind::Deletion => 2,
            };
            out[te.hour][k] += 1;
        }
        out
    }

    /// The hour with the most events.
    pub fn peak_hour(&self) -> usize {
        let hourly = self.hourly_counts();
        (0..24)
            .max_by_key(|&h| hourly[h].iter().sum::<u64>())
            .unwrap_or(0)
    }
}

/// Maps "fraction of the day's events emitted so far" to an hour using the
/// weight CDF: hours with larger weights own larger CDF spans, so event
/// density per hour follows the weights while the stream stays in
/// chronological order.
fn hour_for_progress(progress: f64, weights: &[f64; 24], total: f64) -> usize {
    let target = progress.clamp(0.0, 1.0) * total;
    let mut acc = 0.0;
    for (h, w) in weights.iter().enumerate() {
        acc += w;
        if target < acc {
            return h;
        }
    }
    23
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogConfig;

    fn setup(total: usize, seed: u64) -> (DailyPlan, Catalog) {
        // Catalog sized so the pre-delisted pool can feed the day's
        // re-listings (see predelisted_frac docs).
        let mut catalog = Catalog::generate(&CatalogConfig {
            num_products: 20_000,
            ..Default::default()
        });
        let store = ImageStore::with_blob_len(32);
        catalog.materialize(&store);
        let plan = DailyPlan::generate(
            &mut catalog,
            &store,
            &DailyPlanConfig {
                total_events: total,
                seed,
                ..Default::default()
            },
        );
        (plan, catalog)
    }

    #[test]
    fn counts_match_table1_ratios() {
        let (plan, _) = setup(20_000, 1);
        let c = plan.counts();
        assert_eq!(c.total, 20_000);
        let update_frac = c.updates as f64 / c.total as f64;
        let add_frac = c.additions as f64 / c.total as f64;
        let del_frac = c.deletions as f64 / c.total as f64;
        assert!(
            (update_frac - TABLE1_UPDATE_FRAC).abs() < 0.02,
            "updates {update_frac}"
        );
        assert!(
            (add_frac - TABLE1_ADDITION_FRAC).abs() < 0.02,
            "additions {add_frac}"
        );
        assert!(
            (del_frac - TABLE1_DELETION_FRAC).abs() < 0.02,
            "deletions {del_frac}"
        );
        // Re-list share of additions ~ 98.5%; early in the day there is
        // nothing to re-list, so allow slack.
        let relist_frac = c.relists as f64 / c.additions as f64;
        assert!(relist_frac > 0.9, "relist share too low: {relist_frac}");
    }

    #[test]
    fn hours_are_chronological_and_peak_matches_curve() {
        let (plan, _) = setup(20_000, 2);
        let mut prev = 0;
        for te in plan.events() {
            assert!(te.hour >= prev, "stream must be in day order");
            assert!(te.hour < 24);
            prev = te.hour;
        }
        assert_eq!(plan.peak_hour(), 11, "Figure 11(a)'s peak is at 11:00");
    }

    #[test]
    fn hourly_counts_sum_to_total() {
        let (plan, _) = setup(5_000, 3);
        let hourly = plan.hourly_counts();
        let sum: u64 = hourly.iter().flatten().sum();
        assert_eq!(sum, 5_000);
    }

    #[test]
    fn generation_is_deterministic() {
        let (a, _) = setup(1_000, 7);
        let (b, _) = setup(1_000, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn deletions_target_listed_products_only() {
        let (plan, _) = setup(10_000, 4);
        // Replay: every deletion must hit a product currently listed (the
        // day starts with the non-predelisted catalog slice listed).
        let predelisted: std::collections::HashSet<_> =
            plan.predelisted().iter().copied().collect();
        let mut listed = std::collections::HashSet::new();
        for te in plan.events() {
            match &te.event {
                ProductEvent::AddProduct { product_id, .. } => {
                    listed.insert(*product_id);
                }
                ProductEvent::RemoveProduct { product_id, .. } => {
                    let was_initially_listed =
                        product_id.0 <= 20_000 && !predelisted.contains(product_id);
                    assert!(
                        listed.remove(product_id) || was_initially_listed,
                        "deleting never-listed product {product_id:?}"
                    );
                }
                ProductEvent::UpdateAttributes { .. } => {}
            }
        }
    }

    #[test]
    fn new_products_get_blobs_materialized() {
        let mut catalog = Catalog::generate(&CatalogConfig {
            num_products: 100,
            ..Default::default()
        });
        // Small catalog: the relist pool drains fast, forcing new products.
        let store = ImageStore::with_blob_len(32);
        catalog.materialize(&store);
        let before = store.len();
        let plan = DailyPlan::generate(
            &mut catalog,
            &store,
            &DailyPlanConfig {
                total_events: 5_000,
                seed: 5,
                ..Default::default()
            },
        );
        // Some additions must have been brand-new products with new blobs.
        assert!(store.len() > before, "new products need blobs");
        assert!(plan.counts().additions > plan.counts().relists);
    }

    #[test]
    #[should_panic(expected = "total_events must be positive")]
    fn zero_events_panics() {
        let mut catalog = Catalog::generate(&CatalogConfig {
            num_products: 10,
            ..Default::default()
        });
        let store = ImageStore::with_blob_len(32);
        DailyPlan::generate(
            &mut catalog,
            &store,
            &DailyPlanConfig {
                total_events: 0,
                ..Default::default()
            },
        );
    }
}
