//! Hierarchical coarse quantizer: a navigable small-world graph over the
//! trained k-means centroids.
//!
//! At production scale the paper implies tens of thousands of IVF cells per
//! partition; there the flat `assign_multi` centroid scan (`O(k·dim)` per
//! query) becomes the dominant pre-kernel cost. [`CentroidGraph`] replaces it
//! with a best-first beam search over a small-world graph whose cost grows
//! roughly with `beam · degree · dim` — sub-linear in the list count — while
//! scoring candidates with the same runtime-dispatched SIMD distance kernel
//! as the flat scan.
//!
//! # Exactness contract
//!
//! The graph is built by inserting centroids in index order and keeping
//! **undirected, unpruned** links to each insertion's nearest neighbors, so
//! every node `i > 0` retains an edge to some node `j < i` and the graph is
//! connected by construction. Two consequences the rest of the engine relies
//! on:
//!
//! * At an **exhaustive beam** (`ef >= k`) the search drains the whole
//!   connected graph, computes each centroid's distance exactly once with
//!   the same kernel as the flat scan, and sorts by the same `(distance, id)`
//!   total order — the output is bit-identical to the flat scan (same lists,
//!   same order). The differential proptests in `jdvs-core` pin this.
//! * At a **bounded beam** the result is a sorted prefix of the candidates
//!   the search visited. For a fixed query and fixed effective beam the
//!   prefix is stable across `nprobe` values up to the beam width; callers
//!   that widen past the beam (nprobe escalation) deduplicate by list id
//!   rather than assuming prefix extension.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use crate::distance::squared_l2;
use crate::topk::Neighbor;
use crate::vector::Vector;

/// Number of nearest neighbors linked (undirected) when a centroid is
/// inserted into the graph. Unpruned: total edge storage is bounded by
/// `2 · k · BUILD_DEGREE` ids plus backlinks.
pub const BUILD_DEGREE: usize = 12;

/// Beam width used while *building* the graph (quality of the neighbor
/// lists, independent of the serving-time beam knob).
pub const BUILD_BEAM: usize = 48;

/// A navigable small-world graph over a centroid table, in CSR layout.
///
/// The graph is **derived data**: it is rebuilt deterministically from the
/// centroid table (insertion order `0..k`, no randomness), so snapshots never
/// need to carry it — `persist::load` reconstructs it from the persisted
/// beam-width knob.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CentroidGraph {
    /// `neighbors(i) = adjacency[offsets[i]..offsets[i + 1]]`.
    offsets: Vec<u32>,
    adjacency: Vec<u32>,
    /// Search entry point: the medoid (centroid nearest the centroid mean).
    entry: u32,
    /// Serving-time beam width (`ef`). Searches use `max(beam, nprobe)`.
    beam: usize,
}

impl CentroidGraph {
    /// Builds the graph over `centroids` with serving beam width `beam`.
    ///
    /// Deterministic: identical centroid tables produce identical graphs.
    ///
    /// # Panics
    ///
    /// Panics if `centroids` is empty or `beam == 0`.
    pub fn build(centroids: &[Vector], beam: usize) -> Self {
        assert!(!centroids.is_empty(), "centroid table cannot be empty");
        assert!(beam > 0, "beam width must be positive");
        let k = centroids.len();
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut scratch = GraphScratch::default();
        for i in 1..k {
            let degree = BUILD_DEGREE.min(i);
            // Search the partial graph over nodes 0..i for the new node's
            // nearest neighbors. Entry 0 is always present.
            let found = beam_search(
                centroids,
                &adj,
                |node, a| a[node].as_slice(),
                0,
                centroids[i].as_slice(),
                BUILD_BEAM.max(degree),
                false,
                &mut scratch,
            );
            for n in found.iter().take(degree) {
                let j = n.id as usize;
                adj[i].push(j as u32);
                adj[j].push(i as u32);
            }
        }
        // Entry point: medoid of the centroid table (nearest to the mean),
        // a central start that shortens average search paths.
        let dim = centroids[0].dim();
        let mut mean = Vector::zeros(dim);
        for c in centroids {
            mean.add_assign(c);
        }
        mean.scale(1.0 / k as f32);
        let mut entry = 0usize;
        let mut entry_d = f32::INFINITY;
        for (i, c) in centroids.iter().enumerate() {
            let d = squared_l2(c.as_slice(), mean.as_slice());
            if d < entry_d {
                entry = i;
                entry_d = d;
            }
        }
        // Flatten to CSR.
        let mut offsets = Vec::with_capacity(k + 1);
        let mut adjacency = Vec::with_capacity(adj.iter().map(Vec::len).sum());
        offsets.push(0u32);
        for list in &adj {
            adjacency.extend_from_slice(list);
            offsets.push(adjacency.len() as u32);
        }
        Self {
            offsets,
            adjacency,
            entry: entry as u32,
            beam,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Returns `true` if the graph has no nodes (never constructible via
    /// [`CentroidGraph::build`], provided for completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The serving-time beam width.
    pub fn beam(&self) -> usize {
        self.beam
    }

    /// Re-targets the serving-time beam width without rebuilding.
    ///
    /// # Panics
    ///
    /// Panics if `beam == 0`.
    pub fn set_beam(&mut self, beam: usize) {
        assert!(beam > 0, "beam width must be positive");
        self.beam = beam;
    }

    /// Bytes of adjacency structure (the memory-per-vector overhead the
    /// `repro coarse` experiment reports).
    pub fn memory_bytes(&self) -> usize {
        (self.offsets.len() + self.adjacency.len()) * std::mem::size_of::<u32>()
    }

    fn neighbors(&self, node: usize) -> &[u32] {
        &self.adjacency[self.offsets[node] as usize..self.offsets[node + 1] as usize]
    }

    /// The `nprobe` nearest centroids to `v` (closest first, `(distance, id)`
    /// order), searched with an effective beam of `max(self.beam, nprobe)`.
    /// When the effective beam reaches the node count the traversal is
    /// exhaustive and the result is bit-identical to the flat scan.
    pub fn assign_into(
        &self,
        centroids: &[Vector],
        v: &[f32],
        nprobe: usize,
        scratch: &mut GraphScratch,
        out: &mut Vec<usize>,
    ) {
        assert!(nprobe > 0, "nprobe must be positive");
        let ef = self.beam.max(nprobe);
        let exhaustive = ef >= self.len();
        let found = beam_search(
            centroids,
            self,
            |node, g| g.neighbors(node),
            self.entry as usize,
            v,
            ef,
            !exhaustive,
            scratch,
        );
        out.clear();
        out.extend(found.iter().take(nprobe).map(|n| n.id as usize));
    }

    /// Index of the (approximately, at bounded beam) nearest centroid.
    /// Allocation-free after warmup via a thread-local scratch.
    pub fn assign_one(&self, centroids: &[Vector], v: &[f32]) -> usize {
        SCRATCH.with(|cell| {
            let mut borrow = cell.borrow_mut();
            let (scratch, out) = &mut *borrow;
            self.assign_into(centroids, v, 1, scratch, out);
            out[0]
        })
    }
}

thread_local! {
    static SCRATCH: RefCell<(GraphScratch, Vec<usize>)> = RefCell::default();
}

/// Reusable buffers for [`CentroidGraph::assign_into`]; one per thread (or
/// embedded in a caller's scratch) makes searches allocation-free.
#[derive(Debug, Default, Clone)]
pub struct GraphScratch {
    /// `visited[node] == epoch` marks a node as seen this search.
    visited: Vec<u32>,
    epoch: u32,
    candidates: BinaryHeap<Reverse<Neighbor>>,
    results: BinaryHeap<Neighbor>,
    sorted: Vec<Neighbor>,
}

impl GraphScratch {
    fn begin(&mut self, nodes: usize) {
        if self.visited.len() < nodes {
            self.visited.resize(nodes, 0);
        }
        if self.epoch == u32::MAX {
            self.visited.iter_mut().for_each(|e| *e = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.candidates.clear();
        self.results.clear();
        self.sorted.clear();
    }
}

/// Best-first beam search from `entry` toward `query`, returning the `ef`
/// nearest visited nodes sorted by `(distance, id)`. With `prune == false`
/// the frontier is drained completely, visiting every node reachable from
/// `entry` (exhaustive mode). Generic over the adjacency source so the
/// builder can search its partial `Vec<Vec<u32>>` graph with the same code
/// that serves queries from the CSR layout.
#[allow(clippy::too_many_arguments)]
fn beam_search<'a, 's, A, F>(
    centroids: &[Vector],
    adjacency: &'a A,
    neighbors_of: F,
    entry: usize,
    query: &[f32],
    ef: usize,
    prune: bool,
    scratch: &'s mut GraphScratch,
) -> &'s [Neighbor]
where
    A: ?Sized,
    F: Fn(usize, &'a A) -> &'a [u32],
{
    scratch.begin(centroids.len());
    let epoch = scratch.epoch;
    scratch.visited[entry] = epoch;
    let start = Neighbor::new(entry as u64, squared_l2(centroids[entry].as_slice(), query));
    scratch.candidates.push(Reverse(start));
    scratch.results.push(start);
    while let Some(Reverse(current)) = scratch.candidates.pop() {
        if prune && scratch.results.len() >= ef {
            // The nearest unexpanded candidate is already worse than the
            // worst retained result: no closer node is reachable through it
            // (small-world heuristic), stop.
            let worst = scratch.results.peek().copied().unwrap_or(current);
            if current > worst {
                break;
            }
        }
        for &nb in neighbors_of(current.id as usize, adjacency) {
            let node = nb as usize;
            if scratch.visited[node] == epoch {
                continue;
            }
            scratch.visited[node] = epoch;
            let cand = Neighbor::new(node as u64, squared_l2(centroids[node].as_slice(), query));
            let admit = !prune
                || scratch.results.len() < ef
                || cand < *scratch.results.peek().expect("results non-empty");
            if admit {
                scratch.candidates.push(Reverse(cand));
                scratch.results.push(cand);
                if prune && scratch.results.len() > ef {
                    scratch.results.pop();
                }
            }
        }
    }
    scratch.sorted.extend(scratch.results.iter().copied());
    scratch.sorted.sort_unstable();
    scratch.sorted.truncate(ef);
    &scratch.sorted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    fn random_centroids(k: usize, dim: usize, seed: u64) -> Vec<Vector> {
        let mut rng = Xoshiro256::seed_from(seed);
        (0..k)
            .map(|_| {
                Vector::from(
                    (0..dim)
                        .map(|_| rng.next_gaussian() as f32)
                        .collect::<Vec<_>>(),
                )
            })
            .collect()
    }

    fn flat_order(centroids: &[Vector], v: &[f32], nprobe: usize) -> Vec<usize> {
        let mut all: Vec<Neighbor> = centroids
            .iter()
            .enumerate()
            .map(|(i, c)| Neighbor::new(i as u64, squared_l2(c.as_slice(), v)))
            .collect();
        all.sort_unstable();
        all.truncate(nprobe);
        all.into_iter().map(|n| n.id as usize).collect()
    }

    #[test]
    fn graph_is_connected_by_construction() {
        let cents = random_centroids(300, 8, 7);
        let graph = CentroidGraph::build(&cents, 16);
        // BFS from the entry must reach every node.
        let mut seen = vec![false; graph.len()];
        let mut stack = vec![graph.entry as usize];
        seen[graph.entry as usize] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            for &nb in graph.neighbors(n) {
                if !seen[nb as usize] {
                    seen[nb as usize] = true;
                    count += 1;
                    stack.push(nb as usize);
                }
            }
        }
        assert_eq!(count, graph.len());
    }

    #[test]
    fn exhaustive_beam_matches_flat_scan_exactly() {
        for (k, dim, seed) in [(1usize, 4usize, 1u64), (17, 3, 2), (96, 8, 3), (257, 16, 4)] {
            let cents = random_centroids(k, dim, seed);
            let graph = CentroidGraph::build(&cents, k.max(1));
            let mut scratch = GraphScratch::default();
            let mut out = Vec::new();
            let mut rng = Xoshiro256::seed_from(seed ^ 0xABCD);
            for _ in 0..10 {
                let q: Vec<f32> = (0..dim).map(|_| rng.next_gaussian() as f32).collect();
                for nprobe in [1usize, 2, k / 2 + 1, k, k + 5] {
                    graph.assign_into(&cents, &q, nprobe, &mut scratch, &mut out);
                    assert_eq!(out, flat_order(&cents, &q, nprobe), "k={k} nprobe={nprobe}");
                }
            }
        }
    }

    #[test]
    fn bounded_beam_has_high_top1_recall() {
        let cents = random_centroids(1000, 16, 11);
        let graph = CentroidGraph::build(&cents, 32);
        let mut scratch = GraphScratch::default();
        let mut out = Vec::new();
        let mut rng = Xoshiro256::seed_from(99);
        let mut hits = 0;
        let trials = 200;
        for _ in 0..trials {
            let q: Vec<f32> = (0..16).map(|_| rng.next_gaussian() as f32).collect();
            graph.assign_into(&cents, &q, 1, &mut scratch, &mut out);
            if out[0] == flat_order(&cents, &q, 1)[0] {
                hits += 1;
            }
        }
        assert!(
            hits >= trials * 9 / 10,
            "top-1 recall too low: {hits}/{trials}"
        );
    }

    #[test]
    fn build_is_deterministic() {
        let cents = random_centroids(128, 8, 21);
        let a = CentroidGraph::build(&cents, 8);
        let b = CentroidGraph::build(&cents, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn assign_one_matches_assign_into() {
        let cents = random_centroids(200, 8, 31);
        let graph = CentroidGraph::build(&cents, 16);
        let mut scratch = GraphScratch::default();
        let mut out = Vec::new();
        let mut rng = Xoshiro256::seed_from(5);
        for _ in 0..20 {
            let q: Vec<f32> = (0..8).map(|_| rng.next_gaussian() as f32).collect();
            graph.assign_into(&cents, &q, 1, &mut scratch, &mut out);
            assert_eq!(graph.assign_one(&cents, &q), out[0]);
        }
    }

    #[test]
    fn single_node_graph_works() {
        let cents = random_centroids(1, 4, 41);
        let graph = CentroidGraph::build(&cents, 4);
        let mut scratch = GraphScratch::default();
        let mut out = Vec::new();
        graph.assign_into(&cents, &[0.0; 4], 1, &mut scratch, &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn memory_is_bounded_by_build_degree() {
        let cents = random_centroids(500, 8, 51);
        let graph = CentroidGraph::build(&cents, 16);
        // Undirected insertion edges: at most 2 · k · BUILD_DEGREE entries.
        assert!(graph.adjacency.len() <= 2 * 500 * BUILD_DEGREE);
        assert!(graph.memory_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "beam width must be positive")]
    fn zero_beam_panics() {
        CentroidGraph::build(&random_centroids(4, 2, 61), 0);
    }
}
