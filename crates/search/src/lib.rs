//! # jdvs-search
//!
//! The distributed online-search subsystem (Sections 2.1 and 2.4,
//! Figures 1 and 10): a three-level hierarchy of
//!
//! 1. **Blenders** ([`blender`]) — receive the user query, obtain its
//!    features (extracting if the query is a raw image), fan out to every
//!    broker group, merge and **rank** the combined results by similarity
//!    and product attributes (sales, praise, price).
//! 2. **Brokers** ([`broker`]) — each group owns a subset of the index
//!    partitions; an instance fans a query out to one searcher replica per
//!    owned partition and merges the partial top-k results.
//! 3. **Searchers** ([`searcher`]) — one per partition replica; each holds
//!    a [`jdvs_core::VisualIndex`] over its partition and also consumes the
//!    message queue to keep it fresh (real-time indexing).
//!
//! [`topology::SearchTopology`] assembles the whole system — front-end load
//! balancer, B blender instances, G broker groups × R broker replicas,
//! P partitions × R searcher replicas, plus one real-time indexing thread
//! per searcher — on the [`jdvs_net`] cluster runtime.
//! [`client::SearchClient`] is the user-facing handle.
//!
//! [`serving::NetServing`] re-exposes the same three tiers as independent
//! TCP services ([`wire`] defines the message encoding), each behind its
//! own admission controller — the network-native deployment shape with
//! overload shedding and graceful drain.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod blender;
pub mod broker;
pub mod client;
pub mod partition;
pub mod protocol;
pub mod ranking;
pub mod ranking_learned;
pub mod searcher;
pub mod serving;
pub mod topology;
pub mod wire;

pub use batch::{BatchConfig, BatchingSearcher};
pub use client::SearchClient;
pub use protocol::{QueryInput, RankedHit, SearchQuery};
pub use ranking::RankingPolicy;
pub use ranking_learned::AdaptiveRanking;
pub use serving::{NetServing, NetServingConfig};
pub use topology::{CheckpointReport, DurabilityOptions, SearchTopology, TopologyConfig};
