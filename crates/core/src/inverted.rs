//! The real-time inverted index (Figures 5, 8 and 9).
//!
//! The index is `N` inverted lists, one per k-means cluster. Each list is a
//! **pre-allocated slab** of image-id slots plus an atomic count of
//! published entries — the per-list "position of the last element" that the
//! paper keeps in an auxiliary array (Figure 5). An append writes the slot,
//! then bumps the count with release ordering; concurrent searches load the
//! count with acquire ordering and scan exactly the published prefix. No
//! locks on either path.
//!
//! **Expansion** (Figure 9): when a slab fills, a slab of **double size**
//! is allocated. New image ids are appended into the new slab while *"the
//! current inverted list continues to serve the requests until a background
//! process finishes copying all the content of the current list to the new
//! list. When the copy operation completes, the newly created inverted list
//! becomes the current one and the old one is deleted."* Exactly that
//! protocol is implemented here: searches keep reading the old slab during
//! the copy; entries appended during the window become visible at the atomic
//! swap. `background_copy: false` gives the inline-copy ablation baseline.
//!
//! **Publication liveness.** Ids appended into a migration's tail are not
//! in the served slab until the swap, so the swap must not wait for an
//! arbitrarily-later event. Three paths publish a finished copy, and each
//! lands whichever runs first:
//!
//! 1. the **copy thread itself**, right after setting `copy_done` (it
//!    re-acquires the writer lock with `try_lock`, so it can never deadlock
//!    against a writer that is simultaneously publishing);
//! 2. any **append** that observes `copy_done` — checked both before *and
//!    after* writing its tail slot, so the id just appended is published
//!    immediately when the copy raced it;
//! 3. an explicit [`InvertedList::flush`] (the real-time indexer calls it
//!    when the message queue idles).
//!
//! Without path 1, a quiet queue left tail inserts unsearchable until the
//! next append — the unbounded-staleness bug the loom/stress harness locks
//! in a regression test for (`tail_insert_publishes_without_further_help`).
//!
//! The full memory-model write-up for this structure lives in DESIGN.md
//! ("Memory model of the mutation path").

use crate::sync::{thread, Arc, AtomicBool, AtomicU64, AtomicUsize, Mutex, Ordering, RwLock};

use crate::ids::{ImageId, ListId};

/// Ids per [`InvertedList::scan_blocks`] batch. Sized so a block of ids plus
/// the distances computed from it stay L1-resident while amortizing the
/// per-block bookkeeping over enough candidates to be negligible.
pub const SCAN_BLOCK: usize = 256;

/// A fixed-capacity array of image-id slots with a published-length counter.
#[derive(Debug)]
pub struct Slab {
    slots: Box<[AtomicU64]>,
    len: AtomicUsize,
}

impl Slab {
    #[cfg(not(loom))]
    fn new(capacity: usize) -> Self {
        // `vec![0u64; n]` allocates through calloc, which hands back
        // lazily-zeroed pages in O(1); element-wise `AtomicU64::new(0)`
        // construction would touch every slot on the writer path and make
        // "allocate the double-size list" cost O(n) at expansion time —
        // exactly the stall Figure 9's protocol exists to avoid.
        let zeroed: Box<[u64]> = vec![0u64; capacity].into_boxed_slice();
        // SAFETY: `AtomicU64` is `repr(C)` with the same size and alignment
        // as `u64` (guaranteed by std), and the all-zero bit pattern is a
        // valid `AtomicU64`. Ownership transfers through the raw pointer
        // without aliasing. `unsafe_slab_cast_round_trips` in
        // tests/concurrency.rs exercises this cast under the interpreter
        // (`cargo miri test -p jdvs-core --test concurrency unsafe_slab`).
        let slots = unsafe {
            let raw: *mut [u64] = Box::into_raw(zeroed);
            Box::from_raw(raw as *mut [AtomicU64])
        };
        Self {
            slots,
            len: AtomicUsize::new(0),
        }
    }

    #[cfg(loom)]
    fn new(capacity: usize) -> Self {
        // The loom shim's instrumented atomics are not layout-compatible
        // with `u64`, so model builds construct element-wise. Model slabs
        // are tiny; the O(n) cost is irrelevant there.
        Self {
            slots: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            len: AtomicUsize::new(0),
        }
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Published entries.
    pub fn len(&self) -> usize {
        // Acquire: pairs with the Release stores of `len` in
        // `InvertedList::append` (same-slab publish) and
        // `ListShared::publish` (migration publish), making every slot
        // write below the loaded length visible to this thread.
        self.len.load(Ordering::Acquire)
    }

    /// Returns `true` if no entry is published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Writer-side state of an in-flight expansion.
struct Migration {
    new_slab: Arc<Slab>,
    /// Next free position in the new slab (old contents occupy `[0, base)`;
    /// the copier fills that prefix while we append at `base..`).
    next_pos: usize,
    /// Set (release) by the copier when the prefix copy is complete; also
    /// the identity token the copier uses to recognize its own migration.
    copy_done: Arc<AtomicBool>,
    /// Set (release) after the new slab is swapped in, so the copy thread's
    /// opportunistic-publish loop terminates even when it loses every
    /// `try_lock` race to a publishing writer.
    published: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl Drop for Migration {
    /// Joins the background copy thread. Dropping a [`crate::VisualIndex`]
    /// (e.g. on an `IndexHandle` swap after a full rebuild) mid-expansion
    /// previously detached the thread; now the drop blocks — briefly, the
    /// copier's work is bounded and it never block-waits on a lock — until
    /// the thread exits. The copier's own self-publish path clears
    /// `handle` first, so a migration consumed by its copier never
    /// self-joins.
    fn drop(&mut self) {
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// State shared between an [`InvertedList`] and its in-flight copy thread,
/// so the copier can publish a finished migration itself instead of
/// parking it until the next append.
struct ListShared {
    current: RwLock<Arc<Slab>>,
    writer: Mutex<Option<Migration>>,
}

impl ListShared {
    /// Publishes a finished migration: set the new slab's length to cover
    /// both the copied prefix and the appended tail, then atomically make
    /// it current. The old slab is dropped when its last reader releases
    /// its `Arc` — "the old one is deleted", without blocking anyone.
    ///
    /// Callers must hold (or be single-threaded owners of) the writer
    /// lock's migration slot; the migration is consumed.
    fn publish(&self, m: Migration) {
        debug_assert!(m.copy_done.load(Ordering::Acquire));
        // Release: pairs with the Acquire in `Slab::len`. Tail-slot stores
        // (relaxed, made by appenders) happened-before this store via the
        // writer-mutex hand-off; prefix-slot stores via the copy thread's
        // Release store of `copy_done` and our Acquire load of it.
        m.new_slab.len.store(m.next_pos, Ordering::Release);
        *self.current.write() = Arc::clone(&m.new_slab);
        // Release the copier's exit latch last: once observed, the copier
        // stops retrying `try_lock` and terminates, letting the `Drop`
        // join below (and any index teardown) complete promptly.
        m.published.store(true, Ordering::Release);
        // `m` drops here: joins the copy thread unless the copier itself
        // is publishing (it clears `handle` first).
    }

    /// Waits for the copy to complete (spinning through scheduler yields —
    /// never joining, which could deadlock against a copier blocked on the
    /// writer lock we hold), then publishes.
    fn wait_and_publish(&self, m: Migration) {
        // Acquire: pairs with the copier's Release store of `copy_done`;
        // after it reads true, the copied prefix is visible.
        while !m.copy_done.load(Ordering::Acquire) {
            thread::yield_now();
        }
        self.publish(m);
    }
}

/// One inverted list; see the module docs.
pub struct InvertedList {
    shared: Arc<ListShared>,
    background_copy: bool,
    expansions: AtomicU64,
}

impl std::fmt::Debug for InvertedList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let slab = self.shared.current.read();
        f.debug_struct("InvertedList")
            .field("len", &slab.len())
            .field("capacity", &slab.capacity())
            .field("expansions", &self.expansions.load(Ordering::Relaxed))
            .finish()
    }
}

impl InvertedList {
    /// Creates a list with `initial_capacity` pre-allocated slots.
    ///
    /// # Panics
    ///
    /// Panics if `initial_capacity == 0`.
    pub fn new(initial_capacity: usize, background_copy: bool) -> Self {
        assert!(initial_capacity > 0, "initial capacity must be positive");
        Self {
            shared: Arc::new(ListShared {
                current: RwLock::new(Arc::new(Slab::new(initial_capacity))),
                writer: Mutex::new(None),
            }),
            background_copy,
            expansions: AtomicU64::new(0),
        }
    }

    /// Appends an image id and returns its position in the list. Safe to
    /// call from one writer at a time per list (the owning searcher);
    /// concurrent with any number of scans.
    ///
    /// Positions are stable for the lifetime of the list: expansions copy
    /// the prefix in place (`[0, old_len)` keeps its indices) and tail
    /// appends continue from `old_len`, so the returned position keys
    /// position-indexed sidecars like the interleaved PQ store.
    pub fn append(&self, id: ImageId) -> usize {
        let mut writer = self.shared.writer.lock();
        loop {
            // Finish a completed migration first so appends land normally.
            if let Some(m) = writer.as_mut() {
                // Acquire: pairs with the copier's Release of `copy_done`,
                // so publishing here sees the fully-copied prefix.
                if m.copy_done.load(Ordering::Acquire) {
                    self.shared.publish(writer.take().expect("checked above"));
                    continue;
                }
                // Migration still copying: append into the new slab's tail.
                if m.next_pos < m.new_slab.capacity() {
                    // Relaxed: this tail slot is published by the `len`
                    // Release store in `ListShared::publish`, ordered
                    // after this store by the writer-mutex hand-off (or by
                    // program order when this thread publishes below).
                    let pos = m.next_pos;
                    m.new_slab.slots[pos].store(id.as_u64(), Ordering::Relaxed);
                    m.next_pos += 1;
                    // Re-check after the tail write: if the copy finished
                    // while we appended, the copier's try_lock lost to our
                    // lock — publish now so this id (and the migration)
                    // never waits for a later append or flush.
                    if m.copy_done.load(Ordering::Acquire) {
                        self.shared.publish(writer.take().expect("checked above"));
                    }
                    return pos;
                }
                // New slab filled before the copy finished (pathological:
                // capacity doubled, so the writer outran a whole copy).
                // Wait for the copy, publish, and retry.
                let m = writer.take().expect("checked above");
                self.shared.wait_and_publish(m);
                continue;
            }
            let slab = Arc::clone(&self.shared.current.read());
            // Relaxed: `len` is only stored by the single writer this
            // mutex serializes; the previous writer's Release store (and
            // the mutex hand-off) make the value current.
            let len = slab.len.load(Ordering::Relaxed);
            if len < slab.capacity() {
                // Relaxed slot store, published by the Release below —
                // the paper's "write the slot, then bump the position".
                slab.slots[len].store(id.as_u64(), Ordering::Relaxed);
                // Release: pairs with the Acquire in `Slab::len`; a scan
                // that observes `len + 1` also observes the slot write.
                slab.len.store(len + 1, Ordering::Release);
                return len;
            }
            // Full: start an expansion, then loop to append via migration.
            *writer = Some(self.start_migration(&slab));
        }
    }

    fn start_migration(&self, old: &Arc<Slab>) -> Migration {
        // Relaxed: statistics counter, no ordering required.
        self.expansions.fetch_add(1, Ordering::Relaxed);
        let old_len = old.len();
        let new_slab = Arc::new(Slab::new((old.capacity() * 2).max(1)));
        let copy_done = Arc::new(AtomicBool::new(false));
        let published = Arc::new(AtomicBool::new(false));
        let copy = {
            let old = Arc::clone(old);
            let new_slab = Arc::clone(&new_slab);
            let copy_done = Arc::clone(&copy_done);
            move || {
                for i in 0..old_len {
                    // Relaxed on both sides: the source slots are ordered
                    // before `old_len` by the Acquire in `old.len()` above
                    // (observed before this closure was created, and the
                    // spawn edge carries it into the thread); the
                    // destination slots are published by the Release store
                    // of `copy_done` below plus the publisher's Acquire.
                    new_slab.slots[i]
                        .store(old.slots[i].load(Ordering::Relaxed), Ordering::Relaxed);
                }
                // Release: pairs with every `copy_done` Acquire load in
                // append/publish/wait_and_publish.
                copy_done.store(true, Ordering::Release);
            }
        };
        let handle = if self.background_copy {
            let shared = Arc::clone(&self.shared);
            let copy_done = Arc::clone(&copy_done);
            let published = Arc::clone(&published);
            Some(thread::spawn(move || {
                copy();
                // Opportunistic publish (liveness path 1 in the module
                // docs): without it, a tail insert stays unsearchable
                // until the *next* append or an explicit flush — forever,
                // on a quiet queue. `try_lock` (never `lock`) so a writer
                // publishing concurrently — which then joins this thread
                // via `Migration::drop` — can never deadlock against us.
                loop {
                    // Acquire: pairs with the Release in `publish`; once
                    // true, someone else swapped the slab in and we exit.
                    if published.load(Ordering::Acquire) {
                        return;
                    }
                    match shared.writer.try_lock() {
                        Some(mut w) => {
                            let ours = w
                                .as_ref()
                                .is_some_and(|m| Arc::ptr_eq(&m.copy_done, &copy_done));
                            if ours {
                                let mut m = w.take().expect("checked above");
                                // Our own carrier: clear the handle so
                                // publish's drop doesn't self-join.
                                m.handle = None;
                                shared.publish(m);
                            }
                            // Not ours: the migration was already
                            // published (and possibly superseded by a
                            // newer expansion). Either way, done.
                            return;
                        }
                        // A writer holds the lock. Every writer path that
                        // holds it re-checks `copy_done` before releasing,
                        // so we only spin for one short critical section.
                        None => thread::yield_now(),
                    }
                }
            }))
        } else {
            copy();
            None
        };
        Migration {
            new_slab,
            next_pos: old_len,
            copy_done,
            published,
            handle,
        }
    }

    /// Completes any in-flight expansion, waiting for the background copy.
    /// The real-time indexer calls this when the message queue goes idle so
    /// recently appended ids become searchable without waiting for the next
    /// append. (The copy thread also publishes on its own once the copy
    /// completes, so flush is a determinism backstop, not the only path.)
    pub fn flush(&self) {
        let mut writer = self.shared.writer.lock();
        if let Some(m) = writer.take() {
            self.shared.wait_and_publish(m);
        }
    }

    /// Calls `f` with every published image id (a lock-free snapshot scan:
    /// entries appended after the scan starts may or may not be seen).
    pub fn scan(&self, mut f: impl FnMut(ImageId)) {
        let slab = Arc::clone(&self.shared.current.read());
        let len = slab.len();
        for slot in &slab.slots[..len] {
            // Relaxed: the slot writes below `len` happened-before the
            // Acquire load in `slab.len()` above.
            f(ImageId(slot.load(Ordering::Relaxed) as u32));
        }
    }

    /// Calls `f` with contiguous blocks of up to [`SCAN_BLOCK`] published
    /// image ids, in append order — the batched form of [`Self::scan`].
    /// Handing the execution engine a dense `&[ImageId]` lets it test the
    /// validity bitmap, resolve vectors, and compute distances over a whole
    /// block between branch points instead of bouncing through a callback
    /// per id. Same snapshot semantics as `scan`.
    pub fn scan_blocks(&self, mut f: impl FnMut(&[ImageId])) {
        let slab = Arc::clone(&self.shared.current.read());
        let len = slab.len();
        let mut block = [ImageId(0); SCAN_BLOCK];
        let mut start = 0;
        while start < len {
            let n = SCAN_BLOCK.min(len - start);
            for (dst, slot) in block[..n].iter_mut().zip(&slab.slots[start..start + n]) {
                // Relaxed: ordered behind the Acquire `len` load, as in
                // `scan`.
                *dst = ImageId(slot.load(Ordering::Relaxed) as u32);
            }
            f(&block[..n]);
            start += n;
        }
    }

    /// Published entry count — this list's element of the paper's auxiliary
    /// last-position array.
    pub fn len(&self) -> usize {
        self.shared.current.read().len()
    }

    /// Returns `true` if no entry is published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current slab capacity.
    pub fn capacity(&self) -> usize {
        self.shared.current.read().capacity()
    }

    /// Number of expansions performed.
    pub fn expansions(&self) -> u64 {
        // Relaxed: statistics counter.
        self.expansions.load(Ordering::Relaxed)
    }
}

/// The `N`-list inverted index.
#[derive(Debug)]
pub struct InvertedIndex {
    lists: Vec<InvertedList>,
}

impl InvertedIndex {
    /// Creates `num_lists` lists with `initial_capacity` slots each.
    ///
    /// # Panics
    ///
    /// Panics if `num_lists == 0` or `initial_capacity == 0`.
    pub fn new(num_lists: usize, initial_capacity: usize, background_copy: bool) -> Self {
        assert!(num_lists > 0, "num_lists must be positive");
        Self {
            lists: (0..num_lists)
                .map(|_| InvertedList::new(initial_capacity, background_copy))
                .collect(),
        }
    }

    /// Number of lists (`N`).
    pub fn num_lists(&self) -> usize {
        self.lists.len()
    }

    /// Appends `id` to list `list`, returning its stable position in the
    /// list (see [`InvertedList::append`]).
    ///
    /// # Panics
    ///
    /// Panics if `list` is out of range.
    pub fn append(&self, list: ListId, id: ImageId) -> usize {
        self.lists[list.as_usize()].append(id)
    }

    /// Scans list `list`.
    ///
    /// # Panics
    ///
    /// Panics if `list` is out of range.
    pub fn scan(&self, list: ListId, f: impl FnMut(ImageId)) {
        self.lists[list.as_usize()].scan(f);
    }

    /// Scans list `list` in blocks; see [`InvertedList::scan_blocks`].
    ///
    /// # Panics
    ///
    /// Panics if `list` is out of range.
    pub fn scan_blocks(&self, list: ListId, f: impl FnMut(&[ImageId])) {
        self.lists[list.as_usize()].scan_blocks(f);
    }

    /// Borrow a list.
    ///
    /// # Panics
    ///
    /// Panics if `list` is out of range.
    pub fn list(&self, list: ListId) -> &InvertedList {
        &self.lists[list.as_usize()]
    }

    /// Completes all in-flight expansions.
    pub fn flush(&self) {
        for l in &self.lists {
            l.flush();
        }
    }

    /// The auxiliary array: each list's published last-element position.
    pub fn aux_positions(&self) -> Vec<usize> {
        self.lists.iter().map(InvertedList::len).collect()
    }

    /// Total entries across lists.
    pub fn total_entries(&self) -> usize {
        self.lists.iter().map(InvertedList::len).sum()
    }

    /// Total expansions across lists.
    pub fn total_expansions(&self) -> u64 {
        self.lists.iter().map(InvertedList::expansions).sum()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicBool as StdAtomicBool, Ordering as StdOrdering};
    use std::sync::Arc as StdArc;
    use std::time::{Duration, Instant};

    fn collect(list: &InvertedList) -> Vec<u32> {
        let mut out = Vec::new();
        list.scan(|id| out.push(id.0));
        out
    }

    #[test]
    fn append_then_scan_in_order() {
        let list = InvertedList::new(8, false);
        for i in 0..5 {
            list.append(ImageId(i));
        }
        assert_eq!(collect(&list), vec![0, 1, 2, 3, 4]);
        assert_eq!(list.len(), 5);
        assert_eq!(list.capacity(), 8);
        assert_eq!(list.expansions(), 0);
    }

    #[test]
    fn inline_expansion_doubles_capacity_and_preserves_order() {
        let list = InvertedList::new(4, false);
        for i in 0..20 {
            list.append(ImageId(i));
        }
        list.flush();
        assert_eq!(collect(&list), (0..20).collect::<Vec<_>>());
        assert!(list.capacity() >= 20);
        assert!(list.expansions() >= 2);
    }

    #[test]
    fn background_expansion_preserves_all_entries() {
        let list = InvertedList::new(4, true);
        for i in 0..1_000 {
            list.append(ImageId(i));
        }
        list.flush();
        assert_eq!(collect(&list), (0..1_000).collect::<Vec<_>>());
    }

    #[test]
    fn entries_appended_during_migration_become_visible_after_flush() {
        let list = InvertedList::new(2, true);
        list.append(ImageId(0));
        list.append(ImageId(1));
        // This append triggers expansion; the id may be invisible until the
        // swap happens.
        list.append(ImageId(2));
        list.flush();
        assert_eq!(collect(&list), vec![0, 1, 2]);
    }

    #[test]
    fn tail_insert_publishes_without_further_help() {
        // The staleness regression test: an id appended into a migration's
        // tail must become scannable through the copier's own publish path
        // — with NO subsequent append and NO flush.
        for _ in 0..50 {
            let list = InvertedList::new(2, true);
            list.append(ImageId(0));
            list.append(ImageId(1));
            list.append(ImageId(2)); // starts the expansion, lands in the tail
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                if collect(&list) == vec![0, 1, 2] {
                    break;
                }
                assert!(
                    Instant::now() < deadline,
                    "tail insert never became searchable without an append/flush; \
                     published view: {:?}",
                    collect(&list)
                );
                std::thread::yield_now();
            }
        }
    }

    #[test]
    fn old_slab_serves_reads_during_migration() {
        // With background copy, immediately after the expansion-triggering
        // append the *published* view must still contain the old prefix.
        let list = InvertedList::new(2, true);
        list.append(ImageId(0));
        list.append(ImageId(1));
        list.append(ImageId(2)); // starts migration
        let seen = collect(&list);
        assert!(
            seen == vec![0, 1] || seen == vec![0, 1, 2],
            "old prefix always visible: {seen:?}"
        );
        list.flush();
        assert_eq!(collect(&list), vec![0, 1, 2]);
    }

    #[test]
    fn drop_mid_migration_joins_the_copy_thread() {
        // Dropping the list right after triggering an expansion must join
        // the in-flight copy thread (Migration::drop), not detach it. The
        // loop makes the race window land on both sides of copy_done.
        for i in 0..200u32 {
            let list = InvertedList::new(2, true);
            list.append(ImageId(i));
            list.append(ImageId(i + 1));
            list.append(ImageId(i + 2)); // starts the background copy
            drop(list); // must not hang, leak, or panic
        }
    }

    #[test]
    fn scan_blocks_matches_scan_across_block_boundaries() {
        // 0, 1, SCAN_BLOCK - 1, SCAN_BLOCK, exact multiples, and a ragged
        // tail all reduce to the same id sequence as the per-id scan.
        for n in [0usize, 1, SCAN_BLOCK - 1, SCAN_BLOCK, SCAN_BLOCK * 3, 1000] {
            let list = InvertedList::new(8, false);
            for i in 0..n {
                list.append(ImageId(i as u32 * 7));
            }
            list.flush();
            let per_id = collect(&list);
            let mut blocked = Vec::new();
            let mut max_block = 0;
            list.scan_blocks(|ids| {
                assert!(!ids.is_empty(), "empty blocks are never emitted");
                max_block = max_block.max(ids.len());
                blocked.extend(ids.iter().map(|id| id.0));
            });
            assert_eq!(blocked, per_id, "n = {n}");
            assert!(max_block <= SCAN_BLOCK);
        }
    }

    #[test]
    fn flush_without_migration_is_noop() {
        let list = InvertedList::new(4, true);
        list.append(ImageId(9));
        list.flush();
        assert_eq!(collect(&list), vec![9]);
    }

    #[test]
    fn concurrent_scans_during_appends_see_consistent_prefixes() {
        let list = StdArc::new(InvertedList::new(8, true));
        let stop = StdArc::new(StdAtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let list = StdArc::clone(&list);
                let stop = StdArc::clone(&stop);
                std::thread::spawn(move || {
                    let mut max_seen = 0usize;
                    while !stop.load(StdOrdering::Relaxed) {
                        let ids = {
                            let mut v = Vec::new();
                            list.scan(|id| v.push(id.0));
                            v
                        };
                        // Prefix property: entries are exactly 0..n in order.
                        for (i, &id) in ids.iter().enumerate() {
                            assert_eq!(id as usize, i, "scan must be a dense prefix");
                        }
                        // Monotonicity within one reader *between* swaps is
                        // not guaranteed mid-migration (paper semantics);
                        // but the final view must be complete.
                        max_seen = max_seen.max(ids.len());
                    }
                    max_seen
                })
            })
            .collect();
        for i in 0..50_000u32 {
            list.append(ImageId(i));
        }
        list.flush();
        stop.store(true, StdOrdering::Relaxed);
        for h in readers {
            h.join().unwrap();
        }
        assert_eq!(collect(&list), (0..50_000).collect::<Vec<_>>());
        assert!(list.expansions() > 0);
    }

    #[test]
    fn index_routes_to_lists() {
        let idx = InvertedIndex::new(4, 8, false);
        idx.append(ListId(0), ImageId(1));
        idx.append(ListId(0), ImageId(2));
        idx.append(ListId(3), ImageId(9));
        assert_eq!(idx.num_lists(), 4);
        assert_eq!(idx.aux_positions(), vec![2, 0, 0, 1]);
        assert_eq!(idx.total_entries(), 3);
        let mut seen = HashSet::new();
        idx.scan(ListId(0), |id| {
            seen.insert(id.0);
        });
        assert_eq!(seen, HashSet::from([1, 2]));
    }

    #[test]
    fn index_flush_completes_all_lists() {
        let idx = InvertedIndex::new(2, 2, true);
        for i in 0..10 {
            idx.append(ListId(0), ImageId(i));
            idx.append(ListId(1), ImageId(100 + i));
        }
        idx.flush();
        assert_eq!(idx.total_entries(), 20);
        assert!(idx.total_expansions() >= 2);
    }

    #[test]
    #[should_panic(expected = "num_lists must be positive")]
    fn zero_lists_panics() {
        InvertedIndex::new(0, 4, false);
    }

    #[test]
    #[should_panic(expected = "initial capacity must be positive")]
    fn zero_capacity_panics() {
        InvertedList::new(0, false);
    }
}
