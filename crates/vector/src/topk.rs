//! Bounded top-k selection.
//!
//! Every level of the search hierarchy keeps "the k closest so far": a
//! searcher while scanning inverted lists, a broker while merging partial
//! results from its searchers, and the blender while merging broker results.
//! [`TopK`] is a bounded max-heap over distances — `push` is `O(log k)` and
//! rejects non-improving candidates in `O(1)` once the heap is full.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

/// A candidate result: an opaque 64-bit id and its distance to the query
/// ("smaller is closer").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Neighbor {
    /// Caller-defined identifier (jdvs uses the global image id).
    pub id: u64,
    /// Distance to the query under the active metric.
    pub distance: f32,
}

impl Neighbor {
    /// Creates a neighbor.
    pub fn new(id: u64, distance: f32) -> Self {
        Self { id, distance }
    }
}

impl Eq for Neighbor {}

impl Ord for Neighbor {
    /// Orders by distance, breaking ties by id so that ordering is total and
    /// deterministic even with equal distances. NaN distances sort last
    /// (treated as farthest).
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.distance.is_nan(), other.distance.is_nan()) {
            (true, true) => self.id.cmp(&other.id),
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => self
                .distance
                .partial_cmp(&other.distance)
                .unwrap_or(Ordering::Equal)
                .then_with(|| self.id.cmp(&other.id)),
        }
    }
}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Bounded collector of the `k` nearest neighbors seen so far.
///
/// # Example
///
/// ```
/// use jdvs_vector::topk::TopK;
///
/// let mut topk = TopK::new(2);
/// topk.push(1, 5.0);
/// topk.push(2, 1.0);
/// topk.push(3, 3.0);
/// let ids: Vec<u64> = topk.into_sorted_vec().into_iter().map(|n| n.id).collect();
/// assert_eq!(ids, vec![2, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    // Max-heap: the root is the *worst* of the current best-k, so an
    // improving candidate replaces the root in O(log k).
    heap: BinaryHeap<Neighbor>,
}

impl TopK {
    /// Creates a collector that retains the `k` nearest candidates.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`; an empty result budget is always a caller bug.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// The configured capacity `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of candidates currently held (`<= k`).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no candidate has been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Returns `true` if the collector holds `k` candidates.
    pub fn is_full(&self) -> bool {
        self.heap.len() == self.k
    }

    /// The current k-th (worst retained) distance, or `f32::INFINITY` while
    /// fewer than `k` candidates have been accepted. Scan loops use this as
    /// a pruning threshold.
    pub fn threshold(&self) -> f32 {
        if self.is_full() {
            self.heap
                .peek()
                .map(|n| n.distance)
                .unwrap_or(f32::INFINITY)
        } else {
            f32::INFINITY
        }
    }

    /// Returns `true` if a candidate at `distance` *could* be retained —
    /// the block-scan pruning test: when it returns `false` the caller can
    /// skip building the [`Neighbor`] and touching the heap entirely. A
    /// `true` answer is conservative (an equal-distance candidate may still
    /// lose the id tie-break inside [`TopK::push`]).
    #[inline]
    pub fn would_accept(&self, distance: f32) -> bool {
        self.heap.len() < self.k
            || self
                .heap
                .peek()
                .is_none_or(|worst| distance <= worst.distance)
    }

    /// Offers a candidate; returns `true` if it was retained.
    pub fn push(&mut self, id: u64, distance: f32) -> bool {
        self.push_neighbor(Neighbor::new(id, distance))
    }

    /// Offers an existing [`Neighbor`]; returns `true` if it was retained.
    pub fn push_neighbor(&mut self, n: Neighbor) -> bool {
        if self.heap.len() < self.k {
            self.heap.push(n);
            return true;
        }
        // Full: replace the current worst only if strictly better.
        match self.heap.peek() {
            Some(worst) if n < *worst => {
                self.heap.pop();
                self.heap.push(n);
                true
            }
            _ => false,
        }
    }

    /// Merges every retained candidate of `other` into `self`. Used by
    /// brokers/blenders to combine partial results.
    pub fn merge(&mut self, other: TopK) {
        for n in other.heap {
            self.push_neighbor(n);
        }
    }

    /// Consumes the collector, returning neighbors sorted nearest-first.
    pub fn into_sorted_vec(self) -> Vec<Neighbor> {
        let mut v = self.heap.into_vec();
        v.sort_unstable();
        v
    }
}

impl Extend<Neighbor> for TopK {
    fn extend<I: IntoIterator<Item = Neighbor>>(&mut self, iter: I) {
        for n in iter {
            self.push_neighbor(n);
        }
    }
}

/// Convenience: selects the `k` nearest neighbors from an iterator of
/// `(id, distance)` pairs, sorted nearest-first.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn select_topk<I: IntoIterator<Item = (u64, f32)>>(k: usize, items: I) -> Vec<Neighbor> {
    let mut topk = TopK::new(k);
    for (id, d) in items {
        topk.push(id, d);
    }
    topk.into_sorted_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_smallest() {
        let got = select_topk(3, (0..100u64).map(|i| (i, (100 - i) as f32)));
        let ids: Vec<u64> = got.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![99, 98, 97]);
    }

    #[test]
    fn fewer_than_k_returns_all_sorted() {
        let got = select_topk(10, vec![(1, 3.0), (2, 1.0)]);
        let ids: Vec<u64> = got.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![2, 1]);
    }

    #[test]
    fn threshold_tracks_worst_retained() {
        let mut topk = TopK::new(2);
        assert_eq!(topk.threshold(), f32::INFINITY);
        topk.push(1, 5.0);
        assert_eq!(topk.threshold(), f32::INFINITY, "not full yet");
        topk.push(2, 3.0);
        assert_eq!(topk.threshold(), 5.0);
        topk.push(3, 1.0);
        assert_eq!(topk.threshold(), 3.0);
    }

    #[test]
    fn rejects_non_improving_when_full() {
        let mut topk = TopK::new(1);
        assert!(topk.push(1, 1.0));
        assert!(!topk.push(2, 2.0));
        assert!(!topk.push(3, 1.0), "equal distance does not evict");
        assert!(topk.push(4, 0.5));
        let got = topk.into_sorted_vec();
        assert_eq!(got[0].id, 4);
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut a = TopK::new(3);
        let mut b = TopK::new(3);
        for (i, d) in [(1u64, 9.0f32), (2, 2.0), (3, 7.0)] {
            a.push(i, d);
        }
        for (i, d) in [(4u64, 1.0f32), (5, 8.0), (6, 3.0)] {
            b.push(i, d);
        }
        a.merge(b);
        let ids: Vec<u64> = a.into_sorted_vec().into_iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![4, 2, 6]);
    }

    #[test]
    fn would_accept_agrees_with_push_when_strict() {
        let mut topk = TopK::new(2);
        assert!(
            topk.would_accept(f32::INFINITY),
            "not full: accept anything"
        );
        topk.push(1, 1.0);
        topk.push(2, 3.0);
        assert!(topk.would_accept(2.0));
        assert!(!topk.would_accept(4.0));
        // Equal distance: conservative `true`; push decides by id tie-break.
        assert!(topk.would_accept(3.0));
        assert!(topk.push(0, 3.0), "smaller id wins the tie");
        assert!(!topk.push(9, 3.0), "larger id loses the tie");
        assert!(!topk.would_accept(f32::NAN), "NaN never beats a full heap");
    }

    #[test]
    fn nan_distances_sort_last() {
        let got = select_topk(3, vec![(1, f32::NAN), (2, 1.0), (3, 2.0)]);
        let ids: Vec<u64> = got.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![2, 3, 1]);
    }

    #[test]
    fn ties_break_by_id_deterministically() {
        let got = select_topk(2, vec![(9, 1.0), (3, 1.0), (5, 1.0)]);
        let ids: Vec<u64> = got.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![3, 5]);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        TopK::new(0);
    }

    #[test]
    fn extend_accepts_neighbors() {
        let mut topk = TopK::new(2);
        topk.extend(vec![Neighbor::new(1, 2.0), Neighbor::new(2, 1.0)]);
        assert_eq!(topk.len(), 2);
    }
}
