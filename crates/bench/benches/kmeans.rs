//! K-means training and assignment — the full indexer's classification
//! step (Section 2.2) and the per-insert cell assignment of the real-time
//! path (Figure 8).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use jdvs_vector::kmeans::{Kmeans, KmeansConfig};
use jdvs_vector::rng::Xoshiro256;
use jdvs_vector::Vector;

fn random_data(n: usize, dim: usize, seed: u64) -> Vec<Vector> {
    let mut rng = Xoshiro256::seed_from(seed);
    (0..n)
        .map(|_| (0..dim).map(|_| rng.next_gaussian() as f32).collect())
        .collect()
}

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans");
    group.sample_size(10);
    for k in [16usize, 64] {
        let data = random_data(2_000, 32, 7);
        group.bench_with_input(BenchmarkId::new("train_2000x32d", k), &k, |b, &k| {
            b.iter(|| {
                Kmeans::train(
                    black_box(&data),
                    &KmeansConfig {
                        k,
                        max_iters: 10,
                        ..Default::default()
                    },
                )
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("kmeans_assign");
    let data = random_data(5_000, 64, 9);
    let model = Kmeans::train(
        &data,
        &KmeansConfig {
            k: 128,
            max_iters: 10,
            ..Default::default()
        },
    );
    let query = random_data(1, 64, 11).remove(0);
    group.bench_function("assign_128x64d", |b| {
        b.iter(|| model.assign(black_box(query.as_slice())))
    });
    group.bench_function("assign_multi_8_of_128", |b| {
        b.iter(|| model.assign_multi(black_box(query.as_slice()), 8))
    });
    group.finish();
}

criterion_group!(benches, bench_kmeans);
criterion_main!(benches);
