//! Cross-crate integration: full pipeline correctness.
//!
//! These tests exercise catalog → extraction → full index build → search
//! across every crate, checking ANN results against brute-force ground
//! truth and the full/real-time index builds against each other.

use std::sync::Arc;
use std::time::Duration;

use jdvs::core::full::FullIndexBuilder;
use jdvs::core::realtime::RealtimeIndexer;
use jdvs::core::search::recall;
use jdvs::core::IndexConfig;
use jdvs::features::cost::CostModel;
use jdvs::features::{CachingExtractor, ExtractorConfig, FeatureExtractor};
use jdvs::storage::{FeatureDb, ImageKey, ImageStore, MessageQueue, ProductEvent};
use jdvs::workload::catalog::{Catalog, CatalogConfig};

const DIM: usize = 16;

struct Pipeline {
    images: Arc<ImageStore>,
    feature_db: Arc<FeatureDb>,
    extractor: Arc<CachingExtractor>,
    catalog: Catalog,
}

fn pipeline(products: usize, seed: u64) -> Pipeline {
    let images = Arc::new(ImageStore::with_blob_len(64));
    let feature_db = Arc::new(FeatureDb::new());
    let extractor = Arc::new(CachingExtractor::new(
        FeatureExtractor::new(ExtractorConfig {
            dim: DIM,
            ..Default::default()
        }),
        CostModel::free(),
    ));
    let catalog = Catalog::generate(&CatalogConfig {
        num_products: products,
        num_clusters: 10,
        seed,
        ..Default::default()
    });
    catalog.materialize(&images);
    Pipeline {
        images,
        feature_db,
        extractor,
        catalog,
    }
}

fn index_config() -> IndexConfig {
    IndexConfig {
        dim: DIM,
        num_lists: 8,
        nprobe: 8,
        initial_list_capacity: 8,
        ..Default::default()
    }
}

#[test]
fn full_index_build_then_ann_matches_brute_force() {
    let p = pipeline(150, 1);
    let builder = FullIndexBuilder::new(
        index_config(),
        Arc::clone(&p.extractor),
        Arc::clone(&p.images),
        Arc::clone(&p.feature_db),
    );
    let log = p.catalog.bootstrap_events();
    let (index, report) = builder.build(&log);
    assert_eq!(report.images_indexed as usize, p.catalog.num_images());

    // Full-probe ANN must equal brute force for 20 random stored images.
    for product in p.catalog.products().iter().take(20) {
        let key = ImageKey::from_url(&product.urls[0]);
        let id = index.lookup(key).expect("indexed");
        let feats = index.features(id).unwrap();
        let ann = index.search(feats.as_slice(), 10, 8);
        let exact = index.brute_force_search(feats.as_slice(), 10);
        assert_eq!(recall(&ann, &exact), 1.0, "full probe must be exact");
        assert_eq!(ann[0].id, id.as_u64(), "self-match first");
    }
}

#[test]
fn realtime_index_converges_to_full_index_state() {
    // Apply the same day of events through (a) the full indexer's replay
    // and (b) the real-time indexer event by event; final searchable sets
    // must agree.
    let p = pipeline(80, 2);
    let mut log = p.catalog.bootstrap_events();
    // Delist every 5th product, update every 7th.
    for (i, product) in p.catalog.products().iter().enumerate() {
        if i % 5 == 0 {
            log.push(product.remove_event());
        }
        if i % 7 == 0 {
            log.push(ProductEvent::UpdateAttributes {
                product_id: product.id,
                urls: product.urls.clone(),
                sales: Some(123_456),
                price: None,
                praise: None,
            });
        }
    }

    // (a) full build.
    let builder = FullIndexBuilder::new(
        index_config(),
        Arc::clone(&p.extractor),
        Arc::clone(&p.images),
        Arc::clone(&p.feature_db),
    );
    let (full_index, _) = builder.build(&log);

    // (b) real-time replay into an index bootstrapped with the same
    // quantizer (as production distributes the weekly centroids).
    let rt_index = Arc::new(jdvs::core::VisualIndex::with_quantizer(
        index_config(),
        full_index.quantizer().clone(),
    ));
    let indexer = RealtimeIndexer::for_index(
        Arc::clone(&rt_index),
        Arc::clone(&p.extractor),
        Arc::clone(&p.images),
        Arc::clone(&p.feature_db),
    );
    for event in &log {
        indexer.apply(event);
    }
    rt_index.flush();

    assert_eq!(full_index.valid_images(), rt_index.valid_images());
    // Every valid image of the full index is valid in the RT index with
    // identical attributes.
    for product in p.catalog.products() {
        for url in &product.urls {
            let key = ImageKey::from_url(url);
            let full_id = full_index.lookup(key);
            let rt_id = rt_index.lookup(key);
            match (full_id, rt_id) {
                (Some(f), Some(r)) => {
                    assert_eq!(
                        full_index.is_valid(f),
                        rt_index.is_valid(r),
                        "validity for {url}"
                    );
                    if full_index.is_valid(f) {
                        assert_eq!(
                            full_index.attributes(f).unwrap(),
                            rt_index.attributes(r).unwrap(),
                            "attributes for {url}"
                        );
                    }
                }
                (None, Some(r)) => {
                    // Full index drops images invalid at end of day; the RT
                    // index keeps the record but it must be invalid.
                    assert!(!rt_index.is_valid(r), "{url} must be invalid in RT index");
                }
                (f, r) => panic!("lookup disagreement for {url}: {f:?} vs {r:?}"),
            }
        }
    }
}

#[test]
fn searches_agree_between_full_and_realtime_indexes() {
    let p = pipeline(100, 3);
    let log = p.catalog.bootstrap_events();
    let builder = FullIndexBuilder::new(
        index_config(),
        Arc::clone(&p.extractor),
        Arc::clone(&p.images),
        Arc::clone(&p.feature_db),
    );
    let (full_index, _) = builder.build(&log);
    let rt_index = Arc::new(jdvs::core::VisualIndex::with_quantizer(
        index_config(),
        full_index.quantizer().clone(),
    ));
    let indexer = RealtimeIndexer::for_index(
        Arc::clone(&rt_index),
        Arc::clone(&p.extractor),
        Arc::clone(&p.images),
        Arc::clone(&p.feature_db),
    );
    for event in &log {
        indexer.apply(event);
    }
    rt_index.flush();

    for product in p.catalog.products().iter().take(15) {
        let key = ImageKey::from_url(&product.urls[0]);
        let feats = p.feature_db.features(key).unwrap();
        let a = full_index.search(feats.as_slice(), 5, 8);
        let b = rt_index.search(feats.as_slice(), 5, 8);
        // Image ids may differ between the two indexes (insertion order),
        // so compare by URL.
        let urls_a: Vec<String> = a
            .iter()
            .map(|n| {
                full_index
                    .attributes(jdvs::core::ids::ImageId(n.id as u32))
                    .unwrap()
                    .url
            })
            .collect();
        let urls_b: Vec<String> = b
            .iter()
            .map(|n| {
                rt_index
                    .attributes(jdvs::core::ids::ImageId(n.id as u32))
                    .unwrap()
                    .url
            })
            .collect();
        assert_eq!(urls_a, urls_b, "query on {:?}", product.urls[0]);
    }
}

#[test]
fn feature_extraction_happens_exactly_once_per_image() {
    let p = pipeline(60, 4);
    let log = p.catalog.bootstrap_events();
    let builder = FullIndexBuilder::new(
        index_config(),
        Arc::clone(&p.extractor),
        Arc::clone(&p.images),
        Arc::clone(&p.feature_db),
    );
    let (_, r1) = builder.build(&log);
    assert_eq!(r1.extractions as usize, p.catalog.num_images());
    // A second build and a full real-time replay extract nothing.
    let (full2, r2) = builder.build(&log);
    assert_eq!(r2.extractions, 0);
    let rt_index = Arc::new(jdvs::core::VisualIndex::with_quantizer(
        index_config(),
        full2.quantizer().clone(),
    ));
    let indexer = RealtimeIndexer::for_index(
        rt_index,
        Arc::clone(&p.extractor),
        Arc::clone(&p.images),
        Arc::clone(&p.feature_db),
    );
    let misses_before = p.extractor.misses();
    for event in &log {
        indexer.apply(event);
    }
    assert_eq!(
        p.extractor.misses(),
        misses_before,
        "replay reuses every feature"
    );
}

#[test]
fn realtime_indexer_applies_from_live_queue() {
    let p = pipeline(40, 5);
    let queue: MessageQueue<ProductEvent> = MessageQueue::new();
    // Train on the catalog's extracted features.
    let mut training = Vec::new();
    for product in p.catalog.products() {
        for attrs in product.image_attributes() {
            let (f, _) = p.extractor.features_for(&attrs, &p.images, &p.feature_db);
            training.push(f.unwrap());
        }
    }
    let index = Arc::new(jdvs::core::VisualIndex::bootstrap(
        index_config(),
        &training,
    ));
    let indexer = RealtimeIndexer::for_index(
        Arc::clone(&index),
        Arc::clone(&p.extractor),
        Arc::clone(&p.images),
        Arc::clone(&p.feature_db),
    );
    let mut consumer = queue.consumer();
    for e in p.catalog.bootstrap_events() {
        queue.publish(e);
    }
    let stop = std::sync::atomic::AtomicBool::new(true); // drain mode
    let report = indexer.run(&mut consumer, &stop, Duration::from_millis(1));
    assert_eq!(report.inserted as usize, p.catalog.num_images());
    assert_eq!(index.valid_images(), p.catalog.num_images());
}
