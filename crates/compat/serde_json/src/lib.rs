//! Offline shim for the `serde_json` surface jdvs uses: the `Value` tree,
//! `Map`, `Number`, the `json!` macro, and pretty printing. There is no
//! generic serde integration — values are built explicitly (via `json!` or
//! `Value` constructors), which is all the workspace needs.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

/// JSON number. Stored as `f64`; integers up to 2^53 round-trip exactly,
/// which covers every counter jdvs reports.
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct Number(f64);

impl Number {
    pub fn from_f64(v: f64) -> Option<Number> {
        v.is_finite().then_some(Number(v))
    }

    pub fn as_f64(&self) -> Option<f64> {
        Some(self.0)
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.fract() == 0.0 && self.0.abs() < 9.0e15 {
            write!(f, "{}", self.0 as i64)
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// Key-ordered JSON object (real serde_json also offers a sorted map).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map(BTreeMap<String, Value>);

impl Map {
    pub fn new() -> Self {
        Self(BTreeMap::new())
    }

    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        self.0.insert(key, value)
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.0.get(key)
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.0.iter()
    }
}

#[derive(Clone, Debug, Default, PartialEq)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

// --- conversions used by `json!` ------------------------------------------

/// Converts a Rust value into a `Value` by reference. Stands in for serde's
/// `Serialize` in the `json!` macro.
pub trait ToJson {
    fn to_json(&self) -> Value;
}

pub fn to_value<T: ToJson + ?Sized>(v: &T) -> Value {
    v.to_json()
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

macro_rules! impl_to_json_num {
    ($($ty:ty),*) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Value {
                Value::Number(Number(*self as f64))
            }
        }
    )*};
}

impl_to_json_num!(f32, f64, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

/// Builds a `Value` from literal-ish syntax: objects with expression values,
/// arrays, and bare expressions (anything implementing [`ToJson`]).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $value:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert(($key).to_string(), $crate::to_value(&($value))); )*
        $crate::Value::Object(map)
    }};
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&($value)) ),* ])
    };
    ($value:expr) => { $crate::to_value(&($value)) };
}

// --- output ----------------------------------------------------------------

/// Error type for signature compatibility; this shim's serializer is total.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json shim error")
    }
}

impl std::error::Error for Error {}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: usize, pretty: bool) {
    let pad = if pretty { "  ".repeat(indent + 1) } else { String::new() };
    let close_pad = if pretty { "  ".repeat(indent) } else { String::new() };
    let nl = if pretty { "\n" } else { "" };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => {
            out.push('"');
            escape_into(out, s);
            out.push('"');
        }
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            out.push_str(nl);
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                write_value(out, item, indent + 1, pretty);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push_str(nl);
            }
            out.push_str(&close_pad);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            out.push_str(nl);
            let len = map.len();
            for (i, (k, val)) in map.iter().enumerate() {
                out.push_str(&pad);
                out.push('"');
                escape_into(out, k);
                out.push_str("\": ");
                write_value(out, val, indent + 1, pretty);
                if i + 1 < len {
                    out.push(',');
                }
                out.push_str(nl);
            }
            out.push_str(&close_pad);
            out.push('}');
        }
    }
}

/// Pretty-prints a `Value` with two-space indentation.
///
/// # Errors
///
/// Never fails; the `Result` mirrors serde_json's signature.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, 0, true);
    Ok(out)
}

/// Compact form.
///
/// # Errors
///
/// Never fails; the `Result` mirrors serde_json's signature.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, 0, false);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_objects() {
        let id = "t3".to_string();
        let notes = vec!["a".to_string(), "b".to_string()];
        let v = json!({ "id": id, "n": 5.0, "notes": notes, "none": json!(null) });
        assert_eq!(v["id"], json!("t3"));
        assert_eq!(v["n"], json!(5.0));
        assert_eq!(v["notes"][1], json!("b"));
        assert!(v["none"].is_null());
        assert!(v["missing"].is_null());
    }

    #[test]
    fn pretty_output_has_key_colon_space() {
        let v = json!({ "id": "t3" });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"id\": \"t3\""), "{s}");
    }

    #[test]
    fn numbers_render_integers_cleanly() {
        assert_eq!(to_string(&json!(5.0)).unwrap(), "5");
        assert_eq!(to_string(&json!(5.5)).unwrap(), "5.5");
        assert!(Number::from_f64(f64::NAN).is_none());
    }

    #[test]
    fn escapes_strings() {
        let s = to_string(&json!("a\"b\\c\nd")).unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }
}
