//! Ordered, offset-addressed, multi-consumer message log.
//!
//! The paper's two indexing paths share one message source:
//!
//! - **Full indexing** buffers *"all product update messages of a day"* and
//!   replays them in order at the end of the day (Section 2.2) — that is a
//!   bounded range read.
//! - **Real-time indexing** receives messages *"from a message queue and
//!   processed instantly"* (Section 2.3) — that is tail-following, one
//!   cursor per searcher.
//!
//! [`MessageQueue`] provides both over one append-only log: publishers
//! append, each [`Consumer`] owns an independent offset cursor, and range
//! reads (`read_range`) serve replay. Blocking polls park on a condvar so
//! tail-followers wake within microseconds of a publish — the foundation of
//! the sub-second freshness the paper measures.
//!
//! Two extensions support the durable ingestion log built on top (the
//! `jdvs-durability` crate):
//!
//! - a **base offset** ([`MessageQueue::with_base`]): a queue recovered
//!   from a pruned on-disk log keeps the original absolute offsets, so
//!   checkpoint watermarks recorded before a restart stay meaningful;
//! - a **publish tee** ([`MessageQueue::set_tee`]): a hook invoked for
//!   every published message *in offset order*, under the publish lock —
//!   exactly the ordering guarantee an append-only write-ahead log needs;
//! - an **after-publish hook** ([`MessageQueue::set_after_publish`]): a
//!   hook invoked once per publish call *after* the publish lock is
//!   released, with the offset of the last message published. Because it
//!   runs outside the lock, it may block (e.g. waiting for a group
//!   `fdatasync`) without serializing other publishers.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex, RwLock};

/// Position of a message in the log (0-based, dense).
pub type Offset = u64;

/// The publish tee: observes `(offset, message)` in strict offset order.
type Tee<T> = Box<dyn Fn(Offset, &T) + Send + Sync>;

/// The after-publish hook: observes the last offset of each publish call,
/// outside the publish lock.
type AfterPublish = Box<dyn Fn(Offset) + Send + Sync>;

struct Inner<T> {
    log: Mutex<Vec<T>>,
    not_empty: Condvar,
    /// Offset of the first retained message (0 for a fresh queue; the
    /// checkpoint watermark for a queue recovered from a pruned log).
    base: Offset,
    /// Durable tee, called under the `log` lock so durable order always
    /// equals offset order. Locked *after* `log` — never the other way.
    tee: Mutex<Option<Tee<T>>>,
    /// After-publish hook, called with the publish lock *released*. An
    /// RwLock so concurrent publishers can run (and block in) the hook
    /// simultaneously; installation takes the write lock.
    after_publish: RwLock<Option<AfterPublish>>,
}

impl<T> std::fmt::Debug for Inner<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("base", &self.base)
            .field("len", &self.log.lock().len())
            .field("tee", &self.tee.lock().is_some())
            .finish()
    }
}

/// An in-process, ordered, multi-consumer message log.
///
/// Cloning the queue is cheap (it is an `Arc` handle); all clones publish
/// to and read from the same log.
///
/// # Example
///
/// ```
/// use jdvs_storage::MessageQueue;
///
/// let q = MessageQueue::new();
/// q.publish(1u32);
/// q.publish(2);
/// assert_eq!(q.read_range(0, 10), vec![1, 2]);
/// let mut c = q.consumer();
/// assert_eq!(c.poll_now(), Some(1));
/// ```
#[derive(Debug)]
pub struct MessageQueue<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for MessageQueue<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Clone> Default for MessageQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> MessageQueue<T> {
    /// Creates an empty queue starting at offset 0.
    pub fn new() -> Self {
        Self::with_base(0)
    }

    /// Creates an empty queue whose first message will take offset `base`.
    ///
    /// Recovery uses this: when the durable log has been pruned up to a
    /// checkpoint watermark, the replayed queue keeps absolute offsets, so
    /// consumers seeked to pre-restart watermarks resume correctly.
    pub fn with_base(base: Offset) -> Self {
        Self {
            inner: Arc::new(Inner {
                log: Mutex::new(Vec::new()),
                not_empty: Condvar::new(),
                base,
                tee: Mutex::new(None),
                after_publish: RwLock::new(None),
            }),
        }
    }

    /// Offset of the first retained message (0 unless recovered from a
    /// pruned log).
    pub fn base(&self) -> Offset {
        self.inner.base
    }

    /// Installs the publish tee, replacing any previous one. The tee runs
    /// under the publish lock and observes every message in offset order;
    /// keep it fast (an `fsync`-per-message tee serializes publishers).
    pub fn set_tee(&self, tee: impl Fn(Offset, &T) + Send + Sync + 'static) {
        *self.inner.tee.lock() = Some(Box::new(tee));
    }

    /// Removes the publish tee.
    pub fn clear_tee(&self) {
        *self.inner.tee.lock() = None;
    }

    /// Installs the after-publish hook, replacing any previous one. The
    /// hook runs once per `publish`/`publish_batch` call, *after* the
    /// publish lock is released, with the offset of the last message that
    /// call published. It may block (group commit waits here) without
    /// holding up other publishers — they run the hook concurrently.
    pub fn set_after_publish(&self, hook: impl Fn(Offset) + Send + Sync + 'static) {
        *self.inner.after_publish.write() = Some(Box::new(hook));
    }

    /// Removes the after-publish hook.
    pub fn clear_after_publish(&self) {
        *self.inner.after_publish.write() = None;
    }

    /// Runs the after-publish hook (if any) for `last` — the final offset
    /// of a publish call that has already released the log lock.
    fn after_publish(&self, last: Offset) {
        if let Some(hook) = self.inner.after_publish.read().as_ref() {
            hook(last);
        }
    }

    /// Appends a message, returning its offset.
    pub fn publish(&self, msg: T) -> Offset {
        let mut log = self.inner.log.lock();
        let off = self.inner.base + log.len() as Offset;
        if let Some(tee) = self.inner.tee.lock().as_ref() {
            tee(off, &msg);
        }
        log.push(msg);
        drop(log);
        self.inner.not_empty.notify_all();
        self.after_publish(off);
        off
    }

    /// Appends a batch, returning the offset of the first message.
    pub fn publish_batch(&self, msgs: impl IntoIterator<Item = T>) -> Offset {
        let mut log = self.inner.log.lock();
        let first = self.inner.base + log.len() as Offset;
        let tee = self.inner.tee.lock();
        let mut published = 0u64;
        for msg in msgs {
            if let Some(tee) = tee.as_ref() {
                tee(self.inner.base + log.len() as Offset, &msg);
            }
            log.push(msg);
            published += 1;
        }
        drop(tee);
        drop(log);
        self.inner.not_empty.notify_all();
        if published > 0 {
            self.after_publish(first + published - 1);
        }
        first
    }

    /// Number of messages ever published (the next offset to be assigned).
    /// Includes messages below the base that were pruned before recovery.
    pub fn len(&self) -> u64 {
        self.inner.base + self.inner.log.lock().len() as u64
    }

    /// Returns `true` if no message is retained.
    pub fn is_empty(&self) -> bool {
        self.inner.log.lock().is_empty()
    }

    /// Copies up to `max` messages starting at absolute offset `from`
    /// (bounded replay; the full indexer's read path). Returns fewer than
    /// `max` at the tail; offsets below the base yield the retained suffix.
    pub fn read_range(&self, from: Offset, max: usize) -> Vec<T> {
        let log = self.inner.log.lock();
        let start = (from.saturating_sub(self.inner.base) as usize).min(log.len());
        let end = start.saturating_add(max).min(log.len());
        log[start..end].to_vec()
    }

    /// Creates a tail-following consumer starting at the first retained
    /// message.
    pub fn consumer(&self) -> Consumer<T> {
        self.consumer_at(self.inner.base)
    }

    /// Creates a consumer starting at absolute `offset` (clamped up to the
    /// base if the requested offset was pruned).
    pub fn consumer_at(&self, offset: Offset) -> Consumer<T> {
        Consumer {
            queue: self.clone(),
            cursor: offset.max(self.inner.base),
        }
    }
}

/// An independent read cursor over a [`MessageQueue`].
///
/// Consumers never contend with each other: each tracks only its own offset,
/// so any number of searchers can follow the same log (the paper attaches
/// every searcher to the queue for real-time indexing).
#[derive(Debug)]
pub struct Consumer<T> {
    queue: MessageQueue<T>,
    cursor: Offset,
}

impl<T: Clone> Consumer<T> {
    /// Current cursor position (absolute offset of the next message to
    /// read).
    pub fn position(&self) -> Offset {
        self.cursor
    }

    /// How many published messages this consumer has not yet read.
    pub fn lag(&self) -> u64 {
        self.queue.len().saturating_sub(self.cursor)
    }

    fn index(&self) -> usize {
        self.cursor.saturating_sub(self.queue.inner.base) as usize
    }

    /// Non-blocking poll: returns the next message if one is available.
    pub fn poll_now(&mut self) -> Option<T> {
        let log = self.queue.inner.log.lock();
        let msg = log.get(self.index()).cloned();
        drop(log);
        if msg.is_some() {
            self.cursor += 1;
        }
        msg
    }

    /// Blocking poll: waits up to `timeout` for the next message.
    pub fn poll(&mut self, timeout: Duration) -> Option<T> {
        let mut log = self.queue.inner.log.lock();
        if self.index() >= log.len() {
            self.queue.inner.not_empty.wait_for(&mut log, timeout);
        }
        let msg = log.get(self.index()).cloned();
        drop(log);
        if msg.is_some() {
            self.cursor += 1;
        }
        msg
    }

    /// Non-blocking batch poll: drains up to `max` available messages.
    pub fn poll_batch(&mut self, max: usize) -> Vec<T> {
        let log = self.queue.inner.log.lock();
        let start = self.index().min(log.len());
        let end = start.saturating_add(max).min(log.len());
        let out = log[start..end].to_vec();
        drop(log);
        self.cursor = self.queue.inner.base + end as Offset;
        out
    }

    /// Moves the cursor to an absolute offset (replay / skip-ahead),
    /// clamped up to the queue's base.
    pub fn seek(&mut self, offset: Offset) {
        self.cursor = offset.max(self.queue.inner.base);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn publish_assigns_dense_offsets() {
        let q = MessageQueue::new();
        assert_eq!(q.publish("a"), 0);
        assert_eq!(q.publish("b"), 1);
        assert_eq!(q.publish_batch(["c", "d"]), 2);
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn after_publish_hook_runs_outside_the_lock_with_last_offset() {
        let q = Arc::new(MessageQueue::new());
        let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let hook_q = Arc::clone(&q);
        let hook_seen = Arc::clone(&seen);
        q.set_after_publish(move |last| {
            // len() takes the publish lock: if the hook ran under it this
            // would deadlock, so completing at all proves it runs outside.
            hook_seen.lock().push((last, hook_q.len()));
        });
        assert_eq!(q.publish("a"), 0);
        assert_eq!(q.publish_batch(["b", "c", "d"]), 1);
        q.publish_batch(Vec::<&str>::new()); // empty batch: no hook call
        assert_eq!(*seen.lock(), vec![(0, 1), (3, 4)]);
        q.clear_after_publish();
        q.publish("e");
        assert_eq!(seen.lock().len(), 2, "cleared hook no longer fires");
    }

    #[test]
    fn read_range_clamps_to_tail() {
        let q = MessageQueue::new();
        q.publish_batch(0..5u32);
        assert_eq!(q.read_range(3, 100), vec![3, 4]);
        assert_eq!(q.read_range(10, 5), Vec::<u32>::new());
        assert_eq!(q.read_range(0, 2), vec![0, 1]);
    }

    #[test]
    fn consumer_reads_in_order() {
        let q = MessageQueue::new();
        q.publish_batch(0..10u32);
        let mut c = q.consumer();
        let got: Vec<u32> = std::iter::from_fn(|| c.poll_now()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(c.lag(), 0);
    }

    #[test]
    fn consumers_are_independent() {
        let q = MessageQueue::new();
        q.publish_batch(0..4u32);
        let mut a = q.consumer();
        let mut b = q.consumer();
        assert_eq!(a.poll_now(), Some(0));
        assert_eq!(a.poll_now(), Some(1));
        assert_eq!(b.poll_now(), Some(0), "b has its own cursor");
    }

    #[test]
    fn poll_batch_drains_up_to_max() {
        let q = MessageQueue::new();
        q.publish_batch(0..10u32);
        let mut c = q.consumer();
        assert_eq!(c.poll_batch(3), vec![0, 1, 2]);
        assert_eq!(c.poll_batch(100), (3..10).collect::<Vec<_>>());
        assert!(c.poll_batch(5).is_empty());
    }

    #[test]
    fn seek_supports_replay() {
        let q = MessageQueue::new();
        q.publish_batch(0..5u32);
        let mut c = q.consumer();
        c.poll_batch(5);
        c.seek(2);
        assert_eq!(c.poll_now(), Some(2));
    }

    #[test]
    fn blocking_poll_times_out_when_empty() {
        let q: MessageQueue<u32> = MessageQueue::new();
        let mut c = q.consumer();
        let start = std::time::Instant::now();
        assert_eq!(c.poll(Duration::from_millis(20)), None);
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn blocking_poll_wakes_on_publish() {
        let q = MessageQueue::new();
        let mut c = q.consumer();
        let q2 = q.clone();
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            q2.publish(99u32);
        });
        let got = c.poll(Duration::from_secs(5));
        t.join().unwrap();
        assert_eq!(got, Some(99));
    }

    #[test]
    fn lag_tracks_unread_messages() {
        let q = MessageQueue::new();
        let mut c = q.consumer();
        assert_eq!(c.lag(), 0);
        q.publish_batch(0..7u32);
        assert_eq!(c.lag(), 7);
        c.poll_batch(3);
        assert_eq!(c.lag(), 4);
        assert_eq!(c.position(), 3);
    }

    #[test]
    fn concurrent_publishers_preserve_all_messages() {
        let q = MessageQueue::new();
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let q = q.clone();
                thread::spawn(move || {
                    for i in 0..1_000u64 {
                        q.publish(t * 1_000 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(q.len(), 4_000);
        let mut all = q.read_range(0, 4_000);
        all.sort_unstable();
        assert_eq!(all, (0..4_000).collect::<Vec<_>>());
    }

    #[test]
    fn tail_follower_sees_all_messages_from_concurrent_publisher() {
        let q = MessageQueue::new();
        let mut c = q.consumer();
        let q2 = q.clone();
        let publisher = thread::spawn(move || {
            for i in 0..500u32 {
                q2.publish(i);
            }
        });
        let mut got = Vec::new();
        while got.len() < 500 {
            if let Some(m) = c.poll(Duration::from_secs(5)) {
                got.push(m);
            }
        }
        publisher.join().unwrap();
        assert_eq!(got, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn based_queue_keeps_absolute_offsets() {
        let q = MessageQueue::with_base(100);
        assert_eq!(q.base(), 100);
        assert_eq!(q.len(), 100, "pruned prefix counts toward len");
        assert_eq!(q.publish("a"), 100);
        assert_eq!(q.publish("b"), 101);
        assert_eq!(q.len(), 102);
        // Range reads clamp to the retained suffix.
        assert_eq!(q.read_range(0, 10), vec!["a", "b"]);
        assert_eq!(q.read_range(101, 10), vec!["b"]);
        // Consumers start at the base and report absolute positions.
        let mut c = q.consumer();
        assert_eq!(c.position(), 100);
        assert_eq!(c.poll_now(), Some("a"));
        assert_eq!(c.position(), 101);
        // Seeking below the base clamps (those messages are gone).
        c.seek(0);
        assert_eq!(c.position(), 100);
        // consumer_at a pre-prune watermark also clamps.
        let mut old = q.consumer_at(40);
        assert_eq!(old.poll_now(), Some("a"));
    }

    #[test]
    fn tee_observes_every_publish_in_offset_order() {
        use std::sync::Mutex as StdMutex;
        let q = MessageQueue::new();
        let seen: Arc<StdMutex<Vec<(Offset, u32)>>> = Arc::new(StdMutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        q.set_tee(move |off, msg: &u32| sink.lock().unwrap().push((off, *msg)));
        q.publish(10);
        q.publish_batch([11, 12]);
        q.publish(13);
        let got = seen.lock().unwrap().clone();
        assert_eq!(got, vec![(0, 10), (1, 11), (2, 12), (3, 13)]);
        // Clearing the tee stops observation.
        q.clear_tee();
        q.publish(14);
        assert_eq!(seen.lock().unwrap().len(), 4);
    }

    #[test]
    fn tee_order_matches_offsets_under_concurrency() {
        use std::sync::Mutex as StdMutex;
        let q = MessageQueue::new();
        let seen: Arc<StdMutex<Vec<Offset>>> = Arc::new(StdMutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        q.set_tee(move |off, _msg: &u64| sink.lock().unwrap().push(off));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let q = q.clone();
                thread::spawn(move || {
                    for i in 0..500u64 {
                        q.publish(t * 500 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let got = seen.lock().unwrap().clone();
        assert_eq!(got, (0..2_000).collect::<Vec<_>>(), "tee sees offset order");
    }
}
