//! Cross-crate integration: the weekly full-index cycle (Figure 2) and
//! index-snapshot persistence, exercised through the whole stack.

use std::sync::Arc;
use std::time::Duration;

use jdvs::core::persist;
use jdvs::search::SearchQuery;
use jdvs::storage::{ImageKey, ProductEvent, ProductId};
use jdvs::workload::catalog::CatalogConfig;
use jdvs::workload::events::{DailyPlan, DailyPlanConfig};
use jdvs::workload::queries::QueryGenerator;
use jdvs::workload::scenario::{World, WorldConfig};

fn world(products: usize) -> World {
    World::build(WorldConfig {
        catalog: CatalogConfig {
            num_products: products,
            num_clusters: 10,
            ..Default::default()
        },
        ..WorldConfig::fast_test()
    })
}

#[test]
fn online_rebuild_preserves_search_results_for_live_products() {
    let w = world(150);
    let client = w.client(Duration::from_secs(5));
    // Record pre-rebuild top-1 for 10 exact-image queries.
    let queries: Vec<String> = w
        .catalog()
        .products()
        .iter()
        .take(10)
        .map(|p| p.urls[0].clone())
        .collect();
    let before: Vec<ProductId> = queries
        .iter()
        .map(|u| {
            client
                .search(SearchQuery::by_image_url(u.clone(), 1))
                .unwrap()
                .results[0]
                .hit
                .product_id
        })
        .collect();

    for p in 0..w.topology().partition_map().num_partitions() {
        let report = w.topology().rebuild_partition(p);
        assert_eq!(report.partition, p);
        assert!(
            report.messages_replayed > 0,
            "the bootstrap log must be replayed"
        );
    }

    let after: Vec<ProductId> = queries
        .iter()
        .map(|u| {
            client
                .search(SearchQuery::by_image_url(u.clone(), 1))
                .unwrap()
                .results[0]
                .hit
                .product_id
        })
        .collect();
    assert_eq!(
        before, after,
        "rebuild must not change results for live products"
    );
}

#[test]
fn rebuild_reclaims_deleted_records_and_realtime_continues() {
    let w = world(100);
    // Delete a third of the catalog.
    let victims: Vec<_> = w.catalog().products().iter().step_by(3).cloned().collect();
    for v in &victims {
        w.topology().publish(v.remove_event());
    }
    w.topology().wait_for_freshness(Duration::from_secs(60));

    let records_before: usize = w
        .topology()
        .indexes()
        .iter()
        .map(|row| row[0].num_images())
        .sum();
    let valid_before: usize = w
        .topology()
        .indexes()
        .iter()
        .map(|row| row[0].valid_images())
        .sum();
    assert!(
        records_before > valid_before,
        "logical deletions must be pending"
    );

    for p in 0..w.topology().partition_map().num_partitions() {
        w.topology().rebuild_partition(p);
    }

    let records_after: usize = w
        .topology()
        .indexes()
        .iter()
        .map(|row| row[0].num_images())
        .sum();
    let valid_after: usize = w
        .topology()
        .indexes()
        .iter()
        .map(|row| row[0].valid_images())
        .sum();
    assert_eq!(valid_after, valid_before, "valid set unchanged");
    assert_eq!(records_after, valid_after, "all dead records reclaimed");

    // Real-time path still live: re-list a victim, then find it.
    let victim = &victims[0];
    w.topology().publish(victim.add_event());
    w.topology().wait_for_freshness(Duration::from_secs(60));
    let client = w.client(Duration::from_secs(5));
    let resp = client
        .search(SearchQuery::by_image_url(victim.urls[0].clone(), 1))
        .unwrap();
    assert_eq!(resp.results[0].hit.product_id, victim.id);
}

#[test]
fn rebuild_under_concurrent_queries_never_errors() {
    let w = Arc::new(world(120));
    let client = w.client(Duration::from_secs(10));
    let generator = QueryGenerator::new(w.catalog(), 3);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let w2 = Arc::clone(&w);
    let stop2 = Arc::clone(&stop);
    let querier = std::thread::spawn(move || {
        let mut ok = 0u64;
        while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
            let (q, _) = generator.next_query(w2.images(), 3);
            let resp = client
                .search(q)
                .expect("queries must not error during rebuild");
            if !resp.results.is_empty() {
                ok += 1;
            }
        }
        ok
    });
    for p in 0..w.topology().partition_map().num_partitions() {
        w.topology().rebuild_partition(p);
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let ok = querier.join().unwrap();
    assert!(ok > 0, "queries must keep succeeding during the rebuild");
}

#[test]
fn rebuild_after_a_day_of_churn_converges_with_the_log() {
    let mut w = world(400);
    let store = Arc::clone(w.images());
    let plan = DailyPlan::generate(
        w.catalog_mut(),
        &store,
        &DailyPlanConfig {
            total_events: 800,
            seed: 9,
            ..Default::default()
        },
    );
    w.start_update_stream(plan.events().to_vec(), 0).join();
    w.topology().wait_for_freshness(Duration::from_secs(60));

    let valid_before: usize = w
        .topology()
        .indexes()
        .iter()
        .map(|row| row[0].valid_images())
        .sum();
    for p in 0..w.topology().partition_map().num_partitions() {
        w.topology().rebuild_partition(p);
    }
    let valid_after: usize = w
        .topology()
        .indexes()
        .iter()
        .map(|row| row[0].valid_images())
        .sum();
    assert_eq!(
        valid_before, valid_after,
        "log replay reproduces the live valid set"
    );
}

#[test]
fn snapshot_of_live_partition_round_trips_through_bytes() {
    let w = world(80);
    let index = w.topology().index(0, 0);
    let bytes = persist::save(&index);
    assert!(!bytes.is_empty());
    let restored = persist::load(&bytes).expect("round trip");
    assert_eq!(restored.num_images(), index.num_images());
    assert_eq!(restored.valid_images(), index.valid_images());
    // Same search behaviour on the restored copy.
    for product in w.catalog().products().iter().take(20) {
        let key = ImageKey::from_url(&product.urls[0]);
        if let Some(id) = index.lookup(key) {
            let feats = index.features(id).unwrap();
            assert_eq!(
                index.search(feats.as_slice(), 5, 8),
                restored.search(feats.as_slice(), 5, 8),
                "query for {}",
                product.urls[0]
            );
        }
    }
}

#[test]
fn generation_counter_tracks_rebuilds_per_partition() {
    let w = world(60);
    assert_eq!(w.topology().handle(0, 0).generation(), 0);
    w.topology().rebuild_partition(0);
    w.topology().rebuild_partition(0);
    assert_eq!(w.topology().handle(0, 0).generation(), 2);
    assert_eq!(w.topology().handle(1, 0).generation(), 0);
    let report = w.topology().ops_report();
    let gen0 = report
        .partitions
        .iter()
        .find(|p| p.partition == 0 && p.replica == 0)
        .unwrap()
        .generation;
    assert_eq!(gen0, 2);
}

#[test]
fn events_between_rebuilds_are_never_lost() {
    let w = world(60);
    // Interleave: event, rebuild, event, rebuild — both events must stick.
    let url_a = "late/a.jpg".to_string();
    let url_b = "late/b.jpg".to_string();
    w.images().put_synthetic(&url_a, 2);
    w.images().put_synthetic(&url_b, 3);
    w.topology().publish(ProductEvent::AddProduct {
        product_id: ProductId(900_001),
        images: vec![jdvs::storage::ProductAttributes::new(
            ProductId(900_001),
            1,
            1,
            1,
            url_a.clone(),
        )],
    });
    w.topology().wait_for_freshness(Duration::from_secs(60));
    for p in 0..2 {
        w.topology().rebuild_partition(p);
    }
    w.topology().publish(ProductEvent::AddProduct {
        product_id: ProductId(900_002),
        images: vec![jdvs::storage::ProductAttributes::new(
            ProductId(900_002),
            1,
            1,
            1,
            url_b.clone(),
        )],
    });
    w.topology().wait_for_freshness(Duration::from_secs(60));
    for p in 0..2 {
        w.topology().rebuild_partition(p);
    }
    let client = w.client(Duration::from_secs(5));
    for (url, pid) in [(url_a, 900_001), (url_b, 900_002)] {
        let resp = client
            .search(SearchQuery::by_image_url(url.clone(), 1))
            .unwrap();
        assert_eq!(
            resp.results[0].hit.product_id,
            ProductId(pid),
            "{url} must survive both rebuilds"
        );
    }
}
