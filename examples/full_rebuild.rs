//! Weekly full indexing, online — Figure 2 end to end.
//!
//! ```sh
//! cargo run --release --example full_rebuild
//! ```
//!
//! A week of churn leaves partition indexes full of logically-deleted
//! records (deletion is just a bitmap flip — Section 2.3). The weekly full
//! index rebuilds from the message log, *physically* dropping dead records,
//! and the fresh index is shipped (through the snapshot format) and
//! hot-swapped into every searcher replica while queries keep flowing.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use jdvs::search::SearchQuery;
use jdvs::workload::catalog::CatalogConfig;
use jdvs::workload::events::{DailyPlan, DailyPlanConfig};
use jdvs::workload::queries::QueryGenerator;
use jdvs::workload::scenario::{World, WorldConfig};

fn main() {
    println!("jdvs online full-rebuild demo\n");
    let mut world = World::build(WorldConfig {
        catalog: CatalogConfig {
            num_products: 2_000,
            num_clusters: 40,
            ..Default::default()
        },
        ..WorldConfig::fast_test()
    });

    // A "week" of churn: updates, deletions, re-listings.
    let store = Arc::clone(world.images());
    let plan = DailyPlan::generate(
        world.catalog_mut(),
        &store,
        &DailyPlanConfig {
            total_events: 4_000,
            seed: 77,
            ..Default::default()
        },
    );
    world.start_update_stream(plan.events().to_vec(), 0).join();
    // End of the week: a slice of the catalog is off the market for good
    // (seasonal stock, bans) — these are the logically-deleted records the
    // weekly rebuild physically reclaims.
    for product in world.catalog().products().iter().step_by(5) {
        world.topology().publish(product.remove_event());
    }
    world.topology().wait_for_freshness(Duration::from_secs(60));

    let report_state = |label: &str, world: &World| {
        let (mut records, mut valid) = (0, 0);
        for row in world.topology().indexes() {
            records += row[0].num_images();
            valid += row[0].valid_images();
        }
        println!(
            "{label}: {records} records, {valid} valid ({} logically deleted)",
            records - valid
        );
        (records, valid)
    };
    let (records_before, valid_before) = report_state("before rebuild", &world);

    // Keep queries flowing from a background thread during the rebuild.
    let client = world.client(Duration::from_secs(10));
    let generator = Arc::new(QueryGenerator::new(world.catalog(), 5));
    let stop = Arc::new(AtomicBool::new(false));
    let ok = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let images = Arc::clone(world.images());
    let query_thread = {
        let (stop, ok, failed, generator) = (
            Arc::clone(&stop),
            Arc::clone(&ok),
            Arc::clone(&failed),
            Arc::clone(&generator),
        );
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let (query, _) = generator.next_query(&images, 3);
                match client.search(query) {
                    Ok(resp) if !resp.results.is_empty() => ok.fetch_add(1, Ordering::Relaxed),
                    _ => failed.fetch_add(1, Ordering::Relaxed),
                };
            }
        })
    };

    // Rebuild every partition online.
    let num_partitions = world.topology().partition_map().num_partitions();
    for p in 0..num_partitions {
        let report = world.topology().rebuild_partition(p);
        println!(
            "rebuilt partition {p}: {} log messages → {} records (was {}), snapshot {} KiB",
            report.messages_replayed,
            report.records_after,
            report.records_before,
            report.snapshot_bytes / 1024,
        );
    }
    stop.store(true, Ordering::Relaxed);
    query_thread.join().unwrap();

    let (records_after, valid_after) = report_state("after rebuild ", &world);
    println!(
        "\nqueries during rebuild: {} ok, {} failed/empty",
        ok.load(Ordering::Relaxed),
        failed.load(Ordering::Relaxed)
    );
    assert_eq!(
        valid_after, valid_before,
        "rebuild must not lose valid images"
    );
    assert!(
        records_after < records_before,
        "rebuild must reclaim deleted records"
    );
    assert_eq!(
        records_after, valid_after,
        "fresh index holds only valid records"
    );

    // Freshness still works post-swap.
    let product = world.catalog().products()[3].clone();
    world.topology().publish(product.remove_event());
    world.topology().wait_for_freshness(Duration::from_secs(30));
    let resp = world
        .client(Duration::from_secs(5))
        .search(SearchQuery::by_image_url(product.urls[0].clone(), 1))
        .unwrap();
    assert_ne!(
        resp.results.first().map(|r| r.hit.product_id),
        Some(product.id),
        "real-time deletion applies to the rebuilt index"
    );
    println!("post-rebuild real-time deletion verified — full weekly cycle OK");
}
