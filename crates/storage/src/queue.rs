//! Ordered, offset-addressed, multi-consumer message log.
//!
//! The paper's two indexing paths share one message source:
//!
//! - **Full indexing** buffers *"all product update messages of a day"* and
//!   replays them in order at the end of the day (Section 2.2) — that is a
//!   bounded range read.
//! - **Real-time indexing** receives messages *"from a message queue and
//!   processed instantly"* (Section 2.3) — that is tail-following, one
//!   cursor per searcher.
//!
//! [`MessageQueue`] provides both over one append-only log: publishers
//! append, each [`Consumer`] owns an independent offset cursor, and range
//! reads (`read_range`) serve replay. Blocking polls park on a condvar so
//! tail-followers wake within microseconds of a publish — the foundation of
//! the sub-second freshness the paper measures.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// Position of a message in the log (0-based, dense).
pub type Offset = u64;

#[derive(Debug)]
struct Inner<T> {
    log: Mutex<Vec<T>>,
    not_empty: Condvar,
}

/// An in-process, ordered, multi-consumer message log.
///
/// Cloning the queue is cheap (it is an `Arc` handle); all clones publish
/// to and read from the same log.
///
/// # Example
///
/// ```
/// use jdvs_storage::MessageQueue;
///
/// let q = MessageQueue::new();
/// q.publish(1u32);
/// q.publish(2);
/// assert_eq!(q.read_range(0, 10), vec![1, 2]);
/// let mut c = q.consumer();
/// assert_eq!(c.poll_now(), Some(1));
/// ```
#[derive(Debug)]
pub struct MessageQueue<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for MessageQueue<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Clone> Default for MessageQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> MessageQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                log: Mutex::new(Vec::new()),
                not_empty: Condvar::new(),
            }),
        }
    }

    /// Appends a message, returning its offset.
    pub fn publish(&self, msg: T) -> Offset {
        let mut log = self.inner.log.lock();
        log.push(msg);
        let off = (log.len() - 1) as Offset;
        drop(log);
        self.inner.not_empty.notify_all();
        off
    }

    /// Appends a batch, returning the offset of the first message.
    pub fn publish_batch(&self, msgs: impl IntoIterator<Item = T>) -> Offset {
        let mut log = self.inner.log.lock();
        let first = log.len() as Offset;
        log.extend(msgs);
        drop(log);
        self.inner.not_empty.notify_all();
        first
    }

    /// Number of messages ever published (the next offset to be assigned).
    pub fn len(&self) -> u64 {
        self.inner.log.lock().len() as u64
    }

    /// Returns `true` if nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.inner.log.lock().is_empty()
    }

    /// Copies up to `max` messages starting at `from` (bounded replay; the
    /// full indexer's read path). Returns fewer than `max` at the tail.
    pub fn read_range(&self, from: Offset, max: usize) -> Vec<T> {
        let log = self.inner.log.lock();
        let start = (from as usize).min(log.len());
        let end = start.saturating_add(max).min(log.len());
        log[start..end].to_vec()
    }

    /// Creates a tail-following consumer starting at offset 0.
    pub fn consumer(&self) -> Consumer<T> {
        self.consumer_at(0)
    }

    /// Creates a consumer starting at `offset`.
    pub fn consumer_at(&self, offset: Offset) -> Consumer<T> {
        Consumer {
            queue: self.clone(),
            cursor: offset,
        }
    }
}

/// An independent read cursor over a [`MessageQueue`].
///
/// Consumers never contend with each other: each tracks only its own offset,
/// so any number of searchers can follow the same log (the paper attaches
/// every searcher to the queue for real-time indexing).
#[derive(Debug)]
pub struct Consumer<T> {
    queue: MessageQueue<T>,
    cursor: Offset,
}

impl<T: Clone> Consumer<T> {
    /// Current cursor position (offset of the next message to read).
    pub fn position(&self) -> Offset {
        self.cursor
    }

    /// How many published messages this consumer has not yet read.
    pub fn lag(&self) -> u64 {
        self.queue.len().saturating_sub(self.cursor)
    }

    /// Non-blocking poll: returns the next message if one is available.
    pub fn poll_now(&mut self) -> Option<T> {
        let log = self.queue.inner.log.lock();
        let msg = log.get(self.cursor as usize).cloned();
        drop(log);
        if msg.is_some() {
            self.cursor += 1;
        }
        msg
    }

    /// Blocking poll: waits up to `timeout` for the next message.
    pub fn poll(&mut self, timeout: Duration) -> Option<T> {
        let mut log = self.queue.inner.log.lock();
        if (self.cursor as usize) >= log.len() {
            self.queue.inner.not_empty.wait_for(&mut log, timeout);
        }
        let msg = log.get(self.cursor as usize).cloned();
        drop(log);
        if msg.is_some() {
            self.cursor += 1;
        }
        msg
    }

    /// Non-blocking batch poll: drains up to `max` available messages.
    pub fn poll_batch(&mut self, max: usize) -> Vec<T> {
        let log = self.queue.inner.log.lock();
        let start = (self.cursor as usize).min(log.len());
        let end = start.saturating_add(max).min(log.len());
        let out = log[start..end].to_vec();
        drop(log);
        self.cursor = end as Offset;
        out
    }

    /// Moves the cursor to an absolute offset (replay / skip-ahead).
    pub fn seek(&mut self, offset: Offset) {
        self.cursor = offset;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn publish_assigns_dense_offsets() {
        let q = MessageQueue::new();
        assert_eq!(q.publish("a"), 0);
        assert_eq!(q.publish("b"), 1);
        assert_eq!(q.publish_batch(["c", "d"]), 2);
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn read_range_clamps_to_tail() {
        let q = MessageQueue::new();
        q.publish_batch(0..5u32);
        assert_eq!(q.read_range(3, 100), vec![3, 4]);
        assert_eq!(q.read_range(10, 5), Vec::<u32>::new());
        assert_eq!(q.read_range(0, 2), vec![0, 1]);
    }

    #[test]
    fn consumer_reads_in_order() {
        let q = MessageQueue::new();
        q.publish_batch(0..10u32);
        let mut c = q.consumer();
        let got: Vec<u32> = std::iter::from_fn(|| c.poll_now()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(c.lag(), 0);
    }

    #[test]
    fn consumers_are_independent() {
        let q = MessageQueue::new();
        q.publish_batch(0..4u32);
        let mut a = q.consumer();
        let mut b = q.consumer();
        assert_eq!(a.poll_now(), Some(0));
        assert_eq!(a.poll_now(), Some(1));
        assert_eq!(b.poll_now(), Some(0), "b has its own cursor");
    }

    #[test]
    fn poll_batch_drains_up_to_max() {
        let q = MessageQueue::new();
        q.publish_batch(0..10u32);
        let mut c = q.consumer();
        assert_eq!(c.poll_batch(3), vec![0, 1, 2]);
        assert_eq!(c.poll_batch(100), (3..10).collect::<Vec<_>>());
        assert!(c.poll_batch(5).is_empty());
    }

    #[test]
    fn seek_supports_replay() {
        let q = MessageQueue::new();
        q.publish_batch(0..5u32);
        let mut c = q.consumer();
        c.poll_batch(5);
        c.seek(2);
        assert_eq!(c.poll_now(), Some(2));
    }

    #[test]
    fn blocking_poll_times_out_when_empty() {
        let q: MessageQueue<u32> = MessageQueue::new();
        let mut c = q.consumer();
        let start = std::time::Instant::now();
        assert_eq!(c.poll(Duration::from_millis(20)), None);
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn blocking_poll_wakes_on_publish() {
        let q = MessageQueue::new();
        let mut c = q.consumer();
        let q2 = q.clone();
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            q2.publish(99u32);
        });
        let got = c.poll(Duration::from_secs(5));
        t.join().unwrap();
        assert_eq!(got, Some(99));
    }

    #[test]
    fn lag_tracks_unread_messages() {
        let q = MessageQueue::new();
        let mut c = q.consumer();
        assert_eq!(c.lag(), 0);
        q.publish_batch(0..7u32);
        assert_eq!(c.lag(), 7);
        c.poll_batch(3);
        assert_eq!(c.lag(), 4);
        assert_eq!(c.position(), 3);
    }

    #[test]
    fn concurrent_publishers_preserve_all_messages() {
        let q = MessageQueue::new();
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let q = q.clone();
                thread::spawn(move || {
                    for i in 0..1_000u64 {
                        q.publish(t * 1_000 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(q.len(), 4_000);
        let mut all = q.read_range(0, 4_000);
        all.sort_unstable();
        assert_eq!(all, (0..4_000).collect::<Vec<_>>());
    }

    #[test]
    fn tail_follower_sees_all_messages_from_concurrent_publisher() {
        let q = MessageQueue::new();
        let mut c = q.consumer();
        let q2 = q.clone();
        let publisher = thread::spawn(move || {
            for i in 0..500u32 {
                q2.publish(i);
            }
        });
        let mut got = Vec::new();
        while got.len() < 500 {
            if let Some(m) = c.poll(Duration::from_secs(5)) {
                got.push(m);
            }
        }
        publisher.join().unwrap();
        assert_eq!(got, (0..500).collect::<Vec<_>>());
    }
}
