//! Property-based tests for metrics invariants.

use proptest::prelude::*;

use jdvs_metrics::{Histogram, HourlySeries};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging histograms is equivalent to recording the concatenated
    /// stream, regardless of how samples are split.
    #[test]
    fn merge_is_order_independent(
        a in prop::collection::vec(0u64..5_000_000, 0..200),
        b in prop::collection::vec(0u64..5_000_000, 0..200),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hall = Histogram::new();
        for &v in &a {
            ha.record_us(v);
            hall.record_us(v);
        }
        for &v in &b {
            hb.record_us(v);
            hall.record_us(v);
        }
        // a.merge(b) == b.merge(a) == concatenated
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        for h in [&ab, &ba] {
            prop_assert_eq!(h.count(), hall.count());
            prop_assert_eq!(h.min_us(), hall.min_us());
            prop_assert_eq!(h.max_us(), hall.max_us());
            for q in [0.1, 0.5, 0.9, 0.99] {
                prop_assert_eq!(h.percentile_us(q), hall.percentile_us(q));
            }
        }
    }

    /// The mean is exact (not quantized) and bounded by min/max.
    #[test]
    fn mean_is_exact(values in prop::collection::vec(0u64..1_000_000, 1..300)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record_us(v);
        }
        let expected = values.iter().sum::<u64>() as f64 / values.len() as f64;
        prop_assert!((h.mean_us() - expected).abs() < 1e-6);
        prop_assert!(h.mean_us() >= h.min_us() as f64);
        prop_assert!(h.mean_us() <= h.max_us() as f64);
    }

    /// CDF points are strictly increasing in both coordinates and end at 1.
    #[test]
    fn cdf_is_a_distribution(values in prop::collection::vec(0u64..10_000_000, 1..300)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record_us(v);
        }
        let cdf = h.cdf_points();
        prop_assert!(!cdf.is_empty());
        let mut prev_frac = 0.0;
        for w in cdf.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
        }
        for &(_, f) in &cdf {
            prop_assert!(f > prev_frac);
            prev_frac = f;
        }
        prop_assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        // X-coordinates are bucket representatives clamped to the observed
        // range (values sharing a bucket share a representative).
        prop_assert!(cdf[0].0 >= h.min_us() && cdf[0].0 <= h.max_us());
        prop_assert!(cdf.last().unwrap().0 <= h.max_us());
    }

    /// Hourly series counts and day histogram agree with per-hour inputs.
    #[test]
    fn hourly_series_accounting(samples in prop::collection::vec((0usize..24, 0u64..1_000_000), 1..200)) {
        let series = HourlySeries::new();
        let mut per_hour = [0u64; 24];
        for &(h, v) in &samples {
            series.record(h, v);
            per_hour[h] += 1;
        }
        prop_assert_eq!(series.counts(), per_hour);
        prop_assert_eq!(series.total(), samples.len() as u64);
        prop_assert_eq!(series.day_histogram().count(), samples.len() as u64);
        let peak = series.peak_hour();
        let max = *per_hour.iter().max().unwrap();
        prop_assert_eq!(per_hour[peak], max);
    }

    /// Percentile quantization error is within the documented 2% bound for
    /// single-value histograms at any magnitude.
    #[test]
    fn single_value_quantization_bound(v in 0u64..u64::MAX / 2) {
        let mut h = Histogram::new();
        h.record_us(v);
        let p = h.percentile_us(0.5);
        if v < 1024 {
            prop_assert_eq!(p, v);
        } else {
            let rel = (p as f64 - v as f64).abs() / v as f64;
            prop_assert!(rel < 0.02, "v={} p={} rel={}", v, p, rel);
        }
    }
}
