//! The cooperative scheduler behind [`crate::model`].
//!
//! One logical thread runs at a time; every instrumented operation calls
//! [`schedule_point`], which picks the next runnable thread with the
//! iteration's seeded RNG and parks the current one until it is picked
//! again. Serializing execution this way makes every explored execution
//! sequentially consistent while still covering the interleavings that
//! publication-protocol bugs depend on.

use std::cell::RefCell;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Thread id of the model's main thread.
pub(crate) const MAIN_TID: usize = 0;

/// Per-iteration step budget: a model exceeding it is livelocked (e.g. two
/// threads spinning on each other's locks) or far too large to model.
const MAX_STEPS: u64 = 1_000_000;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    /// Runnable: may be picked at any scheduling point.
    Ready,
    /// Parked until the target thread finishes.
    JoinWait(usize),
    Finished,
}

struct State {
    /// The only thread allowed to make progress right now.
    current: usize,
    threads: Vec<TState>,
    rng: u64,
    steps: u64,
    /// Set when the model iteration is being torn down after a failure so
    /// parked threads stop waiting and unwind instead.
    abandoned: bool,
    any_panicked: bool,
}

pub(crate) struct Exec {
    state: Mutex<State>,
    cv: Condvar,
    real_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Exec>, usize)>> = const { RefCell::new(None) };
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Exec {
    pub(crate) fn new(seed: u64) -> Self {
        Self {
            state: Mutex::new(State {
                current: MAIN_TID,
                threads: vec![TState::Ready],
                rng: seed.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0xA076_1D64_78BD_642F,
                steps: 0,
                abandoned: false,
                any_panicked: false,
            }),
            cv: Condvar::new(),
            real_handles: Mutex::new(Vec::new()),
        }
    }

    /// Picks the next runnable thread and stores it in `current`. Panics on
    /// an all-threads-blocked deadlock.
    fn pick_next(&self, st: &mut State) {
        let ready: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == TState::Ready)
            .map(|(i, _)| i)
            .collect();
        if ready.is_empty() {
            if st.threads.iter().any(|s| *s != TState::Finished) {
                st.abandoned = true;
                self.cv.notify_all();
                panic!("loom-shim: deadlock — every unfinished thread is blocked on a join");
            }
            return; // everything finished; nothing to schedule
        }
        let pick = ready[(splitmix64(&mut st.rng) as usize) % ready.len()];
        st.current = pick;
        self.cv.notify_all();
    }

    /// Parks the calling thread until the scheduler picks it again.
    fn wait_until_current<'a>(
        &'a self,
        me: usize,
        mut st: MutexGuard<'a, State>,
    ) -> MutexGuard<'a, State> {
        while st.current != me {
            if st.abandoned {
                drop(st);
                panic!("loom-shim: model abandoned");
            }
            st = self.cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        st
    }

    pub(crate) fn abandon(&self) {
        let mut st = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        st.abandoned = true;
        self.cv.notify_all();
    }

    pub(crate) fn any_thread_panicked(&self) -> bool {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .any_panicked
    }

    pub(crate) fn join_real_threads(&self) {
        let handles: Vec<_> = self
            .real_handles
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Installs `exec` as the calling thread's scheduler context.
pub(crate) fn enter(exec: &Arc<Exec>, tid: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(exec), tid)));
}

/// Removes the calling thread's scheduler context.
pub(crate) fn leave() {
    CTX.with(|c| *c.borrow_mut() = None);
}

pub(crate) fn current() -> Option<(Arc<Exec>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

/// The instrumentation hook: a point where the scheduler may hand control
/// to another thread. No-op outside a model run, so instrumented types
/// behave like their std equivalents in ordinary code.
pub(crate) fn schedule_point() {
    let Some((exec, me)) = current() else { return };
    let mut st = exec.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if st.abandoned {
        drop(st);
        panic!("loom-shim: model abandoned");
    }
    st.steps += 1;
    if st.steps > MAX_STEPS {
        st.abandoned = true;
        exec.cv.notify_all();
        drop(st);
        panic!(
            "loom-shim: step budget ({MAX_STEPS}) exceeded — livelock/deadlock suspected \
             (e.g. a lock spin whose holder never runs to release)"
        );
    }
    exec.pick_next(&mut st);
    let st = exec.wait_until_current(me, st);
    drop(st);
}

/// Registers a new logical thread and spawns its OS carrier. The carrier
/// parks until first scheduled, runs `f`, records the outcome, and hands
/// control onward.
pub(crate) fn spawn_thread(
    exec: &Arc<Exec>,
    f: impl FnOnce() + Send + 'static,
) -> usize {
    let tid = {
        let mut st = exec.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        st.threads.push(TState::Ready);
        st.threads.len() - 1
    };
    let e = Arc::clone(exec);
    let handle = std::thread::Builder::new()
        .name(format!("loom-shim-{tid}"))
        .spawn(move || {
            enter(&e, tid);
            {
                let st = e.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        drop(e.wait_until_current(tid, st));
                    }));
                if outcome.is_err() {
                    // Abandoned while parked: exit without running `f`.
                    leave();
                    finish(&e, tid, false);
                    return;
                }
            }
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            leave();
            finish(&e, tid, outcome.is_err());
        })
        .expect("failed to spawn model thread");
    exec.real_handles
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(handle);
    tid
}

/// Marks `me` finished, wakes joiners, and schedules a successor.
fn finish(exec: &Arc<Exec>, me: usize, panicked: bool) {
    let mut st = exec.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    st.threads[me] = TState::Finished;
    st.any_panicked |= panicked;
    for s in st.threads.iter_mut() {
        if *s == TState::JoinWait(me) {
            *s = TState::Ready;
        }
    }
    if st.abandoned {
        exec.cv.notify_all();
        return;
    }
    exec.pick_next(&mut st);
}

/// Parks the calling thread until `target` finishes (a scheduling point).
pub(crate) fn join_thread(target: usize) {
    let Some((exec, me)) = current() else { return };
    let mut st = exec.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if st.abandoned {
        drop(st);
        panic!("loom-shim: model abandoned");
    }
    if st.threads[target] != TState::Finished {
        st.threads[me] = TState::JoinWait(target);
        exec.pick_next(&mut st);
        while st.threads[me] != TState::Ready || st.current != me {
            if st.abandoned {
                drop(st);
                panic!("loom-shim: model abandoned");
            }
            st = exec.cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
    drop(st);
    // Joining is itself an interleaving point.
    schedule_point();
}

/// Returns `true` if every spawned thread has finished.
fn all_finished(exec: &Arc<Exec>) -> bool {
    let st = exec.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    st.threads
        .iter()
        .enumerate()
        .all(|(i, s)| i == MAIN_TID || *s == TState::Finished)
}

/// Runs remaining threads to completion (called by the model driver after
/// the test body returns, so unjoined threads still execute fully).
pub(crate) fn drain() {
    let Some((exec, _)) = current() else { return };
    while !all_finished(&exec) {
        schedule_point();
    }
}
