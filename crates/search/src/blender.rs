//! The blender service (top of Figure 10).
//!
//! *"When a blender receives an image query request, it extracts the
//! features and sends them to all the brokers. The blender also combines
//! and ranks the results and returns to the user."*
//!
//! [`BlenderService`] resolves the query's features (extracting from the
//! image store when handed a URL — the expensive step, charged to the cost
//! model), fans out to one instance of every broker group in parallel,
//! merges the group top-k lists, and applies the [`RankingPolicy`].
//!
//! Resilience: when the incoming [`SearchQuery`] carries a deadline
//! `budget`, the time spent resolving features is deducted before fan-out
//! and each broker-group call gets `min(broker_deadline, 0.9 × remaining)`
//! — the budget the user stamped bounds the whole hierarchy. Broker groups
//! that fail are accounted (via [`BlenderService::with_group_partitions`])
//! into the response's partition coverage, so a degraded result is never
//! silently incomplete.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use jdvs_features::category::CategoryDetector;
use jdvs_features::CachingExtractor;
use jdvs_metrics::ResilienceMetrics;
use jdvs_net::balancer::Balancer;
use jdvs_net::node::NodeHandle;
use jdvs_net::rpc::{CallTarget, RpcError, Service};
use jdvs_storage::lru::LruCache;
use jdvs_storage::model::ImageKey;
use jdvs_storage::ImageStore;

use crate::broker::BrokerService;
use crate::protocol::{FanoutQuery, PartialResponse, QueryInput, SearchQuery, SearchResponse};
use crate::ranking::RankingPolicy;

/// Fraction of the remaining budget granted to the next hop; the held-back
/// margin pays for the merge, ranking, and the reply trip.
const BUDGET_MARGIN: f64 = 0.9;

/// One blender instance, generic over the transport to its broker groups:
/// in-process [`NodeHandle`]s (the default) or
/// [`jdvs_net::tcp::TcpChannel`]s when the tiers run over real sockets.
pub struct BlenderService<B = NodeHandle<BrokerService>>
where
    B: CallTarget<Request = FanoutQuery, Response = PartialResponse>,
{
    /// One balancer per broker group (instances of a group are identical).
    broker_groups: Vec<Balancer<B>>,
    extractor: Arc<CachingExtractor>,
    images: Arc<ImageStore>,
    ranking: RankingPolicy,
    broker_deadline: Duration,
    /// Optional query-feature cache: repeated query images (viral photos,
    /// trending products) skip re-extraction — the most expensive step of
    /// the query path. Shared across blender instances when cloned in.
    query_cache: Option<Arc<LruCache<ImageKey, Vec<f32>>>>,
    /// Optional query-category detector (Section 2.4's "the product
    /// category of the item is identified").
    category_detector: Option<Arc<CategoryDetector>>,
    /// Partitions owned by each broker group, aligned with
    /// `broker_groups`. Lets the blender account partitions lost when a
    /// whole group call fails (the group can't report its own loss).
    /// `None` = unknown; failed groups then only show in `groups_failed`.
    /// Shared and atomically updatable: an online partition split bumps
    /// the owning group's count so coverage accounting stays exact.
    group_partitions: Option<Arc<Vec<AtomicUsize>>>,
    /// Shared resilience counters, when attached.
    metrics: Option<Arc<ResilienceMetrics>>,
}

impl<B> std::fmt::Debug for BlenderService<B>
where
    B: CallTarget<Request = FanoutQuery, Response = PartialResponse>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlenderService")
            .field("broker_groups", &self.broker_groups.len())
            .finish()
    }
}

impl<B> BlenderService<B>
where
    B: CallTarget<Request = FanoutQuery, Response = PartialResponse>,
{
    /// Creates a blender over its broker-group balancers.
    ///
    /// # Panics
    ///
    /// Panics if `broker_groups` is empty.
    pub fn new(
        broker_groups: Vec<Balancer<B>>,
        extractor: Arc<CachingExtractor>,
        images: Arc<ImageStore>,
        ranking: RankingPolicy,
        broker_deadline: Duration,
    ) -> Self {
        assert!(
            !broker_groups.is_empty(),
            "a blender needs at least one broker group"
        );
        Self {
            broker_groups,
            extractor,
            images,
            ranking,
            broker_deadline,
            query_cache: None,
            category_detector: None,
            group_partitions: None,
            metrics: None,
        }
    }

    /// Declares how many partitions each broker group owns (aligned with
    /// the constructor's `broker_groups`), so partitions behind a
    /// completely-failed group call still land in the response's coverage
    /// accounting instead of vanishing.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the number of broker groups.
    pub fn with_group_partitions(self, counts: Vec<usize>) -> Self {
        self.with_shared_group_partitions(Arc::new(
            counts.into_iter().map(AtomicUsize::new).collect(),
        ))
    }

    /// Like [`BlenderService::with_group_partitions`], but over counters
    /// the caller keeps a handle to — a partition split bumps the owning
    /// group's counter and every blender sharing the `Arc` accounts for
    /// the new partition from then on.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the number of broker groups.
    pub fn with_shared_group_partitions(mut self, counts: Arc<Vec<AtomicUsize>>) -> Self {
        assert_eq!(
            counts.len(),
            self.broker_groups.len(),
            "one partition count per broker group"
        );
        self.group_partitions = Some(counts);
        self
    }

    /// Attaches shared resilience counters.
    pub fn with_metrics(mut self, metrics: Arc<ResilienceMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Attaches a category detector; responses then carry the detected
    /// category of the query image.
    pub fn with_category_detector(mut self, detector: Arc<CategoryDetector>) -> Self {
        self.category_detector = Some(detector);
        self
    }

    /// Attaches a query-feature cache (typically shared across blenders).
    pub fn with_query_cache(mut self, cache: Arc<LruCache<ImageKey, Vec<f32>>>) -> Self {
        self.query_cache = Some(cache);
        self
    }

    /// Snapshot of the query cache's statistics, if one is attached.
    pub fn query_cache_stats(&self) -> Option<jdvs_storage::lru::LruStats> {
        self.query_cache.as_ref().map(|c| c.stats())
    }

    /// Resolves a query's features: pass-through for pre-extracted
    /// features; store-fetch + extraction (cost charged) for image URLs.
    fn resolve_features(&self, input: &QueryInput) -> Option<Vec<f32>> {
        match input {
            QueryInput::Features(f) => Some(f.clone()),
            QueryInput::ImageUrl(url) => {
                let key = ImageKey::from_url(url);
                if let Some(cache) = &self.query_cache {
                    if let Some(hit) = cache.get(&key) {
                        return Some(hit);
                    }
                }
                let blob = self.images.get(key)?;
                self.extractor.cost().charge();
                let features = self.extractor.extractor().extract(&blob).into_inner();
                if let Some(cache) = &self.query_cache {
                    cache.put(key, features.clone());
                }
                Some(features)
            }
        }
    }

    /// Partitions owned by group `g`, when declared.
    fn partitions_of_group(&self, g: usize) -> Option<usize> {
        self.group_partitions
            .as_ref()
            .map(|counts| counts[g].load(Ordering::Acquire))
    }

    /// Executes one user query end-to-end.
    ///
    /// With a stamped `query.budget`, feature-resolution time is deducted
    /// and each broker group is granted `min(broker_deadline, 0.9 ×
    /// remaining)`; an already-exhausted budget skips the fan-out and
    /// returns a fully-degraded (but fully-accounted) response.
    pub fn execute(&self, query: &SearchQuery) -> SearchResponse {
        let start = Instant::now();
        if let Some(m) = &self.metrics {
            m.queries_total.incr();
        }
        let Some(features) = self.resolve_features(&query.input) else {
            return SearchResponse::default();
        };
        let detected_category = self
            .category_detector
            .as_ref()
            .map(|d| d.detect(&features).0);

        // Deduct the time feature extraction just spent from the budget.
        let remaining = query.budget.map(|b| b.saturating_sub(start.elapsed()));
        if remaining.is_some_and(|r| r.is_zero()) {
            if let Some(m) = &self.metrics {
                m.queries_budget_exhausted.incr();
                m.queries_degraded.incr();
            }
            let total: usize = self
                .group_partitions
                .as_ref()
                .map(|counts| counts.iter().map(|c| c.load(Ordering::Acquire)).sum())
                .unwrap_or(0);
            return SearchResponse {
                groups_failed: self.broker_groups.len(),
                partitions_total: total,
                partitions_timed_out: total,
                detected_category,
                ..SearchResponse::default()
            };
        }
        let per_group = match remaining {
            Some(r) => self.broker_deadline.min(r.mul_f64(BUDGET_MARGIN)),
            None => self.broker_deadline,
        };
        let fanout = FanoutQuery {
            features,
            k: query.k,
            nprobe: query.nprobe,
            compressed: query.compressed,
            budget: remaining.map(|_| per_group),
            filter: query.filter.clone(),
        };
        let responses: Vec<Result<PartialResponse, RpcError>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = self
                .broker_groups
                .iter()
                .map(|group| {
                    let q = fanout.clone();
                    scope.spawn(move |_| group.call(q, per_group))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or(Err(RpcError::NodeDown)))
                .collect()
        })
        .expect("blender fan-out scope");

        let mut out = SearchResponse {
            detected_category,
            ..SearchResponse::default()
        };
        let mut all_hits = Vec::new();
        for (g, resp) in responses.into_iter().enumerate() {
            match resp {
                Ok(partial) => {
                    out.groups_answered += 1;
                    out.partitions_ok += partial.partitions_ok;
                    out.partitions_total += partial.partitions_total;
                    out.partitions_timed_out += partial.partitions_timed_out;
                    out.partitions_failed += partial.partitions_failed;
                    out.partitions_shed += partial.partitions_shed;
                    all_hits.extend(partial.hits);
                }
                Err(err) => {
                    out.groups_failed += 1;
                    // The group couldn't account for its own partitions;
                    // do it here from the declared layout.
                    let lost = self.partitions_of_group(g).unwrap_or(0);
                    out.partitions_total += lost;
                    match err {
                        RpcError::Timeout { .. } => {
                            out.partitions_timed_out += lost;
                            if let Some(m) = &self.metrics {
                                m.partitions_timed_out.add(lost as u64);
                            }
                        }
                        RpcError::Overloaded => {
                            out.partitions_shed += lost;
                            if let Some(m) = &self.metrics {
                                m.partitions_shed.add(lost as u64);
                            }
                        }
                        _ => {
                            out.partitions_failed += lost;
                            if let Some(m) = &self.metrics {
                                m.partitions_failed.add(lost as u64);
                            }
                        }
                    }
                }
            }
        }
        if let Some(m) = &self.metrics {
            if !out.is_complete() {
                m.queries_degraded.incr();
            }
        }
        out.results = self.ranking.rank(all_hits, query.k);
        out
    }
}

impl<B> Service for BlenderService<B>
where
    B: CallTarget<Request = FanoutQuery, Response = PartialResponse>,
{
    type Request = SearchQuery;
    type Response = SearchResponse;

    fn handle(&self, req: SearchQuery) -> SearchResponse {
        self.execute(&req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::searcher::SearcherService;
    use jdvs_core::{IndexConfig, VisualIndex};
    use jdvs_features::cost::CostModel;
    use jdvs_features::{ExtractorConfig, FeatureExtractor};
    use jdvs_net::node::Node;
    use jdvs_storage::model::{ProductAttributes, ProductId};
    use jdvs_storage::FeatureDb;
    use jdvs_vector::Vector;

    const DIM: usize = 8;
    const DL: Duration = Duration::from_secs(5);

    struct World {
        blender: BlenderService,
        images: Arc<ImageStore>,
        index: Arc<VisualIndex>,
        _nodes: Vec<Node<SearcherService>>,
        _broker_nodes: Vec<Node<BrokerService>>,
    }

    /// One partition, one broker group, populated through the real
    /// extraction pipeline so URL queries resolve to indexed neighborhoods.
    fn world() -> World {
        let images = Arc::new(ImageStore::with_blob_len(64));
        let feature_db = Arc::new(FeatureDb::new());
        let extractor = Arc::new(CachingExtractor::new(
            FeatureExtractor::new(ExtractorConfig {
                dim: DIM,
                ..Default::default()
            }),
            CostModel::free(),
        ));

        // Index 60 images across 3 visual clusters.
        let mut feats = Vec::new();
        for i in 0..60u64 {
            let url = format!("u{i}");
            images.put_synthetic(&url, i % 3);
            let attrs = ProductAttributes::new(ProductId(i), i, 100, 1, url.clone());
            let (f, _) = extractor.features_for(&attrs, &images, &feature_db);
            feats.push((f.unwrap(), attrs));
        }
        let train: Vec<Vector> = feats.iter().map(|(f, _)| f.clone()).collect();
        let index = Arc::new(VisualIndex::bootstrap(
            IndexConfig {
                dim: DIM,
                num_lists: 3,
                nprobe: 3,
                ..Default::default()
            },
            &train,
        ));
        for (f, a) in feats {
            index.insert(f, a).unwrap();
        }
        index.flush();

        let searcher = Node::spawn(
            "s-0-0",
            SearcherService::for_index(0, Arc::clone(&index)),
            2,
        );
        let broker = Node::spawn(
            "b-0-0",
            BrokerService::new(0, vec![Balancer::new(vec![searcher.handle()])], DL),
            2,
        );
        let blender = BlenderService::new(
            vec![Balancer::new(vec![broker.handle()])],
            extractor,
            Arc::clone(&images),
            RankingPolicy::similarity_only(),
            DL,
        );
        World {
            blender,
            images,
            index,
            _nodes: vec![searcher],
            _broker_nodes: vec![broker],
        }
    }

    #[test]
    fn feature_query_returns_ranked_results() {
        let w = world();
        let feats = w.index.features(jdvs_core::ids::ImageId(5)).unwrap();
        let resp = w
            .blender
            .execute(&SearchQuery::by_features(feats.into_inner(), 6));
        assert_eq!(resp.results.len(), 6);
        assert_eq!(resp.groups_answered, 1);
        assert_eq!(resp.groups_failed, 0);
        assert!(resp.is_complete(), "single healthy partition covered");
        assert_eq!((resp.partitions_ok, resp.partitions_total), (1, 1));
        assert_eq!(resp.results[0].hit.local_id, 5, "self-match first");
        for w2 in resp.results.windows(2) {
            assert!(w2[0].score >= w2[1].score);
        }
    }

    #[test]
    fn image_url_query_extracts_then_searches() {
        let w = world();
        // Query with a *new* image from visual cluster 0: its neighbors
        // should be indexed images of the same cluster (i % 3 == 0).
        w.images.put_synthetic("query-img", 0);
        let resp = w
            .blender
            .execute(&SearchQuery::by_image_url("query-img", 6));
        assert_eq!(resp.results.len(), 6);
        let same_cluster = resp
            .results
            .iter()
            .filter(|r| r.hit.product_id.0 % 3 == 0)
            .count();
        assert!(
            same_cluster >= 5,
            "visual cluster should dominate: {same_cluster}/6"
        );
    }

    #[test]
    fn unknown_image_url_returns_empty() {
        let w = world();
        let resp = w.blender.execute(&SearchQuery::by_image_url("missing", 5));
        assert!(resp.results.is_empty());
        assert_eq!(resp.groups_answered, 0);
    }

    #[test]
    fn results_deduplicate_products() {
        let w = world();
        let feats = w.index.features(jdvs_core::ids::ImageId(0)).unwrap();
        let resp = w
            .blender
            .execute(&SearchQuery::by_features(feats.into_inner(), 20));
        let mut products: Vec<u64> = resp.results.iter().map(|r| r.hit.product_id.0).collect();
        let before = products.len();
        products.dedup();
        assert_eq!(products.len(), before, "each product at most once");
    }

    #[test]
    fn query_cache_skips_repeat_extraction() {
        let w = world();
        w.images.put_synthetic("viral", 1);
        let cache = Arc::new(LruCache::new(16));
        // Rebuild a blender around the same backends but with a cache.
        let blender = {
            let World { blender, .. } = w;
            blender.with_query_cache(Arc::clone(&cache))
        };
        let q = SearchQuery::by_image_url("viral", 3);
        let r1 = blender.execute(&q);
        let r2 = blender.execute(&q);
        assert_eq!(
            r1.results, r2.results,
            "cached features give identical results"
        );
        let stats = blender.query_cache_stats().unwrap();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn failed_broker_group_is_accounted_not_silent() {
        // Destructure at function scope so the nodes stay alive.
        let World {
            blender,
            _nodes,
            _broker_nodes,
            ..
        } = world();
        let metrics = Arc::new(jdvs_metrics::ResilienceMetrics::new());
        _broker_nodes[0].faults().set_down(true);
        let blender = blender
            .with_group_partitions(vec![1])
            .with_metrics(Arc::clone(&metrics));
        let resp = blender.execute(&SearchQuery::by_features(vec![0.0; DIM], 3));
        assert!(resp.results.is_empty());
        assert_eq!(resp.groups_failed, 1);
        assert!(!resp.is_complete(), "lost partitions must be visible");
        assert_eq!((resp.partitions_ok, resp.partitions_total), (0, 1));
        assert_eq!(resp.partitions_failed, 1);
        let snap = metrics.snapshot();
        assert_eq!(snap.queries_total, 1);
        assert_eq!(snap.queries_degraded, 1);
        assert_eq!(snap.partitions_failed, 1);
    }

    #[test]
    fn exhausted_budget_returns_fully_accounted_degraded_response() {
        let World {
            blender,
            _nodes,
            _broker_nodes,
            ..
        } = world();
        let metrics = Arc::new(jdvs_metrics::ResilienceMetrics::new());
        let blender = blender
            .with_group_partitions(vec![1])
            .with_metrics(Arc::clone(&metrics));
        let q = SearchQuery::by_features(vec![0.0; DIM], 3).with_budget(Duration::ZERO);
        let resp = blender.execute(&q);
        assert!(resp.results.is_empty());
        assert!(!resp.is_complete());
        assert_eq!((resp.partitions_ok, resp.partitions_total), (0, 1));
        assert_eq!(resp.partitions_timed_out, 1);
        assert_eq!(metrics.snapshot().queries_budget_exhausted, 1);
        assert_eq!(metrics.snapshot().queries_degraded, 1);
    }

    #[test]
    fn budget_bounds_the_broker_deadline() {
        // A blender with a generous configured broker deadline but a tiny
        // query budget must cut the fan-out near the budget.
        let w = world();
        w.images.put_synthetic("q", 0);
        let feats = w.index.features(jdvs_core::ids::ImageId(1)).unwrap();
        // Slow the searcher so the broker call would run long.
        w._nodes[0]
            .faults()
            .set_slowdown(Duration::from_millis(500));
        let q =
            SearchQuery::by_features(feats.into_inner(), 3).with_budget(Duration::from_millis(60));
        let start = std::time::Instant::now();
        let resp = w.blender.execute(&q);
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(400),
            "budget must bound the fan-out: took {elapsed:?}"
        );
        // Whatever was lost is accounted, never silently missing.
        assert_eq!(
            resp.partitions_ok + resp.partitions_timed_out + resp.partitions_failed,
            resp.partitions_total
        );
    }

    #[test]
    #[should_panic(expected = "one partition count per broker group")]
    fn mismatched_group_partition_counts_panic() {
        let World {
            blender,
            _nodes,
            _broker_nodes,
            ..
        } = world();
        let _ = blender.with_group_partitions(vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one broker group")]
    fn empty_broker_groups_panics() {
        let images = Arc::new(ImageStore::new());
        let extractor = Arc::new(CachingExtractor::new(
            FeatureExtractor::new(ExtractorConfig {
                dim: DIM,
                ..Default::default()
            }),
            CostModel::free(),
        ));
        BlenderService::<NodeHandle<BrokerService>>::new(
            vec![],
            extractor,
            images,
            RankingPolicy::default(),
            DL,
        );
    }
}
