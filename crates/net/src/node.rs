//! Actor nodes and their client stubs.
//!
//! A [`Node`] is one "server" of the testbed: a name, a [`Service`]
//! instance, and `n` worker threads pulling requests from an MPMC channel
//! (crossbeam). `n` models the server's core count — at most `n` requests
//! are serviced concurrently; the rest queue, which is exactly the
//! saturation behaviour Figure 13(a) measures.
//!
//! A [`NodeHandle`] is the cloneable client stub. Each call:
//!
//! 1. consults the node's [`FaultInjector`] (down? dropped? slowed?);
//! 2. charges one sampled network latency on the caller thread;
//! 3. enqueues the request with a one-shot reply channel;
//! 4. waits for the reply with the caller's deadline.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Mutex, RwLock};

use crate::fault::FaultInjector;
use crate::latency::{LatencyModel, LatencySampler};
use crate::rpc::{CallTarget, RpcError, Service};

struct Envelope<Req, Resp> {
    request: Req,
    reply: Sender<Resp>,
}

/// The node's request channel sender (wrapped so shutdown can drop it).
type EnvelopeSender<S> = Sender<Envelope<<S as Service>::Request, <S as Service>::Response>>;

struct Shared<S: Service> {
    name: String,
    // `None` once the node is shut down; dropping the sender disconnects
    // the workers' receive loop so they exit.
    tx: RwLock<Option<EnvelopeSender<S>>>,
    faults: FaultInjector,
    latency: LatencySampler,
    stopped: AtomicBool,
}

/// A running node; call [`Node::shutdown`] to stop and join its workers.
pub struct Node<S: Service> {
    shared: Arc<Shared<S>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl<S: Service> std::fmt::Debug for Node<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("name", &self.shared.name)
            .field("stopped", &self.shared.stopped.load(Ordering::Relaxed))
            .finish()
    }
}

impl<S: Service> Node<S> {
    /// Spawns a node with `workers` threads, no simulated latency and no
    /// faults.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn spawn(name: impl Into<String>, service: S, workers: usize) -> Self {
        Self::spawn_with(name, service, workers, LatencyModel::Zero, 0)
    }

    /// Spawns a node with an explicit latency model and seed (the seed also
    /// derives the fault injector's stream).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn spawn_with(
        name: impl Into<String>,
        service: S,
        workers: usize,
        latency: LatencyModel,
        seed: u64,
    ) -> Self {
        assert!(workers > 0, "a node needs at least one worker");
        let name = name.into();
        let (tx, rx): (EnvelopeSender<S>, Receiver<_>) = unbounded();
        let shared = Arc::new(Shared {
            name: name.clone(),
            tx: RwLock::new(Some(tx)),
            faults: FaultInjector::new(seed ^ 0xFA017),
            latency: LatencySampler::new(latency, seed ^ 0x1A7E),
            stopped: AtomicBool::new(false),
        });
        let service = Arc::new(service);
        let handles = (0..workers)
            .map(|i| {
                let rx = rx.clone();
                let service = Arc::clone(&service);
                std::thread::Builder::new()
                    .name(format!("{name}-w{i}"))
                    .spawn(move || {
                        while let Ok(env) = rx.recv() {
                            let resp = service.handle(env.request);
                            // Caller may have timed out and dropped the
                            // receiver; that is not the worker's problem.
                            let _ = env.reply.send(resp);
                        }
                    })
                    .expect("spawning node worker thread")
            })
            .collect();
        Self {
            shared,
            workers: Mutex::new(handles),
        }
    }

    /// The node's name.
    pub fn name(&self) -> &str {
        &self.shared.name
    }

    /// Creates a client stub.
    pub fn handle(&self) -> NodeHandle<S> {
        NodeHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// This node's fault controls.
    pub fn faults(&self) -> &FaultInjector {
        &self.shared.faults
    }

    /// Stops accepting requests, lets queued work drain, and joins the
    /// workers. Subsequent calls through any handle fail with
    /// [`RpcError::NodeDown`]. Idempotent.
    pub fn shutdown(&self) {
        if self.shared.stopped.swap(true, Ordering::SeqCst) {
            return;
        }
        // Dropping the sender disconnects the channel once in-flight
        // clones (inside `call`) are gone; workers then drain and exit.
        *self.shared.tx.write() = None;
        let mut workers = self.workers.lock();
        for h in workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl<S: Service> Drop for Node<S> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Cloneable client stub for a [`Node`].
pub struct NodeHandle<S: Service> {
    shared: Arc<Shared<S>>,
}

impl<S: Service> Clone for NodeHandle<S> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<S: Service> std::fmt::Debug for NodeHandle<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeHandle")
            .field("node", &self.shared.name)
            .finish()
    }
}

impl<S: Service> NodeHandle<S> {
    /// The target node's name.
    pub fn node_name(&self) -> &str {
        &self.shared.name
    }

    /// Whether the node has been shut down or crashed.
    pub fn is_down(&self) -> bool {
        self.shared.stopped.load(Ordering::Relaxed) || self.shared.faults.is_down()
    }

    /// Performs one call with a deadline.
    ///
    /// # Errors
    ///
    /// [`RpcError::NodeDown`] if the node is stopped/crashed,
    /// [`RpcError::Dropped`] if fault injection dropped the request,
    /// [`RpcError::Timeout`] if no reply arrived within `deadline`.
    pub fn call(&self, request: S::Request, deadline: Duration) -> Result<S::Response, RpcError> {
        if self.shared.stopped.load(Ordering::Relaxed) {
            return Err(RpcError::NodeDown);
        }
        let extra = self.shared.faults.check()?;
        let wire = self.shared.latency.sample() + extra;
        if !wire.is_zero() {
            std::thread::sleep(wire);
        }
        let (reply_tx, reply_rx) = crossbeam::channel::bounded(1);
        {
            let tx = self.shared.tx.read();
            let tx = tx.as_ref().ok_or(RpcError::NodeDown)?;
            tx.send(Envelope {
                request,
                reply: reply_tx,
            })
            .map_err(|_| RpcError::NodeDown)?;
        }
        match reply_rx.recv_timeout(deadline) {
            Ok(resp) => Ok(resp),
            Err(RecvTimeoutError::Timeout) => Err(RpcError::Timeout { deadline }),
            Err(RecvTimeoutError::Disconnected) => Err(RpcError::NodeDown),
        }
    }
}

impl<S: Service> CallTarget for NodeHandle<S> {
    type Request = S::Request;
    type Response = S::Response;

    fn call(&self, request: S::Request, deadline: Duration) -> Result<S::Response, RpcError> {
        NodeHandle::call(self, request, deadline)
    }

    fn is_down(&self) -> bool {
        NodeHandle::is_down(self)
    }

    fn target_name(&self) -> &str {
        self.node_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    struct Doubler;
    impl Service for Doubler {
        type Request = u64;
        type Response = u64;
        fn handle(&self, req: u64) -> u64 {
            req * 2
        }
    }

    struct Sleeper(Duration);
    impl Service for Sleeper {
        type Request = ();
        type Response = ();
        fn handle(&self, _req: ()) {
            std::thread::sleep(self.0);
        }
    }

    const DL: Duration = Duration::from_secs(5);

    #[test]
    fn call_round_trip() {
        let node = Node::spawn("d", Doubler, 2);
        let h = node.handle();
        assert_eq!(h.call(21, DL), Ok(42));
        assert_eq!(h.node_name(), "d");
        assert_eq!(node.name(), "d");
    }

    #[test]
    fn handles_are_cloneable_and_concurrent() {
        let node = Node::spawn("d", Doubler, 4);
        let h = node.handle();
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        assert_eq!(h.call(t * 100 + i, DL), Ok((t * 100 + i) * 2));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn worker_pool_bounds_concurrency() {
        // 1 worker + 10 ms service time: 4 serialized calls take >= 40 ms.
        let node = Node::spawn("slow", Sleeper(Duration::from_millis(10)), 1);
        let h = node.handle();
        let start = std::time::Instant::now();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = h.clone();
                std::thread::spawn(move || h.call((), DL).unwrap())
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(
            start.elapsed() >= Duration::from_millis(40),
            "calls must serialize"
        );
    }

    #[test]
    fn timeout_fires_on_slow_service() {
        let node = Node::spawn("slow", Sleeper(Duration::from_millis(100)), 1);
        let h = node.handle();
        let err = h.call((), Duration::from_millis(5)).unwrap_err();
        assert!(matches!(err, RpcError::Timeout { .. }));
    }

    #[test]
    fn shutdown_makes_node_down_and_joins_workers() {
        let node = Node::spawn("d", Doubler, 2);
        let h = node.handle();
        assert_eq!(h.call(1, DL), Ok(2));
        node.shutdown();
        assert_eq!(h.call(1, DL), Err(RpcError::NodeDown));
        assert!(h.is_down());
        node.shutdown(); // idempotent
    }

    #[test]
    fn injected_crash_fails_calls_until_recovery() {
        let node = Node::spawn("d", Doubler, 1);
        let h = node.handle();
        node.faults().set_down(true);
        assert_eq!(h.call(1, DL), Err(RpcError::NodeDown));
        assert!(h.is_down());
        node.faults().set_down(false);
        assert_eq!(h.call(1, DL), Ok(2));
    }

    #[test]
    fn injected_drops_surface_as_dropped() {
        let node = Node::spawn("d", Doubler, 1);
        let h = node.handle();
        node.faults().set_drop_probability(1.0);
        assert_eq!(h.call(1, DL), Err(RpcError::Dropped));
        node.faults().set_drop_probability(0.0);
        assert_eq!(h.call(1, DL), Ok(2));
    }

    #[test]
    fn latency_model_slows_calls() {
        let node = Node::spawn_with(
            "d",
            Doubler,
            1,
            LatencyModel::Constant(Duration::from_millis(5)),
            9,
        );
        let h = node.handle();
        let start = std::time::Instant::now();
        h.call(1, DL).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn slowdown_injection_adds_delay() {
        let node = Node::spawn("d", Doubler, 1);
        node.faults().set_slowdown(Duration::from_millis(5));
        let h = node.handle();
        let start = std::time::Instant::now();
        h.call(1, DL).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn service_state_is_shared_across_workers() {
        struct Counter(AtomicU64);
        impl Service for Counter {
            type Request = ();
            type Response = u64;
            fn handle(&self, _: ()) -> u64 {
                self.0.fetch_add(1, Ordering::Relaxed)
            }
        }
        let node = Node::spawn("c", Counter(AtomicU64::new(0)), 4);
        let h = node.handle();
        let mut seen: Vec<u64> = (0..100).map(|_| h.call((), DL).unwrap()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn drop_shuts_node_down() {
        let h = {
            let node = Node::spawn("d", Doubler, 1);
            node.handle()
        };
        assert_eq!(h.call(1, DL), Err(RpcError::NodeDown));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        Node::spawn("bad", Doubler, 0);
    }
}
