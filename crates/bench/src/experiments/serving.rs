//! The serving-performance experiments: Figures 12 and 13.
//!
//! World: the paper's testbed scaled onto one machine — 100 k images (at
//! `--scale 1`), 8 searcher partitions, 2 broker groups, 2 blenders, a
//! log-normal per-hop latency and a real (slept) query-feature-extraction
//! cost at the blender. Clients are closed-loop threads (Section 3.2).
//!
//! - **Figure 12**: with vs without real-time indexing. The "with" arm
//!   runs the paper's update mix as a concurrent background stream through
//!   every searcher's real-time indexer while queries are measured.
//! - **Figure 13(a)**: thread sweep → QPS saturation curve.
//! - **Figure 13(b)**: full response-time CDF at the saturating thread
//!   count.

use std::sync::Arc;
use std::time::Duration;

use jdvs_core::IndexConfig;
use jdvs_features::cost::CostDistribution;
use jdvs_net::LatencyModel;
use jdvs_search::topology::TopologyConfig;
use jdvs_search::RankingPolicy;
use jdvs_workload::catalog::CatalogConfig;
use jdvs_workload::client::{ClosedLoopConfig, ClosedLoopDriver};
use jdvs_workload::events::{DailyPlan, DailyPlanConfig};
use jdvs_workload::queries::QueryGenerator;
use jdvs_workload::scenario::{ExtractionCost, World, WorldConfig};

use crate::report::ExperimentResult;
use crate::row;

use super::Ctx;

const DIM: usize = 32;

fn serving_world(ctx: &Ctx, realtime: bool) -> World {
    // ~100k images at scale 1 (paper: "a total of 100,000 images").
    let num_products = ctx.scaled(40_000, 2_000);
    World::build(WorldConfig {
        catalog: CatalogConfig {
            num_products,
            num_clusters: 200,
            ..Default::default()
        },
        topology: TopologyConfig {
            index: IndexConfig {
                dim: DIM,
                num_lists: 128,
                nprobe: 8,
                initial_list_capacity: 64,
                ..Default::default()
            },
            num_partitions: 8,
            replicas_per_partition: 1,
            num_broker_groups: 2,
            broker_replicas: 1,
            num_blenders: 2,
            searcher_workers: 4,
            broker_workers: 8,
            blender_workers: 12,
            latency: LatencyModel::LogNormal {
                median: Duration::from_micros(200),
                sigma: 0.4,
            },
            realtime_indexing: realtime,
            ranking: RankingPolicy::default(),
            ..Default::default()
        },
        // Query images are extracted at the blender with a real (slept)
        // cost — the paper's dominant response-time component.
        extraction_cost: ExtractionCost::Sleep(CostDistribution::LogNormal {
            median: Duration::from_millis(8),
            sigma: 0.3,
        }),
        ..Default::default()
    })
}

fn measure(world: &World, threads: usize, window: Duration) -> jdvs_workload::client::LoadReport {
    measure_reps(world, threads, window, 3)
}

fn measure_reps(
    world: &World,
    threads: usize,
    window: Duration,
    reps: u64,
) -> jdvs_workload::client::LoadReport {
    // Median of several windows: closed-loop throughput on a shared (often
    // single-core) host is noisy; a single bad scheduling quantum can halve
    // one window's QPS and masquerade as indexing overhead.
    let mut reports: Vec<jdvs_workload::client::LoadReport> = (0..reps)
        .map(|rep| {
            let generator =
                QueryGenerator::new(world.catalog(), 0x9E + threads as u64 + rep * 7_919);
            let client = world.client(Duration::from_secs(30));
            ClosedLoopDriver::run(
                &client,
                &generator,
                world.images(),
                ClosedLoopConfig {
                    threads,
                    duration: window,
                    warmup: window.mul_f64(0.2),
                    k: 6,
                },
            )
        })
        .collect();
    reports.sort_by(|a, b| {
        a.qps()
            .partial_cmp(&b.qps())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mid = reports.len() / 2;
    reports.swap_remove(mid)
}

/// Which panel of Figure 12 to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig12Metric {
    /// Figure 12(a): normalized QPS.
    Throughput,
    /// Figure 12(b): mean response time.
    ResponseTime,
}

/// Figure 12: performance with and without real-time indexing.
///
/// Measurement design: on a shared (often single-core) host, slow machine
/// drift is larger than the effect under test, so the two arms are run as
/// **paired windows** — for each repetition, one without-RT window is
/// immediately followed by one with-RT window (update stream live only
/// during it), and the overhead is taken from the **median of paired
/// ratios**, which cancels drift common to both windows. The stream rate
/// is scaled to the paper's per-core update load: 977 M updates/day ≈
/// 11.3 k/s across a 480-core searcher fleet ≈ 24 updates/s/core; we run
/// an order of magnitude above that to make the overhead measurable at
/// all.
pub fn fig12(ctx: &Ctx, metric: Fig12Metric) -> ExperimentResult {
    let window = ctx.window(Duration::from_millis(1_200));
    let thread_counts = [50usize, 100, 200];
    const STREAM_RATE: u64 = 250;
    const REPS: usize = 5;

    let world_off = serving_world(ctx, false);
    let mut world_on = serving_world(ctx, true);
    let store = Arc::clone(world_on.images());
    let plan = DailyPlan::generate(
        world_on.catalog_mut(),
        &store,
        &DailyPlanConfig {
            total_events: 200_000,
            ..Default::default()
        },
    );
    let events = plan.events().to_vec();

    // Per thread count: REPS paired (off, on) windows.
    let mut off = Vec::new();
    let mut on = Vec::new();
    let mut ratios = Vec::new();
    let mut published = 0u64;
    let mut cursor = 0usize;
    for &t in &thread_counts {
        let mut pairs: Vec<(
            jdvs_workload::client::LoadReport,
            jdvs_workload::client::LoadReport,
        )> = Vec::with_capacity(REPS);
        for _ in 0..REPS {
            let off_r = measure_reps(&world_off, t, window, 1);
            let chunk_len = events.len().saturating_sub(cursor).min(10_000);
            let chunk = events[cursor..cursor + chunk_len].to_vec();
            cursor += chunk_len;
            let stream = world_on.start_update_stream(chunk, STREAM_RATE);
            let on_r = measure_reps(&world_on, t, window, 1);
            published += stream.stop();
            pairs.push((off_r, on_r));
        }
        // Median paired throughput ratio (with-RT / without-RT).
        let mut pair_ratios: Vec<f64> = pairs
            .iter()
            .map(|(o, n)| n.qps() / o.qps().max(1e-9))
            .collect();
        pair_ratios.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median_ratio = pair_ratios[pair_ratios.len() / 2];
        // Keep the median pair (by ratio) as the representative reports.
        pairs.sort_by(|a, b| {
            let ra = a.1.qps() / a.0.qps().max(1e-9);
            let rb = b.1.qps() / b.0.qps().max(1e-9);
            ra.partial_cmp(&rb).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mid = pairs.len() / 2;
        let (off_mid, on_mid) = pairs.swap_remove(mid);
        off.push(off_mid);
        on.push(on_mid);
        ratios.push(median_ratio);
    }

    let (id, title, paper) = match metric {
        Fig12Metric::Throughput => (
            "fig12a",
            "Throughput with and without real-time indexing",
            "Figure 12(a): real-time indexing costs < 10% QPS at 50/100/200 threads",
        ),
        Fig12Metric::ResponseTime => (
            "fig12b",
            "Response time with and without real-time indexing",
            "Figure 12(b): similar response times; average < 100 ms",
        ),
    };
    let mut r = ExperimentResult::new(id, title, paper);
    for (i, &threads) in thread_counts.iter().enumerate() {
        match metric {
            Fig12Metric::Throughput => {
                r.push_row(row![
                    "threads" => threads,
                    "qps_without_rt" => format!("{:.1}", off[i].qps()),
                    "qps_with_rt" => format!("{:.1}", on[i].qps()),
                    "normalized_with_rt" => format!("{:.3}", ratios[i]),
                    "overhead_%" => format!("{:.1}", 100.0 * (1.0 - ratios[i])),
                ]);
            }
            Fig12Metric::ResponseTime => {
                r.push_row(row![
                    "threads" => threads,
                    "mean_ms_without_rt" => format!("{:.1}", off[i].mean_ms()),
                    "mean_ms_with_rt" => format!("{:.1}", on[i].mean_ms()),
                    "p99_ms_with_rt" =>
                        format!("{:.1}", on[i].histogram.percentile_us(0.99) as f64 / 1e3),
                ]);
            }
        }
    }
    r.note(format!(
        "background stream published {published} update events during the with-RT arm"
    ));
    if metric == Fig12Metric::Throughput {
        let worst = ratios.iter().map(|r| 1.0 - r).fold(f64::MIN, f64::max);
        r.note(format!(
            "worst-case real-time-indexing overhead (median of {REPS} paired ratios): {:.1}% (paper: < 10%)",
            100.0 * worst
        ));
    }
    r
}

/// Figure 13(a): QPS vs client threads.
pub fn fig13a(ctx: &Ctx) -> ExperimentResult {
    let world = serving_world(ctx, true);
    let window = ctx.window(Duration::from_millis(800));
    let mut r = ExperimentResult::new(
        "fig13a",
        "Query throughput scalability (closed-loop thread sweep)",
        "Figure 13(a): QPS rises with threads and saturates (paper: ~1800 QPS)",
    );
    let sweep = if ctx.quick {
        vec![1usize, 4, 8, 16, 24, 35]
    } else {
        vec![1usize, 2, 4, 6, 8, 12, 16, 20, 24, 28, 32, 35]
    };
    let mut best = 0.0f64;
    for threads in sweep {
        let report = measure(&world, threads, window);
        best = best.max(report.qps());
        r.push_row(row![
            "threads" => threads,
            "qps" => format!("{:.1}", report.qps()),
            "mean_ms" => format!("{:.1}", report.mean_ms()),
            "errors" => report.errors,
        ]);
    }
    r.note(format!(
        "max observed throughput: {best:.0} QPS (paper: ~1800 on 28 servers)"
    ));
    r.note("shape target: monotone rise then plateau once blender capacity saturates");
    r
}

/// Figure 13(b): response-time CDF at max throughput.
pub fn fig13b(ctx: &Ctx) -> ExperimentResult {
    let world = serving_world(ctx, true);
    let window = ctx.window(Duration::from_secs(3));
    let report = measure(&world, 35, window);
    let mut r = ExperimentResult::new(
        "fig13b",
        "Response-time CDF at maximum throughput (35 threads)",
        "Figure 13(b): p99 ≈ 0.3 s, max ≈ 2.1 s",
    );
    // Compact the CDF to ~40 representative points.
    let cdf = report.histogram.cdf_points();
    let step = (cdf.len() / 40).max(1);
    for (i, (us, frac)) in cdf.iter().enumerate() {
        if i % step == 0 || i + 1 == cdf.len() {
            r.push_row(row![
                "latency_ms" => format!("{:.2}", *us as f64 / 1e3),
                "cdf" => format!("{:.4}", frac),
            ]);
        }
    }
    r.note(format!(
        "mean {:.1} ms, p90 {:.1} ms, p99 {:.1} ms, max {:.1} ms over {} queries",
        report.mean_ms(),
        report.histogram.percentile_us(0.90) as f64 / 1e3,
        report.histogram.percentile_us(0.99) as f64 / 1e3,
        report.histogram.max_us() as f64 / 1e3,
        report.queries,
    ));
    r
}
