//! The validity bitmap.
//!
//! Section 2.1: *"A bitmap is used to indicate if a product or image is
//! valid or not. When a product is removed from the market, it is marked
//! invalid and excluded from the indexing and search processes."*
//!
//! Deletion in jdvs is **logical**: flipping one bit, visible to all
//! concurrent searches immediately, with no index restructuring. Physical
//! cleanup happens at the next weekly full-index build. [`AtomicBitmap`]
//! packs 64 validity flags per `AtomicU64` word; set/clear/test are single
//! atomic ops. The word array grows amortized-doubling behind a `RwLock`
//! spine — readers pay one uncontended read-lock acquisition, writers only
//! take the write lock on (rare) growth.

use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};

/// A growable, thread-safe bitmap.
///
/// # Example
///
/// ```
/// use jdvs_core::bitmap::AtomicBitmap;
///
/// let bm = AtomicBitmap::new();
/// bm.set(100);
/// assert!(bm.test(100));
/// assert!(!bm.test(99));
/// bm.clear(100);
/// assert!(!bm.test(100));
/// ```
#[derive(Debug, Default)]
pub struct AtomicBitmap {
    words: RwLock<Vec<AtomicU64>>,
}

impl AtomicBitmap {
    /// Creates an empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a bitmap pre-sized for at least `bits` flags.
    pub fn with_capacity(bits: usize) -> Self {
        let words = bits.div_ceil(64);
        Self {
            words: RwLock::new((0..words).map(|_| AtomicU64::new(0)).collect()),
        }
    }

    /// Sets bit `index` to 1 (image becomes valid), growing as needed.
    pub fn set(&self, index: usize) {
        self.ensure(index);
        let words = self.words.read();
        words[index / 64].fetch_or(1 << (index % 64), Ordering::Release);
    }

    /// Clears bit `index` to 0 (image becomes invalid), growing as needed.
    pub fn clear(&self, index: usize) {
        self.ensure(index);
        let words = self.words.read();
        words[index / 64].fetch_and(!(1 << (index % 64)), Ordering::Release);
    }

    /// Writes bit `index` to `value`.
    pub fn assign(&self, index: usize, value: bool) {
        if value {
            self.set(index);
        } else {
            self.clear(index);
        }
    }

    /// Tests bit `index`; out-of-range bits read as 0 (an image the bitmap
    /// has never covered is invalid by definition).
    pub fn test(&self, index: usize) -> bool {
        let words = self.words.read();
        match words.get(index / 64) {
            Some(w) => w.load(Ordering::Acquire) & (1 << (index % 64)) != 0,
            None => false,
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words
            .read()
            .iter()
            .map(|w| w.load(Ordering::Acquire).count_ones() as usize)
            .sum()
    }

    /// Current capacity in bits.
    pub fn capacity(&self) -> usize {
        self.words.read().len() * 64
    }

    /// Grows the word array (amortized doubling) so `index` is addressable.
    fn ensure(&self, index: usize) {
        let needed = index / 64 + 1;
        if self.words.read().len() >= needed {
            return;
        }
        let mut words = self.words.write();
        // Re-check under the write lock; another writer may have grown.
        let target = needed.max(words.len() * 2).max(4);
        while words.len() < target {
            words.push(AtomicU64::new(0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fresh_bits_are_clear() {
        let bm = AtomicBitmap::new();
        assert!(!bm.test(0));
        assert!(!bm.test(1_000_000));
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    fn set_test_clear_round_trip() {
        let bm = AtomicBitmap::new();
        bm.set(5);
        bm.set(64);
        bm.set(65);
        assert!(bm.test(5));
        assert!(bm.test(64));
        assert!(bm.test(65));
        assert!(!bm.test(6));
        assert_eq!(bm.count_ones(), 3);
        bm.clear(64);
        assert!(!bm.test(64));
        assert_eq!(bm.count_ones(), 2);
    }

    #[test]
    fn assign_maps_to_set_and_clear() {
        let bm = AtomicBitmap::new();
        bm.assign(10, true);
        assert!(bm.test(10));
        bm.assign(10, false);
        assert!(!bm.test(10));
    }

    #[test]
    fn clear_beyond_capacity_grows_but_stays_zero() {
        let bm = AtomicBitmap::new();
        bm.clear(10_000);
        assert!(!bm.test(10_000));
        assert!(bm.capacity() > 10_000);
    }

    #[test]
    fn with_capacity_presizes() {
        let bm = AtomicBitmap::with_capacity(1000);
        assert!(bm.capacity() >= 1000);
    }

    #[test]
    fn word_boundaries_are_independent() {
        let bm = AtomicBitmap::new();
        bm.set(63);
        bm.set(64);
        bm.clear(63);
        assert!(!bm.test(63));
        assert!(bm.test(64));
    }

    #[test]
    fn concurrent_disjoint_sets_are_lossless() {
        let bm = Arc::new(AtomicBitmap::new());
        let handles: Vec<_> = (0..8usize)
            .map(|t| {
                let bm = Arc::clone(&bm);
                std::thread::spawn(move || {
                    for i in 0..1_000 {
                        bm.set(t * 1_000 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(bm.count_ones(), 8_000);
        for b in 0..8_000 {
            assert!(bm.test(b));
        }
    }

    #[test]
    fn concurrent_growth_is_safe() {
        let bm = Arc::new(AtomicBitmap::new());
        let handles: Vec<_> = (0..4usize)
            .map(|t| {
                let bm = Arc::clone(&bm);
                std::thread::spawn(move || {
                    // Each thread forces growth at staggered offsets.
                    for i in 0..100 {
                        bm.set(t * 50_000 + i * 97);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(bm.count_ones(), 400);
    }
}
