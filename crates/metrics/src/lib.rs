//! # jdvs-metrics
//!
//! Measurement infrastructure for the jdvs visual search system: log-linear
//! latency histograms (percentiles and CDFs for Figures 11(b), 12(b) and
//! 13(b)), monotonic counters, hourly time series (Figure 11(a)) and
//! lightweight stopwatches.
//!
//! All shared collectors are thread-safe: the workload drivers run dozens of
//! closed-loop client threads that record into shared recorders.
//!
//! ## Example
//!
//! ```
//! use jdvs_metrics::Histogram;
//! use std::time::Duration;
//!
//! let mut h = Histogram::new();
//! for ms in [1u64, 2, 3, 100] {
//!     h.record(Duration::from_millis(ms));
//! }
//! assert_eq!(h.count(), 4);
//! assert!(h.percentile(0.5) <= h.percentile(0.99));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod counter;
pub mod durability;
pub mod gauge;
pub mod histogram;
pub mod resilience;
pub mod serving;
pub mod stopwatch;
pub mod timeseries;

pub use counter::Counter;
pub use durability::{DurabilityMetrics, DurabilitySnapshot};
pub use gauge::Gauge;
pub use histogram::{Histogram, SharedHistogram};
pub use resilience::{ResilienceMetrics, ResilienceSnapshot};
pub use serving::{ServingMetrics, ServingSnapshot};
pub use stopwatch::Stopwatch;
pub use timeseries::{HourlySeries, HOURS_PER_DAY};
