//! # jdvs-bench
//!
//! The benchmark harness: one experiment per table/figure of the paper's
//! evaluation (Section 3) plus the ablations DESIGN.md calls out. The
//! `repro` binary dispatches to [`experiments`]; the criterion benches
//! under `benches/` cover the micro-level (distance kernels, inverted-list
//! appends, forward-index updates, k-means, top-k, queue throughput).
//!
//! Run everything:
//!
//! ```sh
//! cargo run --release -p jdvs-bench --bin repro -- all
//! ```
//!
//! Results print as human-readable tables and are also dumped as JSON
//! under `bench_results/` for EXPERIMENTS.md bookkeeping.

pub mod experiments;
pub mod report;

pub use report::{ExperimentResult, Row};
