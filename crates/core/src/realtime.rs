//! The real-time indexer (Section 2.3, Figures 4 and 6).
//!
//! *"Messages about product or image updates are received from a message
//! queue and processed instantly."* [`RealtimeIndexer`] is that consumer:
//! it applies each [`ProductEvent`] to its partition's [`VisualIndex`],
//! using the feature-reuse path whenever the image was extracted before.
//!
//! Each searcher owns one partition, so an indexer can be scoped with
//! [`RealtimeIndexer::with_partition`] to process only the images that hash
//! into its partition — exactly how the paper's searchers share one queue.
//!
//! Failed images are never silently dropped: each failure is recorded in a
//! bounded **dead-letter buffer** (newest kept, oldest evicted) together
//! with the error and a retryable/permanent classification, and surfaced
//! through [`RealtimeIndexer::drain_dead_letters`] for an operator or a
//! replay job to act on.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use jdvs_features::cache::FetchOutcome;
use jdvs_features::CachingExtractor;
use jdvs_storage::model::{ImageKey, ProductEvent};
use jdvs_storage::queue::Consumer;
use jdvs_storage::{FeatureDb, ImageStore};

use crate::error::IndexError;
use crate::index::VisualIndex;
use crate::swap::IndexHandle;

/// What applying one event did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ApplyReport {
    /// Images inserted fresh (feature extraction performed or reused from
    /// the feature DB).
    pub inserted: u64,
    /// Images revalidated via the in-index reuse path (bitmap flip).
    pub revalidated: u64,
    /// Images whose attributes were updated.
    pub updated: u64,
    /// Images logically deleted.
    pub deleted: u64,
    /// Images skipped because they hash to another partition.
    pub skipped: u64,
    /// Images that could not be processed (e.g. blob missing, URL unknown).
    pub failed: u64,
}

impl ApplyReport {
    /// Total images this event touched on this partition.
    pub fn touched(&self) -> u64 {
        self.inserted + self.revalidated + self.updated + self.deleted
    }

    fn merge(&mut self, other: ApplyReport) {
        self.inserted += other.inserted;
        self.revalidated += other.revalidated;
        self.updated += other.updated;
        self.deleted += other.deleted;
        self.skipped += other.skipped;
        self.failed += other.failed;
    }
}

/// Default capacity of the dead-letter buffer.
pub const DEFAULT_DEAD_LETTER_CAPACITY: usize = 256;

/// One failed image operation, preserved for inspection or replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadLetter {
    /// URL of the image that failed.
    pub url: String,
    /// What the event was trying to do.
    pub operation: DeadLetterOp,
    /// Human-readable error.
    pub error: String,
    /// Whether a later retry could plausibly succeed (e.g. an update that
    /// raced ahead of its add in the stream) or the failure is permanent
    /// (e.g. a capacity or validation error).
    pub retryable: bool,
}

/// The operation a [`DeadLetter`] was performing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadLetterOp {
    /// Inserting or revalidating an image.
    Insert,
    /// Logically deleting an image.
    Delete,
    /// Updating numeric attributes.
    Update,
}

/// Counters over all failures the indexer has seen (dead-lettered or
/// already evicted from the bounded buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeadLetterStats {
    /// Failures a retry could plausibly fix (out-of-order stream events).
    pub retryable: u64,
    /// Failures retrying cannot fix (validation/capacity errors).
    pub permanent: u64,
    /// Dead letters evicted because the buffer was full.
    pub evicted: u64,
}

impl DeadLetterStats {
    /// Total failures observed.
    pub fn total(&self) -> u64 {
        self.retryable + self.permanent
    }
}

/// Classifies an [`IndexError`]: unknown-URL/unknown-image failures are
/// retryable (the add that defines them may simply not have arrived yet);
/// everything else is a permanent property of the data or the index.
fn is_retryable(err: &IndexError) -> bool {
    matches!(err, IndexError::UnknownUrl(_) | IndexError::UnknownImage(_))
}

/// The per-partition real-time indexer; see the module docs.
///
/// The indexer resolves its index through an [`IndexHandle`] per event,
/// so a weekly full-index hot swap (Figure 2) redirects subsequent events
/// to the fresh index without restarting the indexer.
#[derive(Debug)]
pub struct RealtimeIndexer {
    index: Arc<IndexHandle>,
    extractor: Arc<CachingExtractor>,
    images: Arc<ImageStore>,
    feature_db: Arc<FeatureDb>,
    /// `(partition, num_partitions)`: only images whose URL hashes into
    /// `partition` are processed. `None` processes everything.
    partition: Option<(usize, usize)>,
    /// Bounded buffer of failed operations, newest kept.
    dead_letters: Mutex<VecDeque<DeadLetter>>,
    dead_letter_capacity: usize,
    retryable_failures: AtomicU64,
    permanent_failures: AtomicU64,
    dead_letters_evicted: AtomicU64,
}

impl RealtimeIndexer {
    /// Creates an indexer that processes every event image, writing to
    /// whichever index `handle` currently points at.
    pub fn new(
        handle: Arc<IndexHandle>,
        extractor: Arc<CachingExtractor>,
        images: Arc<ImageStore>,
        feature_db: Arc<FeatureDb>,
    ) -> Self {
        Self {
            index: handle,
            extractor,
            images,
            feature_db,
            partition: None,
            dead_letters: Mutex::new(VecDeque::new()),
            dead_letter_capacity: DEFAULT_DEAD_LETTER_CAPACITY,
            retryable_failures: AtomicU64::new(0),
            permanent_failures: AtomicU64::new(0),
            dead_letters_evicted: AtomicU64::new(0),
        }
    }

    /// Convenience: wraps a fixed index in a fresh (never-swapped) handle.
    pub fn for_index(
        index: Arc<VisualIndex>,
        extractor: Arc<CachingExtractor>,
        images: Arc<ImageStore>,
        feature_db: Arc<FeatureDb>,
    ) -> Self {
        Self::new(
            Arc::new(IndexHandle::new(index)),
            extractor,
            images,
            feature_db,
        )
    }

    /// Scopes the indexer to one partition of `num_partitions`.
    ///
    /// # Panics
    ///
    /// Panics if `partition >= num_partitions` or `num_partitions == 0`.
    pub fn with_partition(mut self, partition: usize, num_partitions: usize) -> Self {
        assert!(num_partitions > 0, "num_partitions must be positive");
        assert!(partition < num_partitions, "partition out of range");
        self.partition = Some((partition, num_partitions));
        self
    }

    /// Overrides the dead-letter buffer capacity (`0` keeps counting
    /// failures but retains no letters).
    pub fn with_dead_letter_capacity(mut self, capacity: usize) -> Self {
        self.dead_letter_capacity = capacity;
        self
    }

    /// Takes (and clears) everything in the dead-letter buffer, oldest
    /// first. Counters in [`RealtimeIndexer::dead_letter_stats`] are
    /// lifetime totals and are *not* reset by draining.
    pub fn drain_dead_letters(&self) -> Vec<DeadLetter> {
        self.dead_letters.lock().drain(..).collect()
    }

    /// Lifetime failure counters (survive draining).
    pub fn dead_letter_stats(&self) -> DeadLetterStats {
        DeadLetterStats {
            retryable: self.retryable_failures.load(Ordering::Relaxed),
            permanent: self.permanent_failures.load(Ordering::Relaxed),
            evicted: self.dead_letters_evicted.load(Ordering::Relaxed),
        }
    }

    /// Records one failed image operation, evicting the oldest letter if
    /// the buffer is full.
    fn dead_letter(&self, url: &str, operation: DeadLetterOp, err: &IndexError) {
        let retryable = is_retryable(err);
        if retryable {
            self.retryable_failures.fetch_add(1, Ordering::Relaxed);
        } else {
            self.permanent_failures.fetch_add(1, Ordering::Relaxed);
        }
        if self.dead_letter_capacity == 0 {
            return; // counted, nothing retained
        }
        let mut letters = self.dead_letters.lock();
        if letters.len() == self.dead_letter_capacity {
            letters.pop_front();
            self.dead_letters_evicted.fetch_add(1, Ordering::Relaxed);
        }
        letters.push_back(DeadLetter {
            url: url.to_string(),
            operation,
            error: err.to_string(),
            retryable,
        });
    }

    /// Snapshot of the index this indexer currently maintains.
    pub fn index(&self) -> Arc<VisualIndex> {
        self.index.get()
    }

    /// The swappable handle (rebuilds publish through this).
    pub fn handle(&self) -> &Arc<IndexHandle> {
        &self.index
    }

    fn owns(&self, key: ImageKey) -> bool {
        match self.partition {
            Some((p, n)) => key.partition(n) == p,
            None => true,
        }
    }

    /// Applies one event (Figure 6's dispatch).
    pub fn apply(&self, event: &ProductEvent) -> ApplyReport {
        let index = self.index.get();
        let mut report = ApplyReport::default();
        match event {
            ProductEvent::AddProduct { images, .. } => {
                for attrs in images {
                    let key = attrs.image_key();
                    if !self.owns(key) {
                        report.skipped += 1;
                        continue;
                    }
                    // Figure 8: check-if-exists → reuse, else extract+insert.
                    let outcome = index.upsert(attrs.clone(), || {
                        let (features, fetch) =
                            self.extractor
                                .features_for(attrs, &self.images, &self.feature_db);
                        debug_assert_ne!(
                            fetch,
                            FetchOutcome::Missing,
                            "catalog generated an image with no blob"
                        );
                        features
                    });
                    match outcome {
                        Ok(o) if o.reused() => report.revalidated += 1,
                        Ok(_) => report.inserted += 1,
                        Err(err) => {
                            self.dead_letter(&attrs.url, DeadLetterOp::Insert, &err);
                            report.failed += 1;
                        }
                    }
                }
            }
            ProductEvent::RemoveProduct { urls, .. } => {
                for url in urls {
                    let key = ImageKey::from_url(url);
                    if !self.owns(key) {
                        report.skipped += 1;
                        continue;
                    }
                    match index.invalidate(key, url) {
                        Ok(_) => report.deleted += 1,
                        Err(err) => {
                            self.dead_letter(url, DeadLetterOp::Delete, &err);
                            report.failed += 1;
                        }
                    }
                }
            }
            ProductEvent::UpdateAttributes {
                urls,
                sales,
                price,
                praise,
                ..
            } => {
                for url in urls {
                    let key = ImageKey::from_url(url);
                    if !self.owns(key) {
                        report.skipped += 1;
                        continue;
                    }
                    match index.update_numeric(key, url, *sales, *price, *praise) {
                        Ok(_) => report.updated += 1,
                        Err(err) => {
                            self.dead_letter(url, DeadLetterOp::Update, &err);
                            report.failed += 1;
                        }
                    }
                }
            }
        }
        report
    }

    /// Consumes events from `consumer` until `stop` is set, applying each
    /// instantly. When the queue idles for `idle` the in-flight inverted-
    /// list expansions are flushed (migration-window inserts become
    /// searchable) and the loop re-polls. Returns the cumulative report.
    pub fn run(
        &self,
        consumer: &mut Consumer<ProductEvent>,
        stop: &AtomicBool,
        idle: Duration,
    ) -> ApplyReport {
        let mut total = ApplyReport::default();
        while !stop.load(Ordering::Relaxed) {
            match consumer.poll(idle) {
                Some(event) => total.merge(self.apply(&event)),
                None => self.index.get().flush(),
            }
        }
        // Drain whatever is left so shutdown is deterministic.
        while let Some(event) = consumer.poll_now() {
            total.merge(self.apply(&event));
        }
        self.index.get().flush();
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use jdvs_features::cost::CostModel;
    use jdvs_features::{ExtractorConfig, FeatureExtractor};
    use jdvs_storage::model::{ProductAttributes, ProductId};
    use jdvs_storage::MessageQueue;
    use jdvs_vector::Vector;

    const DIM: usize = 16;

    struct Fixture {
        indexer: RealtimeIndexer,
        images: Arc<ImageStore>,
    }

    fn fixture() -> Fixture {
        fixture_with_partition(None)
    }

    fn fixture_with_partition(partition: Option<(usize, usize)>) -> Fixture {
        let images = Arc::new(ImageStore::with_blob_len(64));
        let feature_db = Arc::new(FeatureDb::new());
        let extractor = Arc::new(CachingExtractor::new(
            FeatureExtractor::new(ExtractorConfig {
                dim: DIM,
                ..Default::default()
            }),
            CostModel::free(),
        ));
        // Bootstrap quantizer on generic Gaussian data.
        let mut rng = jdvs_vector::rng::Xoshiro256::seed_from(5);
        let train: Vec<Vector> = (0..64)
            .map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let index = Arc::new(VisualIndex::bootstrap(
            IndexConfig {
                dim: DIM,
                num_lists: 4,
                initial_list_capacity: 4,
                ..Default::default()
            },
            &train,
        ));
        let mut indexer =
            RealtimeIndexer::for_index(index, extractor, Arc::clone(&images), feature_db);
        if let Some((p, n)) = partition {
            indexer = indexer.with_partition(p, n);
        }
        Fixture { indexer, images }
    }

    fn add_event(f: &Fixture, product: u64, urls: &[&str]) -> ProductEvent {
        let images = urls
            .iter()
            .map(|u| {
                f.images.put_synthetic(u, product * 31);
                ProductAttributes::new(ProductId(product), 1, 100, 1, u.to_string())
            })
            .collect();
        ProductEvent::AddProduct {
            product_id: ProductId(product),
            images,
        }
    }

    #[test]
    fn add_product_inserts_and_is_searchable() {
        let f = fixture();
        let ev = add_event(&f, 1, &["u1", "u2"]);
        let r = f.indexer.apply(&ev);
        assert_eq!(r.inserted, 2);
        assert_eq!(r.touched(), 2);
        let index = f.indexer.index();
        index.flush();
        assert_eq!(index.valid_images(), 2);
        let id = index.lookup(ImageKey::from_url("u1")).unwrap();
        let feats = index.features(id).unwrap();
        let hits = index.search(feats.as_slice(), 1, 4);
        assert_eq!(hits[0].id, id.as_u64());
    }

    #[test]
    fn remove_then_readd_takes_reuse_path() {
        let f = fixture();
        f.indexer.apply(&add_event(&f, 1, &["u1"]));
        let rm = ProductEvent::RemoveProduct {
            product_id: ProductId(1),
            urls: vec!["u1".into()],
        };
        let r = f.indexer.apply(&rm);
        assert_eq!(r.deleted, 1);
        assert_eq!(f.indexer.index().valid_images(), 0);
        // Re-add: must revalidate, not insert.
        let r = f.indexer.apply(&add_event(&f, 1, &["u1"]));
        assert_eq!(r.revalidated, 1);
        assert_eq!(r.inserted, 0);
        assert_eq!(f.indexer.index().valid_images(), 1);
        assert_eq!(f.indexer.index().num_images(), 1, "no duplicate record");
    }

    #[test]
    fn update_changes_attributes() {
        let f = fixture();
        f.indexer.apply(&add_event(&f, 1, &["u1"]));
        let up = ProductEvent::UpdateAttributes {
            product_id: ProductId(1),
            urls: vec!["u1".into()],
            sales: Some(777),
            price: None,
            praise: None,
        };
        let r = f.indexer.apply(&up);
        assert_eq!(r.updated, 1);
        let index = f.indexer.index();
        let id = index.lookup(ImageKey::from_url("u1")).unwrap();
        assert_eq!(index.attributes(id).unwrap().sales, 777);
    }

    #[test]
    fn operations_on_unknown_urls_fail_gracefully() {
        let f = fixture();
        let rm = ProductEvent::RemoveProduct {
            product_id: ProductId(9),
            urls: vec!["x".into()],
        };
        assert_eq!(f.indexer.apply(&rm).failed, 1);
        let up = ProductEvent::UpdateAttributes {
            product_id: ProductId(9),
            urls: vec!["x".into()],
            sales: Some(1),
            price: None,
            praise: None,
        };
        assert_eq!(f.indexer.apply(&up).failed, 1);
    }

    #[test]
    fn partition_scoping_skips_foreign_images() {
        let f = fixture_with_partition(Some((0, 4)));
        // Generate many images; only ~1/4 should be owned.
        let urls: Vec<String> = (0..40).map(|i| format!("p{i}")).collect();
        let url_refs: Vec<&str> = urls.iter().map(String::as_str).collect();
        let r = f.indexer.apply(&add_event(&f, 1, &url_refs));
        assert_eq!(r.inserted + r.skipped, 40);
        assert!(r.skipped > 0, "some images belong elsewhere");
        assert!(r.inserted > 0, "some images belong here");
        // Every inserted image must actually hash to partition 0.
        for u in &urls {
            let key = ImageKey::from_url(u);
            let owned = key.partition(4) == 0;
            assert_eq!(f.indexer.index().lookup(key).is_some(), owned);
        }
    }

    #[test]
    fn run_loop_consumes_until_stopped() {
        let f = fixture();
        let queue: MessageQueue<ProductEvent> = MessageQueue::new();
        for i in 0..20u64 {
            queue.publish(add_event(&f, i, &[&format!("u{i}")]));
        }
        let mut consumer = queue.consumer();
        let stop = AtomicBool::new(true); // run drains the backlog then exits
        let report = f
            .indexer
            .run(&mut consumer, &stop, Duration::from_millis(1));
        assert_eq!(report.inserted, 20);
        assert_eq!(f.indexer.index().valid_images(), 20);
    }

    #[test]
    fn failures_land_in_the_dead_letter_buffer() {
        let f = fixture();
        let rm = ProductEvent::RemoveProduct {
            product_id: ProductId(9),
            urls: vec!["x".into()],
        };
        assert_eq!(f.indexer.apply(&rm).failed, 1);
        let up = ProductEvent::UpdateAttributes {
            product_id: ProductId(9),
            urls: vec!["y".into()],
            sales: Some(1),
            price: None,
            praise: None,
        };
        assert_eq!(f.indexer.apply(&up).failed, 1);

        let letters = f.indexer.drain_dead_letters();
        assert_eq!(letters.len(), 2);
        assert_eq!(letters[0].url, "x");
        assert_eq!(letters[0].operation, DeadLetterOp::Delete);
        assert!(
            letters[0].retryable,
            "unknown URL may be an out-of-order event"
        );
        assert!(
            letters[0].error.contains("x"),
            "error names the URL: {}",
            letters[0].error
        );
        assert_eq!(letters[1].url, "y");
        assert_eq!(letters[1].operation, DeadLetterOp::Update);

        // Draining empties the buffer but keeps the lifetime counters.
        assert!(f.indexer.drain_dead_letters().is_empty());
        let stats = f.indexer.dead_letter_stats();
        assert_eq!(stats.retryable, 2);
        assert_eq!(stats.permanent, 0);
        assert_eq!(stats.total(), 2);
    }

    #[test]
    fn dead_letter_buffer_is_bounded_and_counts_evictions() {
        let images = Arc::new(ImageStore::with_blob_len(64));
        let feature_db = Arc::new(FeatureDb::new());
        let extractor = Arc::new(CachingExtractor::new(
            FeatureExtractor::new(ExtractorConfig {
                dim: DIM,
                ..Default::default()
            }),
            CostModel::free(),
        ));
        let mut rng = jdvs_vector::rng::Xoshiro256::seed_from(5);
        let train: Vec<Vector> = (0..64)
            .map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let index = Arc::new(VisualIndex::bootstrap(
            IndexConfig {
                dim: DIM,
                num_lists: 4,
                ..Default::default()
            },
            &train,
        ));
        let indexer = RealtimeIndexer::for_index(index, extractor, images, feature_db)
            .with_dead_letter_capacity(3);
        for i in 0..5u64 {
            let rm = ProductEvent::RemoveProduct {
                product_id: ProductId(i),
                urls: vec![format!("missing-{i}")],
            };
            indexer.apply(&rm);
        }
        let stats = indexer.dead_letter_stats();
        assert_eq!(stats.total(), 5, "every failure is counted");
        assert_eq!(stats.evicted, 2, "two oldest letters evicted");
        let letters = indexer.drain_dead_letters();
        assert_eq!(letters.len(), 3, "buffer keeps the newest 3");
        assert_eq!(letters[0].url, "missing-2", "oldest retained letter");
        assert_eq!(letters[2].url, "missing-4", "newest letter last");
    }

    #[test]
    fn zero_capacity_counts_without_retaining() {
        let f = fixture();
        // Rebuild with zero capacity via the builder.
        let indexer = fixture().indexer.with_dead_letter_capacity(0);
        let _ = f; // keep original fixture alive for symmetry
        let rm = ProductEvent::RemoveProduct {
            product_id: ProductId(1),
            urls: vec!["z".into()],
        };
        indexer.apply(&rm);
        assert_eq!(indexer.dead_letter_stats().total(), 1);
        assert!(indexer.drain_dead_letters().is_empty());
    }

    #[test]
    fn reuse_avoids_feature_extraction_cost() {
        let f = fixture();
        f.indexer.apply(&add_event(&f, 1, &["u1"]));
        let extractions_after_first = f.indexer.extractor.misses();
        f.indexer.apply(&ProductEvent::RemoveProduct {
            product_id: ProductId(1),
            urls: vec!["u1".into()],
        });
        f.indexer.apply(&add_event(&f, 1, &["u1"]));
        assert_eq!(
            f.indexer.extractor.misses(),
            extractions_after_first,
            "re-listing must not re-extract"
        );
    }
}
