//! Concurrency models of the five publication protocols on the real-time
//! mutation path, executed under the `loom` shim's controlled scheduler
//! (`RUSTFLAGS="--cfg loom" cargo test -p jdvs-core --test loom`).
//!
//! Each test body runs many times; every atomic access and lock operation
//! on the `crate::sync` facade is a scheduling point, and the shim explores
//! a different pseudo-random interleaving per iteration. A failing
//! interleaving prints its seed; replay it deterministically with
//! `JDVS_LOOM_SEED=<seed>`. `JDVS_LOOM_ITERS` (default 256) scales the
//! exploration budget.
//!
//! The shim executes sequentially-consistent interleavings only, so these
//! models prove *protocol* correctness (lost publications, torn prefixes,
//! deadlocks, double-publishes) — the ThreadSanitizer leg of CI covers the
//! weak-memory axis the shim cannot.
#![cfg(loom)]

use loom::sync::Arc;
use loom::thread;

use jdvs_core::bitmap::AtomicBitmap;
use jdvs_core::forward::ForwardIndex;
use jdvs_core::ids::ImageId;
use jdvs_core::inverted::InvertedList;
use jdvs_core::swap::IndexHandle;
use jdvs_storage::model::{ProductAttributes, ProductId};

fn collect(list: &InvertedList) -> Vec<u32> {
    let mut out = Vec::new();
    list.scan(|id| out.push(id.0));
    out
}

/// Protocol 1 — slab append/len pairing: the slot store (relaxed) must be
/// published by the `len` release store, so a concurrent scan sees a dense
/// prefix of the appended ids — never a zero slot below the loaded length.
#[test]
fn slab_append_len_pairing() {
    loom::model(|| {
        let list = Arc::new(InvertedList::new(4, false));
        let writer = {
            let list = Arc::clone(&list);
            thread::spawn(move || {
                list.append(ImageId(7));
                list.append(ImageId(8));
            })
        };
        let seen = collect(&list);
        assert!(
            seen.is_empty() || seen == [7] || seen == [7, 8],
            "scan saw a non-prefix view: {seen:?}"
        );
        writer.join().unwrap();
        assert_eq!(collect(&list), [7, 8]);
    });
}

/// Protocol 2 — migration copy → `copy_done` → publish: an expansion's
/// background copier, a concurrent scan, and the appending writer must
/// agree: the scan sees a prefix of the final contents at all times, the
/// tail insert eventually publishes with **no further appends** (the
/// copier's own publish path or the appender's post-store re-check), and
/// nothing deadlocks or double-publishes.
#[test]
fn migration_copy_publish_protocol() {
    loom::model(|| {
        let list = Arc::new(InvertedList::new(1, true));
        list.append(ImageId(1)); // fills the initial slab
        let reader = {
            let list = Arc::clone(&list);
            thread::spawn(move || {
                let seen = collect(&list);
                assert!(
                    seen.is_empty() || seen == [1] || seen == [1, 2],
                    "mid-migration scan saw a non-prefix view: {seen:?}"
                );
            })
        };
        list.append(ImageId(2)); // triggers expansion; id 2 is a tail insert
        reader.join().unwrap();
        // flush() waits out the copier if it has not self-published yet;
        // either way the final view must be complete and in order.
        list.flush();
        assert_eq!(collect(&list), [1, 2]);
        assert_eq!(list.expansions(), 1);
        assert!(list.capacity() >= 2);
    });
}

/// Protocol 2b — drop during migration joins the copier instead of
/// detaching it (Migration::drop), under every interleaving of the drop
/// with the copier's copy/publish steps.
#[test]
fn migration_drop_joins_copier() {
    loom::model(|| {
        let list = InvertedList::new(1, true);
        list.append(ImageId(1));
        list.append(ImageId(2)); // copier now in flight
        drop(list); // must join, not leak a model thread or deadlock
    });
}

/// Protocol 3 — `VarBuffer` byte store → `url_ref` swing → reader: a
/// reader racing a URL update must decode either the complete old URL or
/// the complete new one; the release swing of the packed word must
/// publish every byte appended before it.
#[test]
fn url_swing_publishes_bytes_before_reference() {
    loom::model(|| {
        let fwd = Arc::new(ForwardIndex::new());
        let id = fwd
            .append(&ProductAttributes::new(ProductId(1), 1, 2, 3, "old".into()))
            .unwrap();
        let updater = {
            let fwd = Arc::clone(&fwd);
            thread::spawn(move || fwd.update_url(id, "new!").unwrap())
        };
        let url = fwd.url(id).unwrap();
        assert!(
            url == "old" || url == "new!",
            "reader decoded a torn URL: {url:?}"
        );
        updater.join().unwrap();
        assert_eq!(fwd.url(id).unwrap(), "new!");
    });
}

/// Protocol 4 — bitmap flip vs. block scan: a pinned `BitmapReader` must
/// observe flips made while it is live (the rerank recheck depends on
/// this), and a raced flip pair must leave exactly the final state.
/// Capacity is pre-sized so no growth happens while the reader pins the
/// word array (growth while pinned is the one forbidden interleaving —
/// the writer would spin on the write lock until the reader drops).
#[test]
fn bitmap_flip_vs_block_scan() {
    loom::model(|| {
        let bm = Arc::new(AtomicBitmap::with_capacity(256));
        bm.set(3);
        let flipper = {
            let bm = Arc::clone(&bm);
            thread::spawn(move || {
                bm.clear(3);
                bm.set(70);
            })
        };
        {
            let r = bm.reader();
            // Any of the four combinations is a legal snapshot, but a set
            // bit the flipper never touched must always read as set.
            let _ = (r.test(3), r.test(70));
            assert!(!r.test(128), "untouched bit must read clear");
        } // reader guard drops before the join: the flipper may need set()'s read lock
        flipper.join().unwrap();
        assert!(!bm.test(3) && bm.test(70), "final state must win");
    });
}

/// Protocol 5 — `IndexHandle` swap vs. in-flight query: a snapshot taken
/// before, during, or after a swap is always one complete generation
/// (never a mix), old snapshots stay valid after the swap, and the
/// generation counter is published with the new payload.
#[test]
fn handle_swap_vs_inflight_query() {
    loom::model(|| {
        let handle = Arc::new(IndexHandle::<u64>::new(Arc::new(1u64)));
        let swapper = {
            let handle = Arc::clone(&handle);
            thread::spawn(move || {
                let old = handle.swap(Arc::new(2u64));
                assert_eq!(*old, 1, "swap must return the replaced payload");
            })
        };
        let snap = handle.get();
        assert!(*snap == 1 || *snap == 2, "snapshot mixed generations");
        if handle.generation() == 1 {
            // Generation observed ⇒ the new payload is observable too.
            assert_eq!(*handle.get(), 2);
        }
        swapper.join().unwrap();
        assert_eq!(*handle.get(), 2);
        assert_eq!(handle.generation(), 1);
        assert!(*snap == 1 || *snap == 2, "old snapshot stays valid");
    });
}
