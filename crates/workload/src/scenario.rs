//! One-call experiment worlds.
//!
//! A [`World`] is everything an experiment needs, assembled consistently:
//! shared stores, the extraction pipeline with its cost model, a
//! materialized catalog, a trained-and-loaded [`SearchTopology`], and
//! helpers for the update-stream and freshness scenarios. Examples,
//! integration tests and the `repro` harness all build on it, so every
//! figure is regenerated against the same machinery.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use jdvs_core::IndexConfig;
use jdvs_features::cost::{CostDistribution, CostModel};
use jdvs_features::{CachingExtractor, ExtractorConfig, FeatureExtractor};
use jdvs_search::topology::{SearchTopology, TopologyConfig};
use jdvs_search::SearchClient;
use jdvs_storage::model::ProductId;
use jdvs_storage::{FeatureDb, ImageStore, MessageQueue};
use jdvs_vector::Vector;

use crate::catalog::{Catalog, CatalogConfig};
use crate::events::TimedEvent;

/// How the experiment charges feature-extraction cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExtractionCost {
    /// No cost (fast tests).
    Free,
    /// Really sleep per extraction (wall-clock experiments).
    Sleep(CostDistribution),
    /// Account cost without sleeping.
    Virtual(CostDistribution),
}

/// World parameters.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Catalog shape.
    pub catalog: CatalogConfig,
    /// Serving-stack shape.
    pub topology: TopologyConfig,
    /// Extraction cost model.
    pub extraction_cost: ExtractionCost,
    /// Feature extractor settings (dim is forced to `topology.index.dim`).
    pub extractor: ExtractorConfig,
    /// Master seed.
    pub seed: u64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            catalog: CatalogConfig::default(),
            topology: TopologyConfig::default(),
            extraction_cost: ExtractionCost::Free,
            extractor: ExtractorConfig::default(),
            seed: 0x120_D07,
        }
    }
}

impl WorldConfig {
    /// A tiny fast world for unit/integration tests: small catalog, small
    /// index, 2 partitions, no latency, free extraction.
    pub fn fast_test() -> Self {
        Self {
            catalog: CatalogConfig {
                num_products: 40,
                num_clusters: 5,
                ..Default::default()
            },
            topology: TopologyConfig {
                index: IndexConfig {
                    dim: 16,
                    num_lists: 8,
                    nprobe: 8,
                    initial_list_capacity: 16,
                    ..Default::default()
                },
                num_partitions: 2,
                replicas_per_partition: 1,
                num_broker_groups: 1,
                broker_replicas: 1,
                num_blenders: 1,
                // Deterministic assertions: pure similarity ranking, so an
                // exact image match is always the top result.
                ranking: jdvs_search::RankingPolicy::similarity_only(),
                ..Default::default()
            },
            ..Default::default()
        }
    }
}

/// A running experiment world; see the module docs.
pub struct World {
    catalog: Catalog,
    images: Arc<ImageStore>,
    feature_db: Arc<FeatureDb>,
    extractor: Arc<CachingExtractor>,
    topology: SearchTopology,
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("products", &self.catalog.len())
            .field("images", &self.images.len())
            .finish()
    }
}

impl World {
    /// Builds a world: generates and materializes the catalog, extracts a
    /// training sample, stands up the topology, and bulk-loads every
    /// catalog image into its partition (the state a weekly full index
    /// would have distributed).
    ///
    /// # Panics
    ///
    /// Panics on invalid configuration.
    pub fn build(mut config: WorldConfig) -> Self {
        config.extractor.dim = config.topology.index.dim;
        let images = Arc::new(ImageStore::with_blob_len(256));
        let feature_db = Arc::new(FeatureDb::new());
        let cost = match config.extraction_cost {
            ExtractionCost::Free => CostModel::free(),
            ExtractionCost::Sleep(d) => CostModel::sleep(d, config.seed ^ 0xC057),
            ExtractionCost::Virtual(d) => CostModel::virtual_time(d, config.seed ^ 0xC057),
        };
        let extractor = Arc::new(CachingExtractor::new(
            FeatureExtractor::new(config.extractor.clone()),
            cost,
        ));

        let catalog = Catalog::generate(&config.catalog);
        catalog.materialize(&images);

        // Category detector: one prototype per visual cluster, in the same
        // normalized space as extracted features (Section 2.4's query-side
        // category identification; cluster = product family = category).
        let mut clusters: Vec<u64> = catalog.products().iter().map(|p| p.cluster).collect();
        clusters.sort_unstable();
        clusters.dedup();
        let prototypes = clusters
            .iter()
            .map(|&c| {
                let mut center = extractor.extractor().cluster_center(c);
                if config.extractor.normalize {
                    center.normalize();
                }
                (jdvs_features::category::CategoryId(c as u32), center)
            })
            .collect();
        config.topology.category_detector = Some(Arc::new(
            jdvs_features::category::CategoryDetector::new(prototypes),
        ));

        // Extract features for every catalog image once (populates the
        // feature DB — the state after the first full indexing) and use a
        // sample as quantizer training data. This bootstrap models the
        // *offline* weekly build, so it bypasses the cost model — the
        // configured extraction cost applies to query-time and real-time
        // indexing extraction only.
        let mut training: Vec<Vector> = Vec::new();
        for product in catalog.products() {
            for attrs in product.image_attributes() {
                let key = attrs.image_key();
                let blob = images.get(key).expect("catalog was materialized");
                let f = extractor.extractor().extract(&blob);
                feature_db.insert(f.clone(), attrs);
                if training.len() < config.topology.index.train_sample {
                    training.push(f);
                }
            }
        }
        assert!(
            !training.is_empty(),
            "catalog produced no trainable features"
        );

        let topology = SearchTopology::build(
            config.topology.clone(),
            Arc::clone(&extractor),
            Arc::clone(&images),
            Arc::clone(&feature_db),
            &training,
            MessageQueue::new(),
        );

        // Bulk load: every image goes straight into its partition's
        // replicas (features come from the feature DB — no re-extraction).
        let map = topology.partition_map();
        for product in catalog.products() {
            for attrs in product.image_attributes() {
                let key = attrs.image_key();
                let p = map.partition_of(key);
                let features = feature_db.features(key).expect("extracted above");
                for index in &topology.indexes()[p] {
                    index
                        .insert(features.clone(), attrs.clone())
                        .expect("bulk load insert");
                }
            }
        }
        for replicas in topology.indexes() {
            for index in replicas {
                index.flush();
            }
        }

        // The message log is the catalog's source of truth (the weekly
        // full index rebuilds from it — Figure 2), so the bootstrap state
        // must be in the log too. Real-time indexers replay these adds as
        // cheap revalidation no-ops against the bulk-loaded records.
        for event in catalog.bootstrap_events() {
            topology.publish(event);
        }
        topology.wait_for_freshness(Duration::from_secs(120));

        Self {
            catalog,
            images,
            feature_db,
            extractor,
            topology,
        }
    }

    /// The catalog (immutable view; event generation clones it).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access (the daily-event generator extends it).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// The image store.
    pub fn images(&self) -> &Arc<ImageStore> {
        &self.images
    }

    /// The feature database.
    pub fn feature_db(&self) -> &Arc<FeatureDb> {
        &self.feature_db
    }

    /// The extraction pipeline.
    pub fn extractor(&self) -> &Arc<CachingExtractor> {
        &self.extractor
    }

    /// The serving stack.
    pub fn topology(&self) -> &SearchTopology {
        &self.topology
    }

    /// Mutable serving stack access (shutdown).
    pub fn topology_mut(&mut self) -> &mut SearchTopology {
        &mut self.topology
    }

    /// A user client.
    pub fn client(&self, deadline: Duration) -> SearchClient {
        self.topology.client(deadline)
    }

    /// The visual cluster of a product (ground truth for hit-rate checks).
    pub fn cluster_of(&self, product: ProductId) -> Option<u64> {
        self.catalog
            .products()
            .iter()
            .find(|p| p.id == product)
            .map(|p| p.cluster)
    }

    /// Publishes catalog events at a steady rate on a background thread;
    /// returns a handle that stops the stream. `rate_per_sec = 0` publishes
    /// as fast as possible.
    pub fn start_update_stream(
        &self,
        events: Vec<TimedEvent>,
        rate_per_sec: u64,
    ) -> UpdateStreamHandle {
        let queue = self.topology.queue().clone();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("update-stream".into())
            .spawn(move || {
                let pause = 1_000_000_000u64
                    .checked_div(rate_per_sec)
                    .map(Duration::from_nanos)
                    .unwrap_or(Duration::ZERO);
                let mut published = 0u64;
                for te in events {
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    queue.publish(te.event);
                    published += 1;
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
                published
            })
            .expect("spawning update stream");
        UpdateStreamHandle {
            stop,
            handle: Some(handle),
        }
    }
}

/// Controls a background update stream; join to get the publish count.
#[derive(Debug)]
pub struct UpdateStreamHandle {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<u64>>,
}

impl UpdateStreamHandle {
    /// Stops the stream and returns how many events were published.
    pub fn stop(mut self) -> u64 {
        self.stop.store(true, Ordering::SeqCst);
        self.handle
            .take()
            .map(|h| h.join().unwrap_or(0))
            .unwrap_or(0)
    }

    /// Waits for the stream to publish everything.
    pub fn join(mut self) -> u64 {
        self.handle
            .take()
            .map(|h| h.join().unwrap_or(0))
            .unwrap_or(0)
    }
}

impl Drop for UpdateStreamHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{DailyPlan, DailyPlanConfig};
    use crate::queries::QueryGenerator;
    use jdvs_search::protocol::QueryInput;
    use jdvs_search::SearchQuery;

    #[test]
    fn world_bulk_loads_catalog() {
        let world = World::build(WorldConfig::fast_test());
        let total: usize = world
            .topology()
            .indexes()
            .iter()
            .flatten()
            .map(|i| i.num_images())
            .sum();
        assert_eq!(
            total,
            world.catalog().num_images(),
            "every image in exactly one partition"
        );
    }

    #[test]
    fn fresh_photo_query_hits_its_cluster() {
        let world = World::build(WorldConfig::fast_test());
        let generator = QueryGenerator::new(world.catalog(), 5);
        let client = world.client(Duration::from_secs(5));
        let mut hits = 0;
        let mut total = 0;
        for _ in 0..10 {
            let (query, cluster) = generator.next_query(world.images(), 6);
            let resp = client.search(query).unwrap();
            for r in &resp.results {
                total += 1;
                if world.cluster_of(r.hit.product_id) == Some(cluster) {
                    hits += 1;
                }
            }
        }
        assert!(total > 0);
        let rate = hits as f64 / total as f64;
        assert!(rate > 0.7, "intra-cluster hit rate too low: {rate}");
    }

    #[test]
    fn update_stream_feeds_realtime_indexing() {
        let mut world = World::build(WorldConfig::fast_test());
        let store = Arc::clone(world.images());
        let plan = DailyPlan::generate(
            world.catalog_mut(),
            &store,
            &DailyPlanConfig {
                total_events: 200,
                seed: 3,
                ..Default::default()
            },
        );
        let before: u64 = world
            .topology()
            .indexes()
            .iter()
            .flatten()
            .map(|i| i.stats().total_mutations())
            .sum();
        let handle = world.start_update_stream(plan.events().to_vec(), 0);
        assert_eq!(handle.join(), 200);
        world.topology().wait_for_freshness(Duration::from_secs(30));
        let after: u64 = world
            .topology()
            .indexes()
            .iter()
            .flatten()
            .map(|i| i.stats().total_mutations())
            .sum();
        assert!(after > before, "events must reach the indexes");
    }

    #[test]
    fn update_stream_can_be_stopped_early() {
        let world = World::build(WorldConfig::fast_test());
        let events: Vec<TimedEvent> = (0..10_000)
            .map(|_| TimedEvent {
                hour: 0,
                event: world.catalog().products()[0].add_event(),
            })
            .collect();
        let handle = world.start_update_stream(events, 1_000); // 1k/s → 10s total
        std::thread::sleep(Duration::from_millis(100));
        let published = handle.stop();
        assert!(
            published < 10_000,
            "stream should stop early, published {published}"
        );
    }

    #[test]
    fn query_category_is_detected() {
        let world = World::build(WorldConfig::fast_test());
        let client = world.client(Duration::from_secs(5));
        let generator = QueryGenerator::new(world.catalog(), 8);
        let mut correct = 0;
        for _ in 0..10 {
            let (query, cluster) = generator.next_query(world.images(), 1);
            let resp = client.search(query).unwrap();
            if resp.detected_category == Some(cluster as u32) {
                correct += 1;
            }
        }
        assert!(
            correct >= 9,
            "category detection accuracy too low: {correct}/10"
        );
    }

    #[test]
    fn searching_an_indexed_image_url_finds_its_product() {
        let world = World::build(WorldConfig::fast_test());
        let client = world.client(Duration::from_secs(5));
        let product = &world.catalog().products()[3];
        let url = product.urls[0].clone();
        let resp = client
            .search(SearchQuery::by_image_url(url.clone(), 1))
            .unwrap();
        assert_eq!(
            resp.results[0].hit.product_id, product.id,
            "exact image match wins"
        );
        // Sanity: the query really went through the URL path.
        match SearchQuery::by_image_url(url, 1).input {
            QueryInput::ImageUrl(_) => {}
            _ => panic!(),
        }
    }
}
