//! Runtime fault injection.
//!
//! The paper's availability story — *"each partition can have multiple
//! copies"*, *"each broker has multiple identical instances for load
//! balancing and fault tolerance"* — is only demonstrable if nodes can
//! fail. [`FaultInjector`] is consulted by [`crate::node::NodeHandle`] on
//! every call and can, at runtime: drop a fraction of requests, report the
//! node as down, or slow calls by an extra delay (straggler simulation).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use crate::latency::NetRng;
use crate::rpc::RpcError;

/// Per-node fault controls; cheap to consult, togglable at runtime.
#[derive(Debug)]
pub struct FaultInjector {
    /// Probability in `[0, 1]` (scaled by 1e9) of dropping a request.
    drop_ppb: AtomicU64,
    /// Treat the node as crashed.
    down: AtomicBool,
    /// Extra delay added to every call, in microseconds.
    slow_us: AtomicU64,
    rng: Mutex<NetRng>,
}

impl FaultInjector {
    /// Creates an injector with all faults disabled.
    pub fn new(seed: u64) -> Self {
        Self {
            drop_ppb: AtomicU64::new(0),
            down: AtomicBool::new(false),
            slow_us: AtomicU64::new(0),
            rng: Mutex::new(NetRng::new(seed)),
        }
    }

    /// Sets the request drop probability (clamped to `[0, 1]`).
    pub fn set_drop_probability(&self, p: f64) {
        let p = p.clamp(0.0, 1.0);
        self.drop_ppb.store((p * 1e9) as u64, Ordering::Relaxed);
    }

    /// Marks the node crashed (`true`) or recovered (`false`).
    pub fn set_down(&self, down: bool) {
        self.down.store(down, Ordering::Relaxed);
    }

    /// Whether the node is currently marked down.
    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::Relaxed)
    }

    /// Adds an extra per-call delay (straggler); `Duration::ZERO` clears.
    pub fn set_slowdown(&self, extra: Duration) {
        self.slow_us.store(
            extra.as_micros().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
    }

    /// Consulted per call: returns the fault to apply, or the extra delay
    /// to charge (possibly zero).
    pub fn check(&self) -> Result<Duration, RpcError> {
        if self.is_down() {
            return Err(RpcError::NodeDown);
        }
        let ppb = self.drop_ppb.load(Ordering::Relaxed);
        if ppb > 0 {
            let roll = (self.rng.lock().next_f64() * 1e9) as u64;
            if roll < ppb {
                return Err(RpcError::Dropped);
            }
        }
        Ok(Duration::from_micros(self.slow_us.load(Ordering::Relaxed)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_injects_nothing() {
        let f = FaultInjector::new(1);
        assert_eq!(f.check(), Ok(Duration::ZERO));
        assert!(!f.is_down());
    }

    #[test]
    fn down_blocks_everything() {
        let f = FaultInjector::new(1);
        f.set_down(true);
        assert_eq!(f.check(), Err(RpcError::NodeDown));
        f.set_down(false);
        assert_eq!(f.check(), Ok(Duration::ZERO));
    }

    #[test]
    fn drop_probability_is_roughly_honored() {
        let f = FaultInjector::new(2);
        f.set_drop_probability(0.3);
        let drops = (0..10_000)
            .filter(|_| f.check() == Err(RpcError::Dropped))
            .count();
        assert!(
            (2_500..3_500).contains(&drops),
            "expected ~3000 drops, got {drops}"
        );
    }

    #[test]
    fn drop_probability_one_drops_all() {
        let f = FaultInjector::new(3);
        f.set_drop_probability(1.0);
        for _ in 0..100 {
            assert_eq!(f.check(), Err(RpcError::Dropped));
        }
    }

    #[test]
    fn probability_is_clamped() {
        let f = FaultInjector::new(4);
        f.set_drop_probability(7.5); // clamped to 1.0
        assert_eq!(f.check(), Err(RpcError::Dropped));
        f.set_drop_probability(-1.0); // clamped to 0.0
        assert_eq!(f.check(), Ok(Duration::ZERO));
    }

    #[test]
    fn slowdown_is_reported() {
        let f = FaultInjector::new(5);
        f.set_slowdown(Duration::from_micros(250));
        assert_eq!(f.check(), Ok(Duration::from_micros(250)));
        f.set_slowdown(Duration::ZERO);
        assert_eq!(f.check(), Ok(Duration::ZERO));
    }
}
