//! Offline shim for the subset of `bytes` used in this workspace: a cheaply
//! cloneable, immutable byte buffer.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    pub fn new() -> Self {
        Self(Arc::from(&[][..]))
    }

    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self(Arc::from(bytes))
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self(Arc::from(data))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn as_ref(&self) -> &[u8] {
        &self.0
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Self(Arc::from(v))
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Self(Arc::from(v.as_bytes()))
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_clones_cheaply() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(c.len(), 3);
        assert_eq!(&*c, &[1, 2, 3]);
        assert_eq!(Bytes::from_static(b"abc").to_vec(), b"abc".to_vec());
    }
}
