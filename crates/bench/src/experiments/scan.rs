//! The execution-engine experiment: per-query latency of the searcher's
//! inverted-list scan across engine generations.
//!
//! Four variants over the same populated index and query set:
//!
//! - `scalar-per-id` — the pre-engine scan: per-id callbacks, two lock
//!   acquisitions per candidate, forced scalar kernel (the baseline the
//!   issue's ≥2x acceptance bar is measured against).
//! - `dispatched-per-id` — same scan shape, SIMD-dispatched kernel
//!   (isolates the kernel win from the memory-path win).
//! - `engine-1-thread` — block scan + pinned snapshots + threshold-pruned
//!   top-k, sequential.
//! - `engine-N-threads` — the same with intra-query fan-out enabled.
//!
//! Every variant's results are differentially checked against the
//! reference scan before timing starts; a mismatch fails the experiment.

use std::time::Instant;

use jdvs_core::search;
use jdvs_core::{IndexConfig, VisualIndex};
use jdvs_storage::model::{ImageKey, ProductAttributes, ProductId};
use jdvs_vector::rng::Xoshiro256;
use jdvs_vector::simd;
use jdvs_vector::Vector;

use crate::report::ExperimentResult;
use crate::row;

use super::Ctx;

const DIM: usize = 64;
const NUM_LISTS: usize = 128;
const K: usize = 10;
const NPROBE: usize = 16;
const THREADS: usize = 4;

/// Per-query mean latency of `f` over `queries`, repeated `repeats` times.
fn measure(queries: &[Vector], repeats: usize, mut f: impl FnMut(&[f32]) -> usize) -> f64 {
    let mut sink = 0usize;
    let t0 = Instant::now();
    for _ in 0..repeats {
        for q in queries {
            sink = sink.wrapping_add(f(q.as_slice()));
        }
    }
    let elapsed = t0.elapsed();
    assert!(sink > 0, "scan returned no results");
    elapsed.as_secs_f64() * 1e6 / (repeats * queries.len()) as f64
}

/// `searcher-scan`: block execution engine vs the pre-engine scalar scan.
pub fn searcher_scan(ctx: &Ctx) -> ExperimentResult {
    let n_images = ctx.scaled(30_000, 3_000);
    let mut rng = Xoshiro256::seed_from(0x5CA7);
    let data: Vec<Vector> = (0..n_images)
        .map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect())
        .collect();
    let index = VisualIndex::bootstrap(
        IndexConfig {
            dim: DIM,
            num_lists: NUM_LISTS,
            initial_list_capacity: 64,
            kmeans_iters: 6,
            ..Default::default()
        },
        &data,
    );
    for (i, v) in data.iter().enumerate() {
        index
            .insert(
                v.clone(),
                ProductAttributes::new(ProductId(i as u64), 0, 0, 0, format!("scan/u{i}")),
            )
            .expect("insert");
    }
    index.flush();
    // 5% logical deletions so the validity filter is on the measured path.
    for i in (0..n_images).step_by(20) {
        let url = format!("scan/u{i}");
        index
            .invalidate(ImageKey::from_url(&url), &url)
            .expect("invalidate");
    }
    let queries: Vec<Vector> = (0..50)
        .map(|i| data[(i * 131) % n_images].clone())
        .collect();

    // Differential check before timing: every variant returns the
    // reference scan's ids (the engine bit-exactly; the scalar baseline's
    // kernel may differ in the last ulp, so ids only).
    for q in &queries {
        let reference = search::ann_search_reference(&index, q.as_slice(), K, NPROBE);
        let engine = search::ann_search_with_threads(&index, q.as_slice(), K, NPROBE, 1);
        assert_eq!(engine, reference, "engine diverged from reference");
        let fanned = search::ann_search_with_threads(&index, q.as_slice(), K, NPROBE, THREADS);
        assert_eq!(fanned, reference, "parallel engine diverged");
        let baseline_ids: Vec<u64> =
            search::ann_search_scalar_baseline(&index, q.as_slice(), K, NPROBE)
                .into_iter()
                .map(|n| n.id)
                .collect();
        let reference_ids: Vec<u64> = reference.into_iter().map(|n| n.id).collect();
        assert_eq!(baseline_ids, reference_ids, "baseline diverged on ids");
    }

    let repeats = if ctx.quick { 10 } else { 40 };
    let baseline_us = measure(&queries, repeats, |q| {
        search::ann_search_scalar_baseline(&index, q, K, NPROBE).len()
    });
    let dispatched_us = measure(&queries, repeats, |q| {
        search::ann_search_reference(&index, q, K, NPROBE).len()
    });
    let engine_us = measure(&queries, repeats, |q| {
        search::ann_search_with_threads(&index, q, K, NPROBE, 1).len()
    });
    let fanned_us = measure(&queries, repeats, |q| {
        search::ann_search_with_threads(&index, q, K, NPROBE, THREADS).len()
    });

    let mut r = ExperimentResult::new(
        "searcher-scan",
        "Inverted-list scan latency: block execution engine vs per-id scalar scan",
        "Section 2.4: the searcher scans the probed clusters' lists and ranks by Euclidean distance",
    );
    for (variant, us) in [
        ("scalar-per-id", baseline_us),
        ("dispatched-per-id", dispatched_us),
        ("engine-1-thread", engine_us),
        (&format!("engine-{THREADS}-threads"), fanned_us),
    ] {
        r.push_row(row![
            "variant" => variant,
            "mean_us_per_query" => format!("{us:.1}"),
            "speedup_vs_baseline" => format!("{:.2}", baseline_us / us),
        ]);
    }
    r.note(format!(
        "{n_images} images, dim {DIM}, {NUM_LISTS} lists, nprobe {NPROBE}, k {K}, 5% deleted; active kernel: {}",
        simd::active().name()
    ));
    r.note(format!(
        "single-thread engine speedup over pre-engine scalar scan: {:.2}x (acceptance bar: >= 2x)",
        baseline_us / engine_us
    ));
    r.note(
        "all variants differentially checked against the reference scan before timing".to_string(),
    );
    r
}
