//! Last-value gauges (watermarks, lag, sizes).
//!
//! A [`Counter`](crate::Counter) only goes up; a [`Gauge`] records the
//! *current* value of something — an applied-offset watermark, a queue
//! depth, a segment count. `set_max` supports high-watermark semantics
//! where concurrent writers may report out of order.

use std::sync::atomic::{AtomicU64, Ordering};

/// A thread-safe last-value gauge.
///
/// # Example
///
/// ```
/// use jdvs_metrics::Gauge;
///
/// let g = Gauge::new();
/// g.set(7);
/// g.set_max(3); // lower values do not regress a high watermark
/// assert_eq!(g.get(), 7);
/// g.set_max(11);
/// assert_eq!(g.get(), 11);
/// ```
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the current value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger (high-watermark update;
    /// safe under concurrent out-of-order reporters).
    pub fn set_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl Clone for Gauge {
    fn clone(&self) -> Self {
        let g = Gauge::new();
        g.set(self.get());
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0);
        g.set(42);
        assert_eq!(g.get(), 42);
        g.set(7);
        assert_eq!(g.get(), 7, "plain set may go down");
    }

    #[test]
    fn set_max_is_monotonic() {
        let g = Gauge::new();
        g.set_max(10);
        g.set_max(5);
        assert_eq!(g.get(), 10);
        g.set_max(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn concurrent_set_max_keeps_the_maximum() {
        use std::sync::Arc;
        let g = Arc::new(Gauge::new());
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        g.set_max(t * 1_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(g.get(), 3_999);
    }

    #[test]
    fn clone_copies_value() {
        let g = Gauge::new();
        g.set(9);
        assert_eq!(g.clone().get(), 9);
    }
}
