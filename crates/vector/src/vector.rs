//! Owned dense feature vectors.
//!
//! A [`Vector`] is the unit of data flowing through the whole system: the
//! feature extractor produces one per image, the feature database stores
//! them, the IVF index assigns them to inverted lists, and searchers compare
//! them against queries.

use serde::{Deserialize, Serialize};

/// An owned, dense `f32` feature vector.
///
/// The in-memory representation is a plain `Vec<f32>`; the wrapper exists so
/// that vector-level operations (norms, normalization, distance helpers)
/// have an obvious home and so the rest of the system never confuses a
/// feature vector with an arbitrary float buffer.
///
/// # Example
///
/// ```
/// use jdvs_vector::Vector;
///
/// let mut v = Vector::from(vec![3.0, 4.0]);
/// assert_eq!(v.dim(), 2);
/// assert!((v.norm() - 5.0).abs() < 1e-6);
/// v.normalize();
/// assert!((v.norm() - 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Vector {
    data: Vec<f32>,
}

impl Vector {
    /// Creates a zero vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        Self {
            data: vec![0.0; dim],
        }
    }

    /// Returns the dimensionality.
    pub fn dim(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the vector has no components.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the components as a slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the components.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the vector, returning the underlying buffer.
    pub fn into_inner(self) -> Vec<f32> {
        self.data
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Squared Euclidean norm (avoids the square root).
    pub fn squared_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Scales the vector to unit L2 norm. A zero vector is left unchanged
    /// (there is no direction to preserve).
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            for x in &mut self.data {
                *x /= n;
            }
        }
    }

    /// Returns a unit-norm copy; see [`Vector::normalize`].
    pub fn normalized(&self) -> Self {
        let mut out = self.clone();
        out.normalize();
        out
    }

    /// Adds `other` component-wise.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn add_assign(&mut self, other: &Vector) {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Multiplies every component by `s`.
    pub fn scale(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Serializes the components to little-endian bytes (4 bytes per
    /// component). Used by the feature database's compact storage format.
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len() * 4);
        for x in &self.data {
            out.extend_from_slice(&x.to_le_bytes());
        }
        out
    }

    /// Deserializes from the little-endian byte format produced by
    /// [`Vector::to_le_bytes`].
    ///
    /// Returns `None` if `bytes.len()` is not a multiple of 4.
    pub fn from_le_bytes(bytes: &[u8]) -> Option<Self> {
        if !bytes.len().is_multiple_of(4) {
            return None;
        }
        let data = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        Some(Self { data })
    }
}

impl From<Vec<f32>> for Vector {
    fn from(data: Vec<f32>) -> Self {
        Self { data }
    }
}

impl From<&[f32]> for Vector {
    fn from(data: &[f32]) -> Self {
        Self {
            data: data.to_vec(),
        }
    }
}

impl AsRef<[f32]> for Vector {
    fn as_ref(&self) -> &[f32] {
        &self.data
    }
}

impl FromIterator<f32> for Vector {
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        Self {
            data: iter.into_iter().collect(),
        }
    }
}

impl std::ops::Index<usize> for Vector {
    type Output = f32;

    fn index(&self, i: usize) -> &f32 {
        &self.data[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_zero_norm() {
        let v = Vector::zeros(16);
        assert_eq!(v.dim(), 16);
        assert_eq!(v.norm(), 0.0);
    }

    #[test]
    fn norm_matches_pythagoras() {
        let v = Vector::from(vec![3.0, 4.0]);
        assert!((v.norm() - 5.0).abs() < 1e-6);
        assert!((v.squared_norm() - 25.0).abs() < 1e-6);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut v = Vector::zeros(4);
        v.normalize();
        assert_eq!(v.as_slice(), &[0.0; 4]);
    }

    #[test]
    fn normalized_has_unit_norm() {
        let v = Vector::from(vec![1.0, 2.0, 3.0]).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn add_and_scale() {
        let mut a = Vector::from(vec![1.0, 2.0]);
        a.add_assign(&Vector::from(vec![3.0, 4.0]));
        assert_eq!(a.as_slice(), &[4.0, 6.0]);
        a.scale(0.5);
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn add_dim_mismatch_panics() {
        let mut a = Vector::from(vec![1.0]);
        a.add_assign(&Vector::from(vec![1.0, 2.0]));
    }

    #[test]
    fn byte_round_trip() {
        let v = Vector::from(vec![0.25, -1.5, 3.25e7, f32::MIN_POSITIVE]);
        let bytes = v.to_le_bytes();
        assert_eq!(bytes.len(), 16);
        let back = Vector::from_le_bytes(&bytes).expect("valid byte length");
        assert_eq!(back, v);
    }

    #[test]
    fn from_le_bytes_rejects_ragged_input() {
        assert!(Vector::from_le_bytes(&[0, 1, 2]).is_none());
    }

    #[test]
    fn collect_from_iterator() {
        let v: Vector = (0..4).map(|i| i as f32).collect();
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn index_access() {
        let v = Vector::from(vec![5.0, 7.0]);
        assert_eq!(v[1], 7.0);
    }
}
