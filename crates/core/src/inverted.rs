//! The real-time inverted index (Figures 5, 8 and 9).
//!
//! The index is `N` inverted lists, one per k-means cluster. Each list is a
//! **pre-allocated slab** of image-id slots plus an atomic count of
//! published entries — the per-list "position of the last element" that the
//! paper keeps in an auxiliary array (Figure 5). An append writes the slot,
//! then bumps the count with release ordering; concurrent searches load the
//! count with acquire ordering and scan exactly the published prefix. No
//! locks on either path.
//!
//! **Expansion** (Figure 9): when a slab fills, a slab of **double size**
//! is allocated. New image ids are appended into the new slab while *"the
//! current inverted list continues to serve the requests until a background
//! process finishes copying all the content of the current list to the new
//! list. When the copy operation completes, the newly created inverted list
//! becomes the current one and the old one is deleted."* Exactly that
//! protocol is implemented here: searches keep reading the old slab during
//! the copy; entries appended during the window become visible at the atomic
//! swap. `background_copy: false` gives the inline-copy ablation baseline.

use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::ids::{ImageId, ListId};

/// Ids per [`InvertedList::scan_blocks`] batch. Sized so a block of ids plus
/// the distances computed from it stay L1-resident while amortizing the
/// per-block bookkeeping over enough candidates to be negligible.
pub const SCAN_BLOCK: usize = 256;

/// A fixed-capacity array of image-id slots with a published-length counter.
#[derive(Debug)]
pub struct Slab {
    slots: Box<[AtomicU64]>,
    len: AtomicUsize,
}

impl Slab {
    fn new(capacity: usize) -> Self {
        // `vec![0u64; n]` allocates through calloc, which hands back
        // lazily-zeroed pages in O(1); element-wise `AtomicU64::new(0)`
        // construction would touch every slot on the writer path and make
        // "allocate the double-size list" cost O(n) at expansion time —
        // exactly the stall Figure 9's protocol exists to avoid.
        let zeroed: Box<[u64]> = vec![0u64; capacity].into_boxed_slice();
        // SAFETY: `AtomicU64` is `repr(C)` with the same size and alignment
        // as `u64` (guaranteed by std), and the all-zero bit pattern is a
        // valid `AtomicU64`. Ownership transfers through the raw pointer
        // without aliasing.
        let slots = unsafe {
            let raw: *mut [u64] = Box::into_raw(zeroed);
            Box::from_raw(raw as *mut [AtomicU64])
        };
        Self {
            slots,
            len: AtomicUsize::new(0),
        }
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Published entries.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Returns `true` if no entry is published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Writer-side state of an in-flight expansion.
struct Migration {
    new_slab: Arc<Slab>,
    /// Next free position in the new slab (old contents occupy `[0, base)`;
    /// the copier fills that prefix while we append at `base..`).
    next_pos: usize,
    copy_done: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// One inverted list; see the module docs.
pub struct InvertedList {
    current: RwLock<Arc<Slab>>,
    writer: Mutex<Option<Migration>>,
    background_copy: bool,
    expansions: AtomicU64,
}

impl std::fmt::Debug for InvertedList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let slab = self.current.read();
        f.debug_struct("InvertedList")
            .field("len", &slab.len())
            .field("capacity", &slab.capacity())
            .field("expansions", &self.expansions.load(Ordering::Relaxed))
            .finish()
    }
}

impl InvertedList {
    /// Creates a list with `initial_capacity` pre-allocated slots.
    ///
    /// # Panics
    ///
    /// Panics if `initial_capacity == 0`.
    pub fn new(initial_capacity: usize, background_copy: bool) -> Self {
        assert!(initial_capacity > 0, "initial capacity must be positive");
        Self {
            current: RwLock::new(Arc::new(Slab::new(initial_capacity))),
            writer: Mutex::new(None),
            background_copy,
            expansions: AtomicU64::new(0),
        }
    }

    /// Appends an image id. Safe to call from one writer at a time per
    /// list (the owning searcher); concurrent with any number of scans.
    pub fn append(&self, id: ImageId) {
        let mut writer = self.writer.lock();
        loop {
            // Finish a completed migration first so appends land normally.
            if let Some(m) = writer.as_mut() {
                if m.copy_done.load(Ordering::Acquire) {
                    Self::finish_migration(&self.current, writer.take().expect("checked above"));
                    continue;
                }
                // Migration still copying: append into the new slab's tail.
                if m.next_pos < m.new_slab.capacity() {
                    m.new_slab.slots[m.next_pos].store(id.as_u64(), Ordering::Relaxed);
                    m.next_pos += 1;
                    return;
                }
                // New slab filled before the copy finished (pathological:
                // capacity doubled, so the writer outran a whole copy).
                // Wait for the copy, publish, and retry.
                let m = writer.take().expect("checked above");
                Self::wait_and_finish(&self.current, m);
                continue;
            }
            let slab = Arc::clone(&self.current.read());
            let len = slab.len.load(Ordering::Relaxed);
            if len < slab.capacity() {
                slab.slots[len].store(id.as_u64(), Ordering::Relaxed);
                slab.len.store(len + 1, Ordering::Release);
                return;
            }
            // Full: start an expansion, then loop to append via migration.
            *writer = Some(self.start_migration(&slab));
        }
    }

    fn start_migration(&self, old: &Arc<Slab>) -> Migration {
        self.expansions.fetch_add(1, Ordering::Relaxed);
        let old_len = old.len();
        let new_slab = Arc::new(Slab::new((old.capacity() * 2).max(1)));
        let copy_done = Arc::new(AtomicBool::new(false));
        let copy = {
            let old = Arc::clone(old);
            let new_slab = Arc::clone(&new_slab);
            let copy_done = Arc::clone(&copy_done);
            move || {
                for i in 0..old_len {
                    new_slab.slots[i]
                        .store(old.slots[i].load(Ordering::Relaxed), Ordering::Relaxed);
                }
                copy_done.store(true, Ordering::Release);
            }
        };
        let handle = if self.background_copy {
            Some(std::thread::spawn(copy))
        } else {
            copy();
            None
        };
        Migration {
            new_slab,
            next_pos: old_len,
            copy_done,
            handle,
        }
    }

    /// Publishes a finished migration: set the new slab's length to cover
    /// both the copied prefix and the appended tail, then atomically make
    /// it current. The old slab is dropped when its last reader releases
    /// its `Arc` — "the old one is deleted", without blocking anyone.
    fn finish_migration(current: &RwLock<Arc<Slab>>, mut m: Migration) {
        debug_assert!(m.copy_done.load(Ordering::Acquire));
        if let Some(h) = m.handle.take() {
            let _ = h.join();
        }
        m.new_slab.len.store(m.next_pos, Ordering::Release);
        *current.write() = m.new_slab;
    }

    fn wait_and_finish(current: &RwLock<Arc<Slab>>, mut m: Migration) {
        if let Some(h) = m.handle.take() {
            let _ = h.join();
        } else {
            while !m.copy_done.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        }
        Self::finish_migration(current, m);
    }

    /// Completes any in-flight expansion, waiting for the background copy.
    /// The real-time indexer calls this when the message queue goes idle so
    /// recently appended ids become searchable without waiting for the next
    /// append.
    pub fn flush(&self) {
        let mut writer = self.writer.lock();
        if let Some(m) = writer.take() {
            Self::wait_and_finish(&self.current, m);
        }
    }

    /// Calls `f` with every published image id (a lock-free snapshot scan:
    /// entries appended after the scan starts may or may not be seen).
    pub fn scan(&self, mut f: impl FnMut(ImageId)) {
        let slab = Arc::clone(&self.current.read());
        let len = slab.len();
        for slot in &slab.slots[..len] {
            f(ImageId(slot.load(Ordering::Relaxed) as u32));
        }
    }

    /// Calls `f` with contiguous blocks of up to [`SCAN_BLOCK`] published
    /// image ids, in append order — the batched form of [`Self::scan`].
    /// Handing the execution engine a dense `&[ImageId]` lets it test the
    /// validity bitmap, resolve vectors, and compute distances over a whole
    /// block between branch points instead of bouncing through a callback
    /// per id. Same snapshot semantics as `scan`.
    pub fn scan_blocks(&self, mut f: impl FnMut(&[ImageId])) {
        let slab = Arc::clone(&self.current.read());
        let len = slab.len();
        let mut block = [ImageId(0); SCAN_BLOCK];
        let mut start = 0;
        while start < len {
            let n = SCAN_BLOCK.min(len - start);
            for (dst, slot) in block[..n].iter_mut().zip(&slab.slots[start..start + n]) {
                *dst = ImageId(slot.load(Ordering::Relaxed) as u32);
            }
            f(&block[..n]);
            start += n;
        }
    }

    /// Published entry count — this list's element of the paper's auxiliary
    /// last-position array.
    pub fn len(&self) -> usize {
        self.current.read().len()
    }

    /// Returns `true` if no entry is published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current slab capacity.
    pub fn capacity(&self) -> usize {
        self.current.read().capacity()
    }

    /// Number of expansions performed.
    pub fn expansions(&self) -> u64 {
        self.expansions.load(Ordering::Relaxed)
    }
}

/// The `N`-list inverted index.
#[derive(Debug)]
pub struct InvertedIndex {
    lists: Vec<InvertedList>,
}

impl InvertedIndex {
    /// Creates `num_lists` lists with `initial_capacity` slots each.
    ///
    /// # Panics
    ///
    /// Panics if `num_lists == 0` or `initial_capacity == 0`.
    pub fn new(num_lists: usize, initial_capacity: usize, background_copy: bool) -> Self {
        assert!(num_lists > 0, "num_lists must be positive");
        Self {
            lists: (0..num_lists)
                .map(|_| InvertedList::new(initial_capacity, background_copy))
                .collect(),
        }
    }

    /// Number of lists (`N`).
    pub fn num_lists(&self) -> usize {
        self.lists.len()
    }

    /// Appends `id` to list `list`.
    ///
    /// # Panics
    ///
    /// Panics if `list` is out of range.
    pub fn append(&self, list: ListId, id: ImageId) {
        self.lists[list.as_usize()].append(id);
    }

    /// Scans list `list`.
    ///
    /// # Panics
    ///
    /// Panics if `list` is out of range.
    pub fn scan(&self, list: ListId, f: impl FnMut(ImageId)) {
        self.lists[list.as_usize()].scan(f);
    }

    /// Scans list `list` in blocks; see [`InvertedList::scan_blocks`].
    ///
    /// # Panics
    ///
    /// Panics if `list` is out of range.
    pub fn scan_blocks(&self, list: ListId, f: impl FnMut(&[ImageId])) {
        self.lists[list.as_usize()].scan_blocks(f);
    }

    /// Borrow a list.
    ///
    /// # Panics
    ///
    /// Panics if `list` is out of range.
    pub fn list(&self, list: ListId) -> &InvertedList {
        &self.lists[list.as_usize()]
    }

    /// Completes all in-flight expansions.
    pub fn flush(&self) {
        for l in &self.lists {
            l.flush();
        }
    }

    /// The auxiliary array: each list's published last-element position.
    pub fn aux_positions(&self) -> Vec<usize> {
        self.lists.iter().map(InvertedList::len).collect()
    }

    /// Total entries across lists.
    pub fn total_entries(&self) -> usize {
        self.lists.iter().map(InvertedList::len).sum()
    }

    /// Total expansions across lists.
    pub fn total_expansions(&self) -> u64 {
        self.lists.iter().map(InvertedList::expansions).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc as StdArc;

    fn collect(list: &InvertedList) -> Vec<u32> {
        let mut out = Vec::new();
        list.scan(|id| out.push(id.0));
        out
    }

    #[test]
    fn append_then_scan_in_order() {
        let list = InvertedList::new(8, false);
        for i in 0..5 {
            list.append(ImageId(i));
        }
        assert_eq!(collect(&list), vec![0, 1, 2, 3, 4]);
        assert_eq!(list.len(), 5);
        assert_eq!(list.capacity(), 8);
        assert_eq!(list.expansions(), 0);
    }

    #[test]
    fn inline_expansion_doubles_capacity_and_preserves_order() {
        let list = InvertedList::new(4, false);
        for i in 0..20 {
            list.append(ImageId(i));
        }
        list.flush();
        assert_eq!(collect(&list), (0..20).collect::<Vec<_>>());
        assert!(list.capacity() >= 20);
        assert!(list.expansions() >= 2);
    }

    #[test]
    fn background_expansion_preserves_all_entries() {
        let list = InvertedList::new(4, true);
        for i in 0..1_000 {
            list.append(ImageId(i));
        }
        list.flush();
        assert_eq!(collect(&list), (0..1_000).collect::<Vec<_>>());
    }

    #[test]
    fn entries_appended_during_migration_become_visible_after_flush() {
        let list = InvertedList::new(2, true);
        list.append(ImageId(0));
        list.append(ImageId(1));
        // This append triggers expansion; the id may be invisible until the
        // swap happens.
        list.append(ImageId(2));
        list.flush();
        assert_eq!(collect(&list), vec![0, 1, 2]);
    }

    #[test]
    fn old_slab_serves_reads_during_migration() {
        // With background copy, immediately after the expansion-triggering
        // append the *published* view must still contain the old prefix.
        let list = InvertedList::new(2, true);
        list.append(ImageId(0));
        list.append(ImageId(1));
        list.append(ImageId(2)); // starts migration
        let seen = collect(&list);
        assert!(
            seen == vec![0, 1] || seen == vec![0, 1, 2],
            "old prefix always visible: {seen:?}"
        );
        list.flush();
        assert_eq!(collect(&list), vec![0, 1, 2]);
    }

    #[test]
    fn scan_blocks_matches_scan_across_block_boundaries() {
        // 0, 1, SCAN_BLOCK - 1, SCAN_BLOCK, exact multiples, and a ragged
        // tail all reduce to the same id sequence as the per-id scan.
        for n in [0usize, 1, SCAN_BLOCK - 1, SCAN_BLOCK, SCAN_BLOCK * 3, 1000] {
            let list = InvertedList::new(8, false);
            for i in 0..n {
                list.append(ImageId(i as u32 * 7));
            }
            list.flush();
            let per_id = collect(&list);
            let mut blocked = Vec::new();
            let mut max_block = 0;
            list.scan_blocks(|ids| {
                assert!(!ids.is_empty(), "empty blocks are never emitted");
                max_block = max_block.max(ids.len());
                blocked.extend(ids.iter().map(|id| id.0));
            });
            assert_eq!(blocked, per_id, "n = {n}");
            assert!(max_block <= SCAN_BLOCK);
        }
    }

    #[test]
    fn flush_without_migration_is_noop() {
        let list = InvertedList::new(4, true);
        list.append(ImageId(9));
        list.flush();
        assert_eq!(collect(&list), vec![9]);
    }

    #[test]
    fn concurrent_scans_during_appends_see_consistent_prefixes() {
        let list = StdArc::new(InvertedList::new(8, true));
        let stop = StdArc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let list = StdArc::clone(&list);
                let stop = StdArc::clone(&stop);
                std::thread::spawn(move || {
                    let mut max_seen = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let ids = {
                            let mut v = Vec::new();
                            list.scan(|id| v.push(id.0));
                            v
                        };
                        // Prefix property: entries are exactly 0..n in order.
                        for (i, &id) in ids.iter().enumerate() {
                            assert_eq!(id as usize, i, "scan must be a dense prefix");
                        }
                        // Monotonicity within one reader *between* swaps is
                        // not guaranteed mid-migration (paper semantics);
                        // but the final view must be complete.
                        max_seen = max_seen.max(ids.len());
                    }
                    max_seen
                })
            })
            .collect();
        for i in 0..50_000u32 {
            list.append(ImageId(i));
        }
        list.flush();
        stop.store(true, Ordering::Relaxed);
        for h in readers {
            h.join().unwrap();
        }
        assert_eq!(collect(&list), (0..50_000).collect::<Vec<_>>());
        assert!(list.expansions() > 0);
    }

    #[test]
    fn index_routes_to_lists() {
        let idx = InvertedIndex::new(4, 8, false);
        idx.append(ListId(0), ImageId(1));
        idx.append(ListId(0), ImageId(2));
        idx.append(ListId(3), ImageId(9));
        assert_eq!(idx.num_lists(), 4);
        assert_eq!(idx.aux_positions(), vec![2, 0, 0, 1]);
        assert_eq!(idx.total_entries(), 3);
        let mut seen = HashSet::new();
        idx.scan(ListId(0), |id| {
            seen.insert(id.0);
        });
        assert_eq!(seen, HashSet::from([1, 2]));
    }

    #[test]
    fn index_flush_completes_all_lists() {
        let idx = InvertedIndex::new(2, 2, true);
        for i in 0..10 {
            idx.append(ListId(0), ImageId(i));
            idx.append(ListId(1), ImageId(100 + i));
        }
        idx.flush();
        assert_eq!(idx.total_entries(), 20);
        assert!(idx.total_expansions() >= 2);
    }

    #[test]
    #[should_panic(expected = "num_lists must be positive")]
    fn zero_lists_panics() {
        InvertedIndex::new(0, 4, false);
    }

    #[test]
    #[should_panic(expected = "initial capacity must be positive")]
    fn zero_capacity_panics() {
        InvertedList::new(0, false);
    }
}
