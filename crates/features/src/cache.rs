//! The feature-reuse optimisation.
//!
//! Section 2.1: *"Our system always checks if an image's features have been
//! previously extracted to avoid the repeated feature extraction."* On the
//! measured day this path served 513 M of 521 M additions — reuse, not
//! extraction, is the common case.
//!
//! [`CachingExtractor`] composes the three pieces the paper names: the
//! image store (blob source), the feature database (the KV-backed dedup
//! check and feature storage), and the extractor plus its cost model. Reuse
//! can be disabled to run the `ablate-reuse` experiment.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use jdvs_storage::model::{ImageKey, ProductAttributes};
use jdvs_storage::{FeatureDb, ImageStore};
use jdvs_vector::Vector;

use crate::cost::CostModel;
use crate::extractor::FeatureExtractor;

/// Outcome of a feature request, for statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchOutcome {
    /// Features were found in the feature database (reuse).
    Reused,
    /// Features were freshly extracted (cost charged).
    Extracted,
    /// The image blob was missing from the store.
    Missing,
}

/// Extractor with the paper's dedup-by-KV-check front.
#[derive(Debug)]
pub struct CachingExtractor {
    extractor: FeatureExtractor,
    cost: CostModel,
    reuse_enabled: AtomicBool,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CachingExtractor {
    /// Creates a caching extractor with reuse enabled.
    pub fn new(extractor: FeatureExtractor, cost: CostModel) -> Self {
        Self {
            extractor,
            cost,
            reuse_enabled: AtomicBool::new(true),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Enables or disables the reuse check (ablation switch).
    pub fn set_reuse_enabled(&self, enabled: bool) {
        self.reuse_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether reuse is currently enabled.
    pub fn reuse_enabled(&self) -> bool {
        self.reuse_enabled.load(Ordering::Relaxed)
    }

    /// Returns features for `attrs.url`, reusing the feature database when
    /// possible; otherwise pulls the blob from `images`, extracts (charging
    /// the cost model), and records the result in `db`.
    ///
    /// Returns the features (if obtainable) and what happened.
    pub fn features_for(
        &self,
        attrs: &ProductAttributes,
        images: &ImageStore,
        db: &FeatureDb,
    ) -> (Option<Vector>, FetchOutcome) {
        let key = attrs.image_key();
        if self.reuse_enabled() {
            if let Some(features) = db.features(key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return (Some(features), FetchOutcome::Reused);
            }
        }
        match images.get(key) {
            Some(blob) => {
                self.cost.charge();
                let features = self.extractor.extract(&blob);
                db.insert(features.clone(), attrs.clone());
                self.misses.fetch_add(1, Ordering::Relaxed);
                (Some(features), FetchOutcome::Extracted)
            }
            None => (None, FetchOutcome::Missing),
        }
    }

    /// Cache hits (reuses) so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (fresh extractions) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Underlying extractor.
    pub fn extractor(&self) -> &FeatureExtractor {
        &self.extractor
    }

    /// Underlying cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The key under which `key`'s statistics would be stored; convenience
    /// passthrough for callers that only have a URL.
    pub fn key_for(url: &str) -> ImageKey {
        ImageKey::from_url(url)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostDistribution;
    use crate::extractor::ExtractorConfig;
    use jdvs_storage::model::ProductId;
    use std::time::Duration;

    fn setup() -> (CachingExtractor, ImageStore, FeatureDb) {
        let ex = FeatureExtractor::new(ExtractorConfig {
            dim: 16,
            ..Default::default()
        });
        let cost =
            CostModel::virtual_time(CostDistribution::Constant(Duration::from_millis(100)), 1);
        (
            CachingExtractor::new(ex, cost),
            ImageStore::with_blob_len(64),
            FeatureDb::new(),
        )
    }

    fn attrs(url: &str) -> ProductAttributes {
        ProductAttributes::new(ProductId(1), 0, 0, 0, url.to_string())
    }

    #[test]
    fn first_fetch_extracts_second_reuses() {
        let (cx, images, db) = setup();
        images.put_synthetic("u1", 5);
        let (f1, o1) = cx.features_for(&attrs("u1"), &images, &db);
        assert_eq!(o1, FetchOutcome::Extracted);
        let (f2, o2) = cx.features_for(&attrs("u1"), &images, &db);
        assert_eq!(o2, FetchOutcome::Reused);
        assert_eq!(f1, f2);
        assert_eq!(cx.hits(), 1);
        assert_eq!(cx.misses(), 1);
        // Only one extraction cost charged.
        assert_eq!(cx.cost().total_charged(), Duration::from_millis(100));
    }

    #[test]
    fn missing_blob_reports_missing() {
        let (cx, images, db) = setup();
        let (f, o) = cx.features_for(&attrs("absent"), &images, &db);
        assert!(f.is_none());
        assert_eq!(o, FetchOutcome::Missing);
    }

    #[test]
    fn disabling_reuse_always_extracts() {
        let (cx, images, db) = setup();
        images.put_synthetic("u1", 5);
        cx.set_reuse_enabled(false);
        assert!(!cx.reuse_enabled());
        cx.features_for(&attrs("u1"), &images, &db);
        cx.features_for(&attrs("u1"), &images, &db);
        assert_eq!(cx.misses(), 2, "every fetch re-extracts");
        assert_eq!(cx.cost().total_charged(), Duration::from_millis(200));
    }

    #[test]
    fn extraction_populates_feature_db() {
        let (cx, images, db) = setup();
        images.put_synthetic("u1", 5);
        cx.features_for(&attrs("u1"), &images, &db);
        let key = ImageKey::from_url("u1");
        assert!(db.contains(key));
        assert_eq!(db.attributes(key).unwrap().url, "u1");
    }

    #[test]
    fn key_for_matches_model() {
        assert_eq!(CachingExtractor::key_for("abc"), ImageKey::from_url("abc"));
    }
}
