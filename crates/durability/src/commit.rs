//! Group commit: batch concurrent publishers into one `fdatasync`.
//!
//! Under [`FsyncPolicy::Always`](crate::log::FsyncPolicy::Always) every
//! append syncs inline, so *n* concurrent publishers pay *n* serialized
//! `fdatasync`s even though a single sync issued after all *n* appends
//! would make every one of them durable. [`CommitQueue`] recovers that
//! batching with the classic leader/follower protocol (the design behind
//! group commit in InnoDB, Postgres and etcd's WAL):
//!
//! 1. A publisher appends its record (no inline sync — the log runs with
//!    [`LogConfig::group_commit`](crate::log::LogConfig::group_commit)),
//!    then calls [`CommitQueue::commit_wait`] with its offset.
//! 2. If no sync is in flight, the caller becomes the **leader**: it
//!    reads the log's current end as the commit watermark, issues one
//!    `fdatasync`, publishes the new durable offset, and wakes everyone.
//! 3. Otherwise the caller is a **follower**: it parks on the condvar.
//!    Appends that landed before the leader's sync are covered by that
//!    sync; later arrivals find the durable watermark still short and the
//!    first of them becomes the next leader.
//!
//! The loss bound of `Always` is *unchanged*: `commit_wait(off)` returns
//! only once a sync with watermark `> off` has completed, and the
//! publisher's acknowledgement happens after `commit_wait` — so every
//! acknowledged publish is still on the platter. What changes is the
//! sync count: one `fdatasync` retires a whole burst of publishers.

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use jdvs_storage::queue::Offset;

use crate::log::SegmentedLog;

/// Leader/follower state; see the module docs.
#[derive(Debug)]
struct CommitState {
    /// Records `0..durable` are known synced (a `next_offset` watermark).
    durable: Offset,
    /// Whether a leader currently holds the sync.
    leader_active: bool,
}

/// The group-commit coordinator for one [`SegmentedLog`].
#[derive(Debug)]
pub struct CommitQueue {
    log: Arc<Mutex<SegmentedLog>>,
    state: Mutex<CommitState>,
    durable_changed: Condvar,
}

impl CommitQueue {
    /// Creates a coordinator over `log` (the same handle the publish tee
    /// appends through).
    pub fn new(log: Arc<Mutex<SegmentedLog>>) -> Self {
        Self {
            log,
            state: Mutex::new(CommitState {
                durable: 0,
                leader_active: false,
            }),
            durable_changed: Condvar::new(),
        }
    }

    /// Blocks until a completed sync covers the record at `offset`;
    /// becomes the sync leader if none is in flight. Call *after* the
    /// record's append returned.
    ///
    /// # Panics
    ///
    /// Panics if the sync fails — same write-ahead-log contract as the
    /// durable publish tee: acknowledging a publish whose durability is
    /// unknown would silently break recovery.
    pub fn commit_wait(&self, offset: Offset) {
        let mut state = self.state.lock();
        loop {
            if state.durable > offset {
                return;
            }
            if state.leader_active {
                // Follower: a leader is syncing. Its watermark may or may
                // not cover us; re-check when it publishes.
                self.durable_changed.wait(&mut state);
                continue;
            }
            state.leader_active = true;
            drop(state);
            // Leader, outside the state lock so followers can queue up.
            // The watermark is read under the log lock, so it covers every
            // append that completed before this sync — ours included
            // (append happened-before commit_wait on this thread).
            let mut log = self.log.lock();
            let watermark = log.next_offset();
            let result = log.sync();
            drop(log);
            state = self.state.lock();
            state.leader_active = false;
            if let Err(e) = result {
                // Wake followers before dying so they retry (and hit the
                // same error) instead of parking forever.
                self.durable_changed.notify_all();
                panic!("group commit sync failed at watermark {watermark}: {e}");
            }
            state.durable = state.durable.max(watermark);
            self.durable_changed.notify_all();
            // Loop: watermark > offset always holds here, so this returns.
        }
    }

    /// The highest completed sync watermark (records `0..` this are
    /// durable).
    pub fn durable(&self) -> Offset {
        self.state.lock().durable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{FsyncPolicy, LogConfig};
    use jdvs_metrics::DurabilityMetrics;
    use std::fs;
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Barrier;

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("jdvs-gc-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn open_grouped(dir: &Path, metrics: &Arc<DurabilityMetrics>) -> SegmentedLog {
        SegmentedLog::open(
            LogConfig {
                dir: dir.to_path_buf(),
                segment_max_bytes: 1 << 20,
                fsync: FsyncPolicy::Always,
                group_commit: true,
            },
            Arc::clone(metrics),
        )
        .unwrap()
    }

    #[test]
    fn commit_wait_returns_only_after_a_covering_sync() {
        let dir = temp_dir("cover");
        let metrics = Arc::new(DurabilityMetrics::new());
        let log = Arc::new(Mutex::new(open_grouped(&dir, &metrics)));
        let commit = CommitQueue::new(Arc::clone(&log));
        for i in 0..10u64 {
            let off = log.lock().append(format!("r{i}").as_bytes()).unwrap();
            assert_eq!(off, i);
            // group_commit defers the inline sync...
            commit.commit_wait(off);
            // ...but commit_wait may not return before a sync covers off.
            assert!(commit.durable() > off);
            assert!(metrics.durable_offset.get() > off);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_commits_share_syncs_without_weakening_the_loss_bound() {
        let dir = temp_dir("share");
        let metrics = Arc::new(DurabilityMetrics::new());
        let log = Arc::new(Mutex::new(open_grouped(&dir, &metrics)));
        let commit = Arc::new(CommitQueue::new(Arc::clone(&log)));
        let writers = 8usize;
        let per_writer = 50u64;
        let barrier = Arc::new(Barrier::new(writers));
        std::thread::scope(|s| {
            for w in 0..writers {
                let log = Arc::clone(&log);
                let commit = Arc::clone(&commit);
                let metrics = Arc::clone(&metrics);
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    barrier.wait();
                    for i in 0..per_writer {
                        let off = log.lock().append(format!("w{w}-{i}").as_bytes()).unwrap();
                        commit.commit_wait(off);
                        // The Always loss bound, per acknowledged append.
                        assert!(
                            metrics.durable_offset.get() > off,
                            "acknowledged record {off} must already be durable"
                        );
                    }
                });
            }
        });
        let appends = writers as u64 * per_writer;
        assert_eq!(log.lock().next_offset(), appends);
        assert!(
            metrics.log_syncs.get() < appends,
            "group commit must batch: {} syncs for {appends} appends",
            metrics.log_syncs.get()
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
