//! Index partitioning (Section 2.4).
//!
//! *"The entire image index data is divided into multiple partitions by
//! hashing the image's URL. Each partition can have multiple copies for
//! availability. A partition is handled by a single searcher node. A broker
//! connects to a subset of searchers."*
//!
//! [`PartitionMap`] owns those assignments: URL → partition (delegating to
//! [`ImageKey::partition`]), and partition → broker group (round-robin), so
//! every layer agrees on who owns what.

use jdvs_storage::model::ImageKey;
use serde::{Deserialize, Serialize};

/// The cluster-wide partition layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionMap {
    num_partitions: usize,
    num_broker_groups: usize,
}

impl PartitionMap {
    /// Creates a layout.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero or there are more broker groups than
    /// partitions (a group with nothing to own is a configuration bug).
    pub fn new(num_partitions: usize, num_broker_groups: usize) -> Self {
        assert!(num_partitions > 0, "num_partitions must be positive");
        assert!(num_broker_groups > 0, "num_broker_groups must be positive");
        assert!(
            num_broker_groups <= num_partitions,
            "more broker groups ({num_broker_groups}) than partitions ({num_partitions})"
        );
        Self {
            num_partitions,
            num_broker_groups,
        }
    }

    /// Total partitions.
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// Total broker groups.
    pub fn num_broker_groups(&self) -> usize {
        self.num_broker_groups
    }

    /// The partition an image belongs to.
    pub fn partition_of(&self, key: ImageKey) -> usize {
        key.partition(self.num_partitions)
    }

    /// The partition an image URL belongs to.
    pub fn partition_of_url(&self, url: &str) -> usize {
        self.partition_of(ImageKey::from_url(url))
    }

    /// The broker group that owns a partition (round-robin assignment).
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range.
    pub fn broker_group_of(&self, partition: usize) -> usize {
        assert!(partition < self.num_partitions, "partition out of range");
        partition % self.num_broker_groups
    }

    /// The partitions owned by a broker group, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn partitions_of_group(&self, group: usize) -> Vec<usize> {
        assert!(group < self.num_broker_groups, "broker group out of range");
        (group..self.num_partitions)
            .step_by(self.num_broker_groups)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_partition_has_exactly_one_group() {
        let map = PartitionMap::new(10, 3);
        let mut owned = vec![0usize; 10];
        for g in 0..3 {
            for p in map.partitions_of_group(g) {
                owned[p] += 1;
                assert_eq!(map.broker_group_of(p), g, "assignment must be consistent");
            }
        }
        assert!(
            owned.iter().all(|&c| c == 1),
            "each partition owned once: {owned:?}"
        );
    }

    #[test]
    fn url_routing_is_stable_and_in_range() {
        let map = PartitionMap::new(8, 2);
        for i in 0..100 {
            let url = format!("https://img.jd.com/{i}.jpg");
            let p = map.partition_of_url(&url);
            assert!(p < 8);
            assert_eq!(p, map.partition_of_url(&url), "stable routing");
            assert_eq!(p, map.partition_of(ImageKey::from_url(&url)));
        }
    }

    #[test]
    fn groups_get_balanced_partition_counts() {
        let map = PartitionMap::new(20, 6);
        let sizes: Vec<usize> = (0..6).map(|g| map.partitions_of_group(g).len()).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max - min <= 1, "round-robin is balanced: {sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), 20);
    }

    #[test]
    fn single_group_owns_everything() {
        let map = PartitionMap::new(5, 1);
        assert_eq!(map.partitions_of_group(0), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "more broker groups")]
    fn more_groups_than_partitions_panics() {
        PartitionMap::new(2, 3);
    }

    #[test]
    #[should_panic(expected = "partition out of range")]
    fn out_of_range_partition_panics() {
        PartitionMap::new(2, 1).broker_group_of(2);
    }
}
