//! Distributed topology & fault tolerance walkthrough.
//!
//! ```sh
//! cargo run --release --example distributed_search
//! ```
//!
//! Stands up a paper-shaped stack — front-end load balancer, 2 blenders,
//! 2 broker groups × 2 instances, 8 partitions × 2 searcher replicas — with
//! a simulated per-hop datacenter latency, then demonstrates that queries
//! survive searcher-replica and broker-instance failures (Section 2.4's
//! availability claims).

use std::time::Duration;

use jdvs::core::IndexConfig;
use jdvs::net::LatencyModel;
use jdvs::search::topology::TopologyConfig;
use jdvs::search::RankingPolicy;
use jdvs::workload::catalog::CatalogConfig;
use jdvs::workload::queries::QueryGenerator;
use jdvs::workload::scenario::{World, WorldConfig};

fn main() {
    println!("jdvs distributed search demo — building an 8-partition, 2-replica stack...");
    let world = World::build(WorldConfig {
        catalog: CatalogConfig {
            num_products: 800,
            num_clusters: 40,
            ..Default::default()
        },
        topology: TopologyConfig {
            index: IndexConfig {
                dim: 32,
                num_lists: 16,
                nprobe: 8,
                ..Default::default()
            },
            num_partitions: 8,
            replicas_per_partition: 2,
            num_broker_groups: 2,
            broker_replicas: 2,
            num_blenders: 2,
            latency: LatencyModel::LogNormal {
                median: Duration::from_micros(150),
                sigma: 0.3,
            },
            ranking: RankingPolicy::default(),
            ..Default::default()
        },
        ..Default::default()
    });
    let map = world.topology().partition_map();
    println!(
        "topology: {} partitions × 2 replicas, {} broker groups, images per partition: {:?}\n",
        map.num_partitions(),
        map.num_broker_groups(),
        world
            .topology()
            .indexes()
            .iter()
            .map(|rs| rs[0].num_images())
            .collect::<Vec<_>>()
    );

    let client = world.client(Duration::from_secs(10));
    let generator = QueryGenerator::new(world.catalog(), 7);

    let run_queries = |label: &str| {
        let mut ok = 0;
        let mut total_answered = 0;
        for _ in 0..20 {
            let (query, _) = generator.next_query(world.images(), 5);
            match client.search(query) {
                Ok(resp) if !resp.results.is_empty() => {
                    ok += 1;
                    total_answered += resp.groups_answered;
                }
                _ => {}
            }
        }
        println!(
            "{label}: {ok}/20 queries succeeded (avg broker groups answering: {:.1})",
            total_answered as f64 / 20.0
        );
        ok
    };

    assert_eq!(run_queries("healthy cluster        "), 20);

    // Kill one searcher replica of every partition.
    for p in 0..8 {
        world.topology().searcher_faults(p, 0).set_down(true);
    }
    assert_eq!(run_queries("replica 0 of all parts down"), 20);

    // Also kill one broker instance per group.
    world.topology().broker_faults(0, 0).set_down(true);
    world.topology().broker_faults(1, 0).set_down(true);
    assert_eq!(run_queries("plus 1 broker per group down"), 20);

    // Recover everything; inject a straggler instead.
    for p in 0..8 {
        world.topology().searcher_faults(p, 0).set_down(false);
    }
    world.topology().broker_faults(0, 0).set_down(false);
    world.topology().broker_faults(1, 0).set_down(false);
    world
        .topology()
        .searcher_faults(3, 0)
        .set_slowdown(Duration::from_millis(20));
    assert_eq!(run_queries("one straggler searcher  "), 20);

    println!("\nfault-tolerance walkthrough OK: no query loss through replica/broker failures");
}
