//! Property-based tests for the feature pipeline.

use bytes::Bytes;
use proptest::prelude::*;

use jdvs_features::category::{CategoryDetector, CategoryId};
use jdvs_features::{ExtractorConfig, FeatureExtractor};
use jdvs_storage::image_store::ImageBlob;
use jdvs_vector::Vector;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Extraction is a pure function of (bytes, visual_seed, config):
    /// identical inputs give identical vectors, across extractor instances.
    #[test]
    fn extraction_is_deterministic(
        bytes in prop::collection::vec(any::<u8>(), 0..64),
        visual_seed in any::<u64>(),
        model_seed in any::<u64>(),
    ) {
        let cfg = ExtractorConfig { dim: 12, model_seed, ..Default::default() };
        let a = FeatureExtractor::new(cfg.clone());
        let b = FeatureExtractor::new(cfg);
        let blob = ImageBlob { bytes: Bytes::from(bytes), visual_seed };
        prop_assert_eq!(a.extract(&blob), b.extract(&blob));
    }

    /// Normalized extraction always yields unit vectors of the configured
    /// dimension.
    #[test]
    fn extraction_output_shape(
        bytes in prop::collection::vec(any::<u8>(), 1..48),
        visual_seed in any::<u64>(),
        dim in 1usize..64,
    ) {
        let ex = FeatureExtractor::new(ExtractorConfig { dim, normalize: true, ..Default::default() });
        let v = ex.extract(&ImageBlob { bytes: Bytes::from(bytes), visual_seed });
        prop_assert_eq!(v.dim(), dim);
        prop_assert!((v.norm() - 1.0).abs() < 1e-4);
        prop_assert!(v.as_slice().iter().all(|x| x.is_finite()));
    }

    /// Same-cluster images are closer than cross-cluster images, for any
    /// pair of distinct cluster seeds (the structural property the whole
    /// search stack relies on).
    #[test]
    fn cluster_structure_holds(seed_a in any::<u64>(), seed_b in any::<u64>(), content in any::<u64>()) {
        prop_assume!(seed_a != seed_b);
        let ex = FeatureExtractor::new(ExtractorConfig { dim: 24, ..Default::default() });
        let mk = |cluster: u64, tag: u64| {
            ex.extract(&ImageBlob {
                bytes: Bytes::from(tag.to_le_bytes().to_vec()),
                visual_seed: cluster,
            })
        };
        let a1 = mk(seed_a, content);
        let a2 = mk(seed_a, content.wrapping_add(1));
        let b1 = mk(seed_b, content.wrapping_add(2));
        let near = jdvs_vector::distance::squared_l2(a1.as_slice(), a2.as_slice());
        let far = jdvs_vector::distance::squared_l2(a1.as_slice(), b1.as_slice());
        prop_assert!(near < far, "near {near} vs far {far}");
    }

    /// The category detector classifies each prototype to itself and every
    /// point to its nearest prototype.
    #[test]
    fn detector_is_nearest_prototype(
        protos in prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 4..=4), 1..6),
        query in prop::collection::vec(-10.0f32..10.0, 4..=4),
    ) {
        let detector = CategoryDetector::new(
            protos
                .iter()
                .enumerate()
                .map(|(i, p)| (CategoryId(i as u32), Vector::from(p.clone())))
                .collect(),
        );
        // Prototypes classify to themselves (ties break to first).
        for (i, p) in protos.iter().enumerate() {
            let got = detector.detect(p);
            let d_self = jdvs_vector::distance::squared_l2(p, &protos[got.0 as usize]);
            prop_assert!(d_self <= 1e-12, "prototype {i} classified to a non-coincident class");
        }
        // Arbitrary queries classify to their argmin prototype.
        let (got, dist) = detector.detect_with_distance(&query);
        for p in &protos {
            prop_assert!(dist <= jdvs_vector::distance::squared_l2(p, &query) + 1e-6);
        }
        prop_assert!((got.0 as usize) < protos.len());
    }
}
