//! # jdvs-workload
//!
//! Workload generation and experiment drivers for the jdvs evaluation:
//!
//! - [`catalog`] — deterministic synthetic product catalogs with visual
//!   cluster structure (products of a family look alike).
//! - [`events`] — daily catalog-update streams shaped like the paper's
//!   production day (Table 1 mix: 32% attribute updates, 53% additions of
//!   which ~98.5% are re-listings, 14% deletions; Figure 11(a) hourly
//!   curve peaking at 11:00).
//! - [`queries`] — query-image generation (fresh photos from known visual
//!   clusters, registered in the image store so blenders extract them).
//! - [`client`] — the closed-loop multi-threaded query driver emulating
//!   the paper's client machine (Section 3.2).
//! - [`scenario`] — one-call experiment worlds shared by the examples,
//!   integration tests and the `repro` benchmark harness.
//! - [`chaos`] — fault-schedule driver auditing the serving path's
//!   degraded-mode accounting contract under crashes, drops and
//!   stragglers.
//! - [`openloop`] — fixed-rate open-loop driver for overload experiments
//!   (arrivals don't wait for responses, so offered load can exceed
//!   capacity).
//! - [`netfault`] — fault-injecting TCP proxy (refusal, stalls, mid-frame
//!   cuts) for the network serving tier.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod catalog;
pub mod chaos;
pub mod client;
pub mod events;
pub mod netfault;
pub mod openloop;
pub mod queries;
pub mod recovery;
pub mod scenario;

pub use catalog::{Catalog, CatalogConfig};
pub use chaos::{run_chaos, ChaosConfig, ChaosReport};
pub use client::{ClosedLoopConfig, ClosedLoopDriver, LoadReport};
pub use events::{DailyPlan, DailyPlanConfig, TimedEvent};
pub use netfault::FaultProxy;
pub use openloop::{OpenLoopConfig, OpenLoopDriver, OpenLoopOutcome, OpenLoopReport};
pub use queries::QueryGenerator;
pub use recovery::{
    run_crash_cycle, CrashCycleConfig, CrashCycleOutcome, RecoveryConfig, RecoveryHarness,
};
pub use scenario::{World, WorldConfig};
