//! # jdvs-net
//!
//! In-process cluster runtime standing in for the paper's 28-server testbed
//! (see DESIGN.md §2). The evaluation phenomena — fan-out/fan-in, queueing
//! under concurrency, stragglers, replica failover — are properties of the
//! topology and service times, not of physical NICs, so nodes here are
//! worker-pool actors reachable by RPC over channels, with a seeded
//! per-hop latency model and runtime fault injection.
//!
//! - [`rpc`] — the [`rpc::Service`] trait, call errors, deadlines.
//! - [`node`] — [`node::Node`]: a named actor with `n` worker threads;
//!   [`node::NodeHandle`]: the cloneable client stub.
//! - [`latency`] — seeded per-hop latency distributions.
//! - [`fault`] — drop/fail/slow injection, runtime-togglable.
//! - [`balancer`] — round-robin load balancer with budgeted, health-aware
//!   failover and hedged calls (the paper's front end), generic over any
//!   [`rpc::CallTarget`] (in-process handles or TCP channels).
//! - [`health`] — per-node circuit breaker consulted by the balancer.
//! - [`retry`] — jittered exponential-backoff retry policy.
//! - [`cluster`] — lifecycle helper that shuts a set of nodes down.
//!
//! The network-native serving tier layers on top:
//!
//! - [`frame`] — length-prefixed, CRC32C-checked wire frames plus the
//!   request/response envelopes carrying deadline budgets and overload
//!   status.
//! - [`admission`] — per-tier admission control: token-bucket rate
//!   limiting, a bounded queue with deadline-aware shedding, and a
//!   concurrency limit.
//! - [`tcp`] — [`tcp::TcpTier`], a framed TCP listener serving any
//!   [`rpc::Service`] behind admission control, and [`tcp::TcpChannel`],
//!   the pooled client stub implementing [`rpc::CallTarget`].
//!
//! ## Example
//!
//! ```
//! use jdvs_net::node::Node;
//! use jdvs_net::rpc::Service;
//! use std::time::Duration;
//!
//! struct Echo;
//! impl Service for Echo {
//!     type Request = String;
//!     type Response = String;
//!     fn handle(&self, req: String) -> String { req }
//! }
//!
//! let node = Node::spawn("echo-0", Echo, 2);
//! let handle = node.handle();
//! let reply = handle.call("hi".to_string(), Duration::from_secs(1)).unwrap();
//! assert_eq!(reply, "hi");
//! node.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
pub mod balancer;
pub mod cluster;
pub mod fault;
pub mod frame;
pub mod health;
pub mod latency;
pub mod node;
pub mod retry;
pub mod rpc;
pub mod tcp;

pub use admission::{AdmissionConfig, AdmissionController};
pub use balancer::Balancer;
pub use cluster::Cluster;
pub use fault::FaultInjector;
pub use frame::ShedReason;
pub use health::{CircuitState, HealthPolicy, HealthTracker};
pub use latency::LatencyModel;
pub use node::{Node, NodeHandle};
pub use retry::RetryPolicy;
pub use rpc::{CallTarget, RpcError, Service};
pub use tcp::{TcpChannel, TcpTier};
