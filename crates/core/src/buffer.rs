//! The append-only variable-length attribute buffer.
//!
//! Section 2.2: *"The variable length attributes like URL are stored in an
//! additional buffer, and the offset of the attribute in the buffer is
//! recorded in the array."* Section 2.3 (update): *"For an attribute with
//! varying length, the value is added at the end of the buffer and the
//! offset value is updated in the forward index"* — so an in-place update
//! never rewrites bytes a reader might be scanning; it appends fresh bytes
//! and swings one atomic word.
//!
//! [`VarBuffer`] implements that contract:
//!
//! - storage is a chain of fixed-size chunks of `AtomicU8`; chunks are
//!   never moved or freed, so references stay valid forever;
//! - [`VarBuffer::append`] writes the bytes (relaxed stores) and returns a
//!   [`PackedRef`] — offset and length packed into one `u64` — which the
//!   caller publishes with a release store into the forward index;
//! - readers acquire the packed word, then read exactly those bytes.
//!
//! A record never straddles a chunk boundary (appends skip to the next
//! chunk instead), so every read is a single contiguous copy.

use crate::sync::{Arc, AtomicU8, Mutex, Ordering, RwLock};

use crate::error::IndexError;

/// Chunk size in bytes (1 MiB).
pub const CHUNK_SIZE: usize = 1 << 20;

/// Maximum record length: 24 bits of the packed word.
pub const MAX_RECORD_LEN: usize = (1 << 24) - 1;

/// A packed buffer reference: high 40 bits global byte offset, low 24 bits
/// length. Fits in the single `AtomicU64` cell the forward index swaps on
/// update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PackedRef(u64);

impl PackedRef {
    /// The empty record (offset 0, length 0).
    pub const EMPTY: PackedRef = PackedRef(0);

    fn new(offset: u64, len: usize) -> Self {
        debug_assert!(len <= MAX_RECORD_LEN);
        debug_assert!(offset < (1 << 40));
        Self((offset << 24) | len as u64)
    }

    /// Reconstructs from the raw word (as read from the forward index).
    pub fn from_raw(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw word to store in the forward index.
    pub fn as_raw(self) -> u64 {
        self.0
    }

    /// Global byte offset of the record.
    pub fn offset(self) -> u64 {
        self.0 >> 24
    }

    /// Record length in bytes.
    pub fn len(self) -> usize {
        (self.0 & 0xFF_FFFF) as usize
    }

    /// Returns `true` for zero-length records.
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }
}

struct Chunk {
    bytes: Box<[AtomicU8]>,
}

impl Chunk {
    fn new(size: usize) -> Self {
        let mut v = Vec::with_capacity(size);
        v.resize_with(size, || AtomicU8::new(0));
        Self {
            bytes: v.into_boxed_slice(),
        }
    }
}

/// The append-only buffer; see the module docs.
///
/// # Example
///
/// ```
/// use jdvs_core::buffer::VarBuffer;
///
/// let buf = VarBuffer::new();
/// let r = buf.append(b"https://img.jd.com/sku/1.jpg").unwrap();
/// assert_eq!(buf.read(r).unwrap(), b"https://img.jd.com/sku/1.jpg");
/// ```
pub struct VarBuffer {
    chunks: RwLock<Vec<Arc<Chunk>>>,
    // Single append cursor; appends are serialized (the real-time indexer
    // is the only writer per partition), reads are lock-free w.r.t. it.
    write_pos: Mutex<u64>,
    chunk_size: usize,
}

impl std::fmt::Debug for VarBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VarBuffer")
            .field("chunks", &self.chunks.read().len())
            .field("bytes_used", &*self.write_pos.lock())
            .finish()
    }
}

impl Default for VarBuffer {
    fn default() -> Self {
        Self::new()
    }
}

impl VarBuffer {
    /// Creates a buffer with the default chunk size.
    pub fn new() -> Self {
        Self::with_chunk_size(CHUNK_SIZE)
    }

    /// Creates a buffer with a custom chunk size (tests use small chunks to
    /// exercise boundary handling cheaply).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`.
    pub fn with_chunk_size(chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        Self {
            chunks: RwLock::new(Vec::new()),
            write_pos: Mutex::new(0),
            chunk_size,
        }
    }

    /// Appends `bytes`, returning the reference to publish.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::AttributeTooLarge`] if `bytes` exceeds the
    /// record limit (or the configured chunk size).
    pub fn append(&self, bytes: &[u8]) -> Result<PackedRef, IndexError> {
        let max = MAX_RECORD_LEN.min(self.chunk_size);
        if bytes.len() > max {
            return Err(IndexError::AttributeTooLarge {
                len: bytes.len(),
                max,
            });
        }
        let mut pos = self.write_pos.lock();
        let chunk_size = self.chunk_size as u64;
        // Skip to the next chunk if the record would straddle a boundary.
        let within = *pos % chunk_size;
        if within + bytes.len() as u64 > chunk_size {
            *pos += chunk_size - within;
        }
        let offset = *pos;
        let chunk_idx = (offset / chunk_size) as usize;
        let chunk_off = (offset % chunk_size) as usize;
        // Grow the chunk chain if needed.
        {
            let chunks = self.chunks.read();
            if chunks.len() <= chunk_idx {
                drop(chunks);
                let mut chunks = self.chunks.write();
                while chunks.len() <= chunk_idx {
                    chunks.push(Arc::new(Chunk::new(self.chunk_size)));
                }
            }
        }
        let chunk = Arc::clone(&self.chunks.read()[chunk_idx]);
        for (i, &b) in bytes.iter().enumerate() {
            chunk.bytes[chunk_off + i].store(b, Ordering::Relaxed);
        }
        *pos = offset + bytes.len() as u64;
        Ok(PackedRef::new(offset, bytes.len()))
    }

    /// Reads the bytes behind a reference.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::CorruptReference`] if `r` does not reference
    /// bytes this buffer has allocated — the referenced chunk does not
    /// exist, or the record would run past a chunk boundary (valid
    /// references never straddle chunks). A forward-index word can only
    /// decode to such a reference through corruption or cross-buffer
    /// mixing, so the serving path reports it instead of panicking the
    /// searcher (previously this method panicked).
    pub fn read(&self, r: PackedRef) -> Result<Vec<u8>, IndexError> {
        if r.is_empty() {
            return Ok(Vec::new());
        }
        let corrupt = || IndexError::CorruptReference {
            offset: r.offset(),
            len: r.len(),
        };
        let chunk_idx = (r.offset() / self.chunk_size as u64) as usize;
        let chunk_off = (r.offset() % self.chunk_size as u64) as usize;
        // Both checks matter: the chunk must exist, and the record must fit
        // inside it — a huge `len` with a small in-range offset would
        // otherwise index past the chunk.
        if chunk_off + r.len() > self.chunk_size {
            return Err(corrupt());
        }
        let chunks = self.chunks.read();
        let chunk = Arc::clone(chunks.get(chunk_idx).ok_or_else(corrupt)?);
        drop(chunks);
        Ok((0..r.len())
            // Relaxed: the caller obtained `r` from an Acquire load of the
            // forward-index reference word, which pairs with the Release
            // store publishing it; the byte stores in `append` are ordered
            // before that publication.
            .map(|i| chunk.bytes[chunk_off + i].load(Ordering::Relaxed))
            .collect())
    }

    /// Reads a reference as UTF-8, replacing invalid sequences.
    ///
    /// # Errors
    ///
    /// Propagates [`IndexError::CorruptReference`] from [`Self::read`].
    pub fn read_string(&self, r: PackedRef) -> Result<String, IndexError> {
        Ok(String::from_utf8_lossy(&self.read(r)?).into_owned())
    }

    /// Total bytes appended (including boundary padding skips).
    pub fn bytes_used(&self) -> u64 {
        *self.write_pos.lock()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;

    #[test]
    fn append_read_round_trip() {
        let buf = VarBuffer::new();
        let r1 = buf.append(b"hello").unwrap();
        let r2 = buf.append(b"world!").unwrap();
        assert_eq!(buf.read(r1).unwrap(), b"hello");
        assert_eq!(buf.read(r2).unwrap(), b"world!");
        assert_eq!(buf.read_string(r1).unwrap(), "hello");
    }

    #[test]
    fn empty_record_reads_empty() {
        let buf = VarBuffer::new();
        let r = buf.append(b"").unwrap();
        assert!(r.is_empty());
        assert!(buf.read(r).unwrap().is_empty());
        assert!(buf.read(PackedRef::EMPTY).unwrap().is_empty());
    }

    #[test]
    fn records_never_straddle_chunks() {
        let buf = VarBuffer::with_chunk_size(16);
        let r1 = buf.append(b"0123456789").unwrap(); // 10 bytes in chunk 0
        let r2 = buf.append(b"abcdefghij").unwrap(); // won't fit: starts chunk 1
        assert_eq!(buf.read(r1).unwrap(), b"0123456789");
        assert_eq!(buf.read(r2).unwrap(), b"abcdefghij");
        assert_eq!(r2.offset(), 16, "second record skips to the chunk boundary");
    }

    #[test]
    fn oversized_record_is_rejected() {
        let buf = VarBuffer::with_chunk_size(8);
        let err = buf.append(b"123456789").unwrap_err();
        assert!(matches!(
            err,
            IndexError::AttributeTooLarge { len: 9, max: 8 }
        ));
    }

    #[test]
    fn packed_ref_round_trips_raw() {
        let r = PackedRef::new(123456, 789);
        let r2 = PackedRef::from_raw(r.as_raw());
        assert_eq!(r, r2);
        assert_eq!(r2.offset(), 123456);
        assert_eq!(r2.len(), 789);
    }

    #[test]
    fn update_appends_new_value_old_still_readable() {
        // The paper's update protocol: old bytes remain valid while any
        // reader still holds the old reference.
        let buf = VarBuffer::new();
        let old = buf.append(b"price-9.99").unwrap();
        let new = buf.append(b"price-4.99").unwrap();
        assert_eq!(buf.read(old).unwrap(), b"price-9.99");
        assert_eq!(buf.read(new).unwrap(), b"price-4.99");
    }

    #[test]
    fn many_records_across_many_chunks() {
        let buf = VarBuffer::with_chunk_size(64);
        let refs: Vec<(PackedRef, String)> = (0..1_000)
            .map(|i| {
                let s = format!("record-{i}");
                (buf.append(s.as_bytes()).unwrap(), s)
            })
            .collect();
        for (r, expect) in refs {
            assert_eq!(buf.read_string(r).unwrap(), expect);
        }
        assert!(buf.bytes_used() > 0);
    }

    #[test]
    fn concurrent_readers_during_appends() {
        let buf = StdArc::new(VarBuffer::with_chunk_size(256));
        let r0 = buf.append(b"stable-record").unwrap();
        let stop = StdArc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let buf = StdArc::clone(&buf);
                let stop = StdArc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        assert_eq!(buf.read(r0).unwrap(), b"stable-record");
                    }
                })
            })
            .collect();
        for i in 0..5_000 {
            let s = format!("r{i}");
            let r = buf.append(s.as_bytes()).unwrap();
            assert_eq!(buf.read(r).unwrap(), s.as_bytes());
        }
        stop.store(true, Ordering::Relaxed);
        for h in readers {
            h.join().unwrap();
        }
    }

    #[test]
    fn bogus_ref_reports_corrupt_reference() {
        // Regression: a reference into an unallocated chunk used to panic
        // the reading thread; it must surface as CorruptReference.
        let buf = VarBuffer::new();
        let r = PackedRef::new(10 * CHUNK_SIZE as u64, 4);
        assert_eq!(
            buf.read(r).unwrap_err(),
            IndexError::CorruptReference {
                offset: 10 * CHUNK_SIZE as u64,
                len: 4
            }
        );
        assert!(buf.read_string(r).is_err());
    }

    #[test]
    fn overlong_ref_reports_corrupt_reference() {
        // An in-range offset with a length running past the chunk boundary
        // must also be rejected, not read out of bounds.
        let buf = VarBuffer::with_chunk_size(16);
        buf.append(b"abcd").unwrap();
        let r = PackedRef::new(2, 15); // 2 + 15 > 16
        assert!(matches!(
            buf.read(r),
            Err(IndexError::CorruptReference { offset: 2, len: 15 })
        ));
    }
}
