//! Forward-index operations — the atomic in-place attribute update of
//! Figure 7 and the append path of Figure 8, with and without concurrent
//! readers (the paper: "no conflict between search and update processes").

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use jdvs_core::forward::ForwardIndex;
use jdvs_core::ids::ImageId;
use jdvs_storage::model::{ProductAttributes, ProductId};

fn populated(n: u32) -> ForwardIndex {
    let fwd = ForwardIndex::new();
    for i in 0..n {
        fwd.append(&ProductAttributes::new(
            ProductId(u64::from(i)),
            10,
            999,
            5,
            format!("https://img.jd.test/sku/{i}/0.jpg"),
        ))
        .expect("append");
    }
    fwd
}

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("forward_index");

    group.throughput(Throughput::Elements(1));
    let fwd = populated(10_000);
    group.bench_function("numeric_update", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 10_000;
            fwd.update_numeric(ImageId(black_box(i)), Some(123), Some(456), None)
                .unwrap()
        })
    });

    group.bench_function("numeric_read", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 10_000;
            fwd.numeric(ImageId(black_box(i))).unwrap()
        })
    });

    group.bench_function("url_update", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 10_000;
            fwd.update_url(ImageId(black_box(i)), "https://img.jd.test/updated.jpg")
                .unwrap()
        })
    });

    group.bench_function("attributes_read_full", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 10_000;
            fwd.attributes(ImageId(black_box(i))).unwrap()
        })
    });

    group.throughput(Throughput::Elements(1_000));
    group.bench_function("append_1k", |b| {
        b.iter_with_setup(ForwardIndex::new, |fwd| {
            for i in 0..1_000u32 {
                fwd.append(&ProductAttributes::new(
                    ProductId(u64::from(i)),
                    10,
                    999,
                    5,
                    "https://img.jd.test/x.jpg".to_string(),
                ))
                .unwrap();
            }
            fwd.len()
        })
    });

    // Updates racing 4 reader threads — the "maximum concurrency" claim.
    group.throughput(Throughput::Elements(1));
    group.bench_function("numeric_update_vs_4_readers", |b| {
        let fwd = Arc::new(populated(10_000));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|t| {
                let fwd = Arc::clone(&fwd);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut i = t * 1_000u32;
                    let mut acc = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        i = (i + 1) % 10_000;
                        acc = acc.wrapping_add(fwd.numeric(ImageId(i)).unwrap().sales);
                    }
                    acc
                })
            })
            .collect();
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 10_000;
            fwd.update_numeric(ImageId(black_box(i)), Some(77), None, None)
                .unwrap()
        });
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            let _ = r.join();
        }
    });

    group.finish();
}

criterion_group!(benches, bench_forward);
criterion_main!(benches);
