//! A [`MessageQueue`] backed by the segmented log.
//!
//! [`DurableQueue::open`] replays the log into a fresh in-memory queue
//! (based at the log's first retained offset, so absolute offsets survive
//! pruning and restarts), then installs a publish tee: every
//! `publish`/`publish_batch` appends the encoded event to the log *under
//! the queue's publish lock*, so durable order is exactly offset order.
//!
//! The tee cannot return an error through the queue API; an I/O failure
//! while appending panics with context. For a write-ahead log this is the
//! correct failure mode — acknowledging a publish whose durable append
//! failed would silently break the recovery contract (etcd and friends
//! fatal on WAL write errors for the same reason).

use std::collections::HashSet;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use jdvs_metrics::DurabilityMetrics;
use jdvs_storage::model::ProductEvent;
use jdvs_storage::queue::Offset;
use jdvs_storage::MessageQueue;

use crate::codec::{decode_event, encode_event};
use crate::commit::CommitQueue;
use crate::log::{FsyncPolicy, LogConfig, OpenReport, SegmentedLog};

/// The durable ingestion queue for one serving stack.
#[derive(Debug)]
pub struct DurableQueue {
    queue: Arc<MessageQueue<ProductEvent>>,
    log: Arc<Mutex<SegmentedLog>>,
    /// What opening the log repaired (torn tail, corrupt records).
    open_report: OpenReport,
    /// Events replayed from the log into the in-memory queue on open.
    recovered: u64,
    /// Estimates how much of the log a per-key compaction could blank.
    stale: Arc<StaleEstimator>,
}

/// Estimates the blanked-frame potential of the log: every `AddProduct`
/// whose URLs have *all* been added before supersedes at least one earlier
/// frame of each URL (see [`crate::compact`]'s rules), so it bumps the
/// superseded counter. A cheap scheduling hint, not the ground truth — the
/// compaction pass itself computes the real droppable set; this only
/// decides *when* a pass is worth its segment rewrites. Fed by log replay
/// on open and by the publish tee afterwards, and corrected back down by
/// [`DurableQueue::compact`]'s report.
#[derive(Debug, Default)]
struct StaleEstimator {
    /// URLs an `AddProduct` has ever carried (replayed or published).
    seen_urls: Mutex<HashSet<String>>,
    /// Frames estimated to be superseded somewhere in the log.
    superseded: AtomicU64,
    /// Frames observed (log length floor for the ratio's denominator).
    total: AtomicU64,
}

impl StaleEstimator {
    fn observe(&self, event: &ProductEvent) {
        self.total.fetch_add(1, Ordering::Relaxed);
        if let ProductEvent::AddProduct { images, .. } = event {
            if images.is_empty() {
                return;
            }
            let mut seen = self.seen_urls.lock();
            let mut all_seen = true;
            for a in images {
                all_seen &= !seen.insert(a.url.clone());
            }
            if all_seen {
                self.superseded.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn ratio(&self) -> f64 {
        let total = self.total.load(Ordering::Relaxed);
        if total == 0 {
            return 0.0;
        }
        self.superseded.load(Ordering::Relaxed) as f64 / total as f64
    }
}

impl DurableQueue {
    /// Opens the log, rebuilds the in-memory queue from it and arms the
    /// publish tee. Records that fail CRC were already truncated away by
    /// the log's open; a record that passes CRC but does not decode means
    /// a format mismatch and fails the open (never indexed as garbage).
    pub fn open(config: LogConfig, metrics: Arc<DurabilityMetrics>) -> io::Result<Self> {
        let group_commit = config.fsync == FsyncPolicy::Always && config.group_commit;
        let log = SegmentedLog::open(config, Arc::clone(&metrics))?;
        let open_report = log.open_report();
        let base = log.first_offset();

        let mut backlog = Vec::new();
        for (offset, payload) in log.replay(base)? {
            let event = decode_event(&payload).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("log record {offset} does not decode: {e}"),
                )
            })?;
            backlog.push(event);
        }
        let recovered = backlog.len() as u64;

        let stale = Arc::new(StaleEstimator::default());
        for event in &backlog {
            stale.observe(event);
        }

        let queue = Arc::new(MessageQueue::with_base(base));
        // Tee is installed after the backlog lands, so recovery does not
        // re-append what the log already holds.
        queue.publish_batch(backlog);
        debug_assert_eq!(queue.len(), log.next_offset());

        let log = Arc::new(Mutex::new(log));
        let tee_log = Arc::clone(&log);
        let tee_stale = Arc::clone(&stale);
        queue.set_tee(move |offset: Offset, event: &ProductEvent| {
            tee_stale.observe(event);
            let payload = encode_event(event);
            let appended = tee_log
                .lock()
                .append(&payload)
                .unwrap_or_else(|e| panic!("durable log append failed at offset {offset}: {e}"));
            debug_assert_eq!(appended, offset, "log and queue offsets diverged");
        });

        if group_commit {
            // Under Always + group_commit the tee no longer syncs inline;
            // instead every publish blocks (after the queue lock drops) in
            // commit_wait until a shared leader sync covers its offset.
            // Same loss bound, one fdatasync per burst of publishers.
            let commit = CommitQueue::new(Arc::clone(&log));
            queue.set_after_publish(move |last: Offset| commit.commit_wait(last));
        }

        Ok(Self {
            queue,
            log,
            open_report,
            recovered,
            stale,
        })
    }

    /// The in-memory queue; publish through this (the tee keeps the log in
    /// step) and hand it to consumers/indexers as usual.
    pub fn queue(&self) -> &Arc<MessageQueue<ProductEvent>> {
        &self.queue
    }

    /// What opening the log repaired.
    pub fn open_report(&self) -> OpenReport {
        self.open_report
    }

    /// Events replayed from the log into the queue on open.
    pub fn recovered_events(&self) -> u64 {
        self.recovered
    }

    /// Forces all appended records to stable storage.
    pub fn sync(&self) -> io::Result<()> {
        self.log.lock().sync()
    }

    /// Next offset the log would assign (== queue length).
    pub fn next_offset(&self) -> Offset {
        self.log.lock().next_offset()
    }

    /// Deletes whole log segments below the checkpoint `watermark`; see
    /// [`SegmentedLog::retain_from`]. Returns segments pruned.
    pub fn prune_to(&self, watermark: Offset) -> io::Result<u64> {
        self.log.lock().retain_from(watermark)
    }

    /// Live segment count (for tests and ops).
    pub fn num_segments(&self) -> usize {
        self.log.lock().num_segments()
    }

    /// Estimated fraction of logged frames a per-key compaction could
    /// blank into tombstones — the scheduling signal for
    /// [`DurableQueue::compact`]. See [`StaleEstimator`]; corrected by
    /// each compaction's report, and zeroed by a pass that found nothing
    /// droppable (the superseded frames sit in the active segment) so a
    /// threshold scheduler does not re-trigger futile rewrites.
    pub fn stale_frame_ratio(&self) -> f64 {
        self.stale.ratio()
    }

    /// Runs per-key compaction over the cold log segments (see
    /// [`compact_log`](crate::compact::compact_log)) while holding the
    /// append lock, so no rotation or retention races the segment swap.
    /// Publishes block for the duration; run it in quiet periods.
    pub fn compact(&self) -> io::Result<crate::compact::CompactionReport> {
        let report = self.log.lock().compact()?;
        // Settle the estimate against what the pass actually reclaimed. A
        // no-op pass zeroes it: whatever the estimator saw is not (yet)
        // droppable, and the next superseding publish re-raises it.
        let _ = self
            .stale
            .superseded
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(if report.events_dropped == 0 {
                    0
                } else {
                    v.saturating_sub(report.events_dropped)
                })
            });
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::FsyncPolicy;
    use jdvs_storage::model::{ProductAttributes, ProductId};
    use std::fs;
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("jdvs-dq-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn config(dir: &Path) -> LogConfig {
        LogConfig {
            dir: dir.to_path_buf(),
            segment_max_bytes: 256,
            fsync: FsyncPolicy::Always,
            group_commit: false,
        }
    }

    fn add(i: u64) -> ProductEvent {
        ProductEvent::AddProduct {
            product_id: ProductId(i),
            images: vec![ProductAttributes::new(
                ProductId(i),
                i,
                100,
                1,
                format!("dq-{i}"),
            )],
        }
    }

    #[test]
    fn publishes_survive_reopen_with_same_offsets() {
        let dir = temp_dir("reopen");
        let metrics = Arc::new(DurabilityMetrics::new());
        {
            let dq = DurableQueue::open(config(&dir), Arc::clone(&metrics)).unwrap();
            for i in 0..30 {
                assert_eq!(dq.queue().publish(add(i)), i);
            }
        } // no clean shutdown needed: FsyncPolicy::Always
        let dq = DurableQueue::open(config(&dir), Arc::new(DurabilityMetrics::new())).unwrap();
        assert_eq!(dq.recovered_events(), 30);
        assert_eq!(dq.queue().len(), 30);
        let events = dq.queue().read_range(0, 100);
        assert_eq!(events.len(), 30);
        assert_eq!(events[7], add(7));
        // New publishes continue the offset sequence and hit the log.
        assert_eq!(dq.queue().publish(add(30)), 30);
        drop(dq);
        let dq = DurableQueue::open(config(&dir), Arc::new(DurabilityMetrics::new())).unwrap();
        assert_eq!(dq.queue().len(), 31);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pruned_queue_keeps_absolute_offsets_across_reopen() {
        let dir = temp_dir("prune");
        let dq = DurableQueue::open(config(&dir), Arc::new(DurabilityMetrics::new())).unwrap();
        for i in 0..40 {
            dq.queue().publish(add(i));
        }
        let pruned = dq.prune_to(40).unwrap();
        assert!(pruned >= 1, "tiny segments must be reclaimable");
        drop(dq);
        let dq = DurableQueue::open(config(&dir), Arc::new(DurabilityMetrics::new())).unwrap();
        let base = dq.queue().base();
        assert!(base > 0, "pruning moved the base");
        assert_eq!(dq.queue().len(), 40, "absolute length preserved");
        let tail = dq.queue().read_range(base, usize::MAX);
        assert_eq!(tail[0], add(base), "offset identity survives");
        assert_eq!(dq.queue().publish(add(40)), 40);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_publishes_are_durable_on_ack_and_survive_reopen() {
        let dir = temp_dir("group");
        let mut cfg = config(&dir);
        cfg.group_commit = true;
        let metrics = Arc::new(DurabilityMetrics::new());
        let dq = DurableQueue::open(cfg.clone(), Arc::clone(&metrics)).unwrap();
        let writers = 4u64;
        let per_writer = 25u64;
        std::thread::scope(|s| {
            for w in 0..writers {
                let queue = Arc::clone(dq.queue());
                let metrics = Arc::clone(&metrics);
                s.spawn(move || {
                    for i in 0..per_writer {
                        let off = queue.publish(add(w * per_writer + i));
                        // The Always loss bound must hold per acknowledged
                        // publish even though syncs are shared.
                        assert!(
                            metrics.durable_offset.get() > off,
                            "publish {off} acknowledged before it was durable"
                        );
                    }
                });
            }
        });
        let total = writers * per_writer;
        assert_eq!(dq.queue().len(), total);
        assert!(
            metrics.log_syncs.get() <= metrics.log_appends.get(),
            "group commit never syncs more than once per append"
        );
        drop(dq); // crash: group commit already made everything durable
        let dq = DurableQueue::open(cfg, Arc::new(DurabilityMetrics::new())).unwrap();
        assert_eq!(dq.recovered_events(), total);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_frame_ratio_tracks_hot_key_churn_and_settles_after_compaction() {
        let dir = temp_dir("stale");
        let hot = |i: u64| ProductEvent::AddProduct {
            product_id: ProductId(i),
            images: vec![ProductAttributes::new(
                ProductId(i),
                i,
                100,
                1,
                "hot".into(),
            )],
        };
        let dq = DurableQueue::open(config(&dir), Arc::new(DurabilityMetrics::new())).unwrap();
        assert_eq!(dq.stale_frame_ratio(), 0.0, "empty log has nothing stale");
        for i in 0..10 {
            dq.queue().publish(hot(i));
        }
        // 9 of the 10 frames re-add an already-seen URL.
        let before = dq.stale_frame_ratio();
        assert!(before >= 0.8, "got {before}");
        let report = dq.compact().unwrap();
        assert!(report.events_dropped > 0);
        assert!(dq.stale_frame_ratio() < before, "estimate settles down");
        // A second pass finds nothing (the remaining superseded frames sit
        // in the active segment) and must zero the estimate — a threshold
        // scheduler would otherwise re-trigger futile rewrites forever.
        let again = dq.compact().unwrap();
        assert_eq!(again.events_dropped, 0);
        assert_eq!(dq.stale_frame_ratio(), 0.0);
        drop(dq);
        // Reopen rebuilds the estimate from replay: tombstones are not
        // adds, so the compacted log reads as mostly fresh.
        let dq = DurableQueue::open(config(&dir), Arc::new(DurabilityMetrics::new())).unwrap();
        assert!(
            dq.stale_frame_ratio() < 0.5,
            "got {}",
            dq.stale_frame_ratio()
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_surfaces_in_open_report_and_queue_shrinks() {
        let dir = temp_dir("torn");
        {
            let dq = DurableQueue::open(config(&dir), Arc::new(DurabilityMetrics::new())).unwrap();
            for i in 0..5 {
                dq.queue().publish(add(i));
            }
        }
        // Tear the newest segment's tail by a few bytes.
        let mut segs: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "seg"))
            .collect();
        segs.sort();
        let last = segs.last().unwrap();
        let len = fs::metadata(last).unwrap().len();
        let f = fs::OpenOptions::new().write(true).open(last).unwrap();
        f.set_len(len - 2).unwrap();
        drop(f);

        let metrics = Arc::new(DurabilityMetrics::new());
        let dq = DurableQueue::open(config(&dir), Arc::clone(&metrics)).unwrap();
        assert_eq!(dq.queue().len(), 4, "torn final record dropped");
        assert!(dq.open_report().torn_bytes > 0);
        assert!(metrics.torn_bytes_truncated.get() > 0);
        // The queue still accepts and persists new events at offset 4.
        assert_eq!(dq.queue().publish(add(99)), 4);
        fs::remove_dir_all(&dir).unwrap();
    }
}
