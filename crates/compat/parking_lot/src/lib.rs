//! Offline shim for the subset of `parking_lot` used in this workspace.
//!
//! Backed by `std::sync`; lock poisoning is ignored (a panicking holder does
//! not poison the lock for everyone else, matching parking_lot semantics).
//!
//! # ThreadSanitizer visibility
//!
//! Each lock carries an extra `AtomicUsize` (`hb`) that every unlock bumps
//! with a release RMW and every lock acquisition reads with an acquire
//! load. The std locks on Linux are futex-based and live in the
//! *uninstrumented* standard library, so a ThreadSanitizer build that
//! cannot rebuild std (`-Zbuild-std` needs a registry) cannot see the
//! happens-before edges they create and reports every lock-protected
//! access as a race. The `hb` counter lives in instrumented code, and RMWs
//! extend release sequences, so the edge `unlock → next lock` becomes
//! visible to TSan — false positives vanish while genuinely unprotected
//! accesses are still caught. Cost is one uncontended atomic op per lock
//! transition, noise for a compat shim.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::PoisonError;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

pub struct Mutex<T: ?Sized> {
    hb: AtomicUsize,
    inner: std::sync::Mutex<T>,
}

/// Guard wraps an `Option` so `Condvar::wait*` can temporarily take the inner
/// std guard by value (std's condvar consumes and returns guards).
pub struct MutexGuard<'a, T: ?Sized> {
    hb: &'a AtomicUsize,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            hb: AtomicUsize::new(0),
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        // Pairs with the release RMW in MutexGuard::drop; see module docs.
        self.hb.load(Ordering::Acquire);
        MutexGuard {
            hb: &self.hb,
            inner: Some(g),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let g = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        self.hb.load(Ordering::Acquire);
        Some(MutexGuard {
            hb: &self.hb,
            inner: Some(g),
        })
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Runs just before the std guard's own drop releases the real lock;
        // the RMW is therefore still inside the critical section, so the
        // next locker's acquire load always reads it (or a later one in the
        // same release sequence).
        self.hb.fetch_add(1, Ordering::Release);
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

pub struct RwLock<T: ?Sized> {
    hb: AtomicUsize,
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    hb: &'a AtomicUsize,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    hb: &'a AtomicUsize,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            hb: AtomicUsize::new(0),
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let g = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        self.hb.load(Ordering::Acquire);
        RwLockReadGuard {
            hb: &self.hb,
            inner: g,
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let g = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        self.hb.load(Ordering::Acquire);
        RwLockWriteGuard {
            hb: &self.hb,
            inner: g,
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let g = match self.inner.try_read() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        self.hb.load(Ordering::Acquire);
        Some(RwLockReadGuard {
            hb: &self.hb,
            inner: g,
        })
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let g = match self.inner.try_write() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        self.hb.load(Ordering::Acquire);
        Some(RwLockWriteGuard {
            hb: &self.hb,
            inner: g,
        })
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        // Readers bump too: a writer's later acquire load must synchronize
        // with every reader that could have observed prior state. This
        // over-synchronizes reader→reader (harmless — it only makes TSan
        // conservative, never blind to writer-side races).
        self.hb.fetch_add(1, Ordering::Release);
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.hb.fetch_add(1, Ordering::Release);
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        // The wait releases and re-acquires the real lock; mirror the
        // TSan-visible edge on both sides (see module docs).
        guard.hb.fetch_add(1, Ordering::Release);
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.hb.load(Ordering::Acquire);
        guard.inner = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        guard.hb.fetch_add(1, Ordering::Release);
        let (inner, res) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => p.into_inner(),
        };
        guard.hb.load(Ordering::Acquire);
        guard.inner = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn try_variants_refuse_contended_locks() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
        let l = RwLock::new(0);
        let r = l.read();
        assert!(l.try_write().is_none());
        assert!(l.try_read().is_some());
        drop(r);
        assert!(l.try_write().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
