//! Product quantization (Jégou, Douze & Schmid 2011 — the paper's ref \[19\]).
//!
//! The production JD system scans inverted lists over raw features; at
//! 100 B images the memory footprint makes compressed codes attractive, and
//! the paper cites PQ as the established technique. We provide it as the
//! searcher's optional compressed-scan mode and as an ablation subject: a
//! `d`-dimensional vector is split into `m` subspaces, each quantized by its
//! own 256-entry codebook, so a vector costs `m` bytes instead of `4·d`.
//!
//! Queries use asymmetric distance computation (ADC): a per-query lookup
//! table of squared distances from each query sub-vector to every codeword,
//! after which scanning a code is `m` table lookups and adds.

use serde::{Deserialize, Serialize};

use crate::distance::squared_l2;
use crate::kmeans::{Kmeans, KmeansConfig};
use crate::vector::Vector;

/// Number of codewords per sub-quantizer (one byte per sub-code).
pub const CODEBOOK_SIZE: usize = 256;

/// Configuration for [`ProductQuantizer::train`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PqConfig {
    /// Number of subspaces `m`; must divide the vector dimension.
    pub num_subspaces: usize,
    /// Lloyd iterations per sub-quantizer.
    pub max_iters: usize,
    /// Training seed.
    pub seed: u64,
}

impl Default for PqConfig {
    fn default() -> Self {
        Self {
            num_subspaces: 8,
            max_iters: 15,
            seed: 0xC0DE,
        }
    }
}

/// A trained product quantizer.
///
/// # Example
///
/// ```
/// use jdvs_vector::{Vector, pq::{ProductQuantizer, PqConfig}};
/// use jdvs_vector::rng::Xoshiro256;
///
/// let mut rng = Xoshiro256::seed_from(1);
/// let data: Vec<Vector> = (0..300)
///     .map(|_| (0..8).map(|_| rng.next_gaussian() as f32).collect())
///     .collect();
/// let pq = ProductQuantizer::train(&data, &PqConfig { num_subspaces: 4, ..Default::default() });
/// let code = pq.encode(data[0].as_slice());
/// assert_eq!(code.len(), 4);
/// let approx = pq.decode(&code);
/// assert_eq!(approx.dim(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProductQuantizer {
    dim: usize,
    sub_dim: usize,
    // One k-means model per subspace, each over `sub_dim`-dimensional data.
    codebooks: Vec<Kmeans>,
}

impl ProductQuantizer {
    /// Trains one 256-word codebook per subspace on `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty, `config.num_subspaces` is zero or does not
    /// divide the vector dimension, or vectors have inconsistent dimensions.
    pub fn train(data: &[Vector], config: &PqConfig) -> Self {
        assert!(!data.is_empty(), "cannot train PQ on empty data");
        let dim = data[0].dim();
        let m = config.num_subspaces;
        assert!(m > 0, "num_subspaces must be positive");
        assert_eq!(
            dim % m,
            0,
            "num_subspaces ({m}) must divide dimension ({dim})"
        );
        let sub_dim = dim / m;
        let mut codebooks = Vec::with_capacity(m);
        for sub in 0..m {
            let slice_data: Vec<Vector> = data
                .iter()
                .map(|v| Vector::from(&v.as_slice()[sub * sub_dim..(sub + 1) * sub_dim]))
                .collect();
            let cfg = KmeansConfig {
                k: CODEBOOK_SIZE,
                max_iters: config.max_iters,
                tolerance: 1e-4,
                seed: config.seed.wrapping_add(sub as u64),
            };
            codebooks.push(Kmeans::train(&slice_data, &cfg));
        }
        Self {
            dim,
            sub_dim,
            codebooks,
        }
    }

    /// Original vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of subspaces `m` (= bytes per encoded vector).
    pub fn num_subspaces(&self) -> usize {
        self.codebooks.len()
    }

    /// Encodes `v` into `m` one-byte codes.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.dim()`.
    pub fn encode(&self, v: &[f32]) -> Vec<u8> {
        assert_eq!(v.len(), self.dim, "encode dimension mismatch");
        self.codebooks
            .iter()
            .enumerate()
            .map(|(sub, cb)| cb.assign(&v[sub * self.sub_dim..(sub + 1) * self.sub_dim]) as u8)
            .collect()
    }

    /// Reconstructs the approximate vector for a code.
    ///
    /// # Panics
    ///
    /// Panics if `code.len() != self.num_subspaces()`.
    pub fn decode(&self, code: &[u8]) -> Vector {
        assert_eq!(
            code.len(),
            self.num_subspaces(),
            "decode code-length mismatch"
        );
        let mut out = Vec::with_capacity(self.dim);
        for (sub, &c) in code.iter().enumerate() {
            let centroid = &self.codebooks[sub].centroids()[c as usize % self.codebooks[sub].k()];
            out.extend_from_slice(centroid.as_slice());
        }
        Vector::from(out)
    }

    /// Builds the per-query ADC table: entry `sub * 256 + word` is the
    /// squared distance between the query's `sub`-th sub-vector and codeword
    /// `word`. Rows are stored **flattened and contiguous** so the SIMD
    /// gather kernel can index the whole table from one base pointer.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != self.dim()`.
    pub fn adc_table(&self, query: &[f32]) -> AdcTable {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let m = self.num_subspaces();
        let mut flat = vec![f32::INFINITY; m * CODEBOOK_SIZE];
        for (sub, cb) in self.codebooks.iter().enumerate() {
            let q = &query[sub * self.sub_dim..(sub + 1) * self.sub_dim];
            let row = &mut flat[sub * CODEBOOK_SIZE..(sub + 1) * CODEBOOK_SIZE];
            for (w, centroid) in cb.centroids().iter().enumerate() {
                row[w] = squared_l2(q, centroid.as_slice());
            }
        }
        AdcTable { flat, m }
    }
}

/// Asymmetric-distance lookup table for one query; see
/// [`ProductQuantizer::adc_table`].
#[derive(Debug, Clone)]
pub struct AdcTable {
    /// Row-major `m × 256` distance entries.
    flat: Vec<f32>,
    m: usize,
}

impl AdcTable {
    /// Approximate squared L2 distance between the query and the vector
    /// encoded as `code` (SIMD-dispatched table lookup).
    ///
    /// # Panics
    ///
    /// Panics if `code.len()` differs from the number of subspaces.
    #[inline]
    pub fn distance(&self, code: &[u8]) -> f32 {
        assert_eq!(code.len(), self.m, "code length mismatch");
        crate::simd::active().adc(code, &self.flat)
    }

    /// Number of subspaces `m`.
    pub fn num_subspaces(&self) -> usize {
        self.m
    }

    /// The flattened `m × 256` row-major table (for custom scan kernels and
    /// differential tests).
    pub fn flat(&self) -> &[f32] {
        &self.flat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    fn random_data(n: usize, dim: usize, seed: u64) -> Vec<Vector> {
        let mut rng = Xoshiro256::seed_from(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.next_gaussian() as f32).collect())
            .collect()
    }

    #[test]
    fn encode_decode_reduces_error_vs_random() {
        let data = random_data(400, 16, 5);
        let pq = ProductQuantizer::train(
            &data,
            &PqConfig {
                num_subspaces: 4,
                ..Default::default()
            },
        );
        let mut err = 0.0f64;
        let mut base = 0.0f64;
        for v in data.iter().take(100) {
            let approx = pq.decode(&pq.encode(v.as_slice()));
            err += squared_l2(v.as_slice(), approx.as_slice()) as f64;
            base += v.squared_norm() as f64; // error of quantizing to origin
        }
        assert!(
            err < base * 0.5,
            "PQ reconstruction ({err}) should beat origin baseline ({base})"
        );
    }

    #[test]
    fn adc_matches_decoded_distance() {
        let data = random_data(300, 8, 6);
        let pq = ProductQuantizer::train(
            &data,
            &PqConfig {
                num_subspaces: 2,
                ..Default::default()
            },
        );
        let query = &data[0];
        let table = pq.adc_table(query.as_slice());
        for v in data.iter().take(50) {
            let code = pq.encode(v.as_slice());
            let adc = table.distance(&code);
            let exact = squared_l2(query.as_slice(), pq.decode(&code).as_slice());
            assert!((adc - exact).abs() < 1e-3, "adc {adc} vs decoded {exact}");
        }
    }

    #[test]
    fn adc_preserves_neighbor_ordering_roughly() {
        // With well-separated clusters, ADC must rank the same-cluster point
        // closer than a far-cluster point.
        let mut data = Vec::new();
        let mut rng = Xoshiro256::seed_from(8);
        for c in [0.0f32, 50.0] {
            for _ in 0..200 {
                data.push(Vector::from(vec![
                    c + rng.next_gaussian() as f32,
                    c + rng.next_gaussian() as f32,
                    c + rng.next_gaussian() as f32,
                    c + rng.next_gaussian() as f32,
                ]));
            }
        }
        let pq = ProductQuantizer::train(
            &data,
            &PqConfig {
                num_subspaces: 2,
                ..Default::default()
            },
        );
        let table = pq.adc_table(data[0].as_slice());
        let near = table.distance(&pq.encode(data[1].as_slice()));
        let far = table.distance(&pq.encode(data[250].as_slice()));
        assert!(near < far);
    }

    #[test]
    fn code_length_equals_subspaces() {
        let data = random_data(300, 12, 7);
        let pq = ProductQuantizer::train(
            &data,
            &PqConfig {
                num_subspaces: 3,
                ..Default::default()
            },
        );
        assert_eq!(pq.encode(data[0].as_slice()).len(), 3);
        assert_eq!(pq.num_subspaces(), 3);
        assert_eq!(pq.dim(), 12);
    }

    #[test]
    #[should_panic(expected = "must divide dimension")]
    fn indivisible_subspaces_panic() {
        let data = random_data(10, 10, 1);
        ProductQuantizer::train(
            &data,
            &PqConfig {
                num_subspaces: 3,
                ..Default::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "encode dimension mismatch")]
    fn encode_wrong_dim_panics() {
        let data = random_data(50, 8, 2);
        let pq = ProductQuantizer::train(
            &data,
            &PqConfig {
                num_subspaces: 2,
                ..Default::default()
            },
        );
        pq.encode(&[0.0; 4]);
    }

    #[test]
    fn training_is_deterministic() {
        let data = random_data(200, 8, 3);
        let cfg = PqConfig {
            num_subspaces: 2,
            ..Default::default()
        };
        let a = ProductQuantizer::train(&data, &cfg);
        let b = ProductQuantizer::train(&data, &cfg);
        assert_eq!(a.encode(data[5].as_slice()), b.encode(data[5].as_slice()));
    }
}
