//! The partition-lifecycle experiment: what the mobility operations cost.
//!
//! Not a paper figure: the paper's partitions are static (Section 2.4
//! fixes the layout at deployment). This experiment prices the lifecycle
//! operations the reproduction adds on top — how long a replica bootstrap
//! takes as a function of the log suffix it must tail past its checkpoint
//! seed, and what one online split costs at full log length.
//!
//! The bootstrap protocol seeds from the partition's newest checkpoint and
//! tails the live log until it converges within the configured lag bound,
//! so its wall time should be dominated by (and roughly linear in) the
//! suffix length; the rows trace that curve with the seed held fixed.

use std::time::Instant;

use jdvs_workload::recovery::{RecoveryConfig, RecoveryHarness};

use crate::report::ExperimentResult;
use crate::row;

use super::Ctx;

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("jdvs-bench-lifecycle-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// `lifecycle`: replica bootstrap time vs log-suffix length + one split.
pub fn lifecycle(ctx: &Ctx) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "lifecycle",
        "Partition lifecycle: bootstrap time vs log-suffix length, online split cost",
        "not in paper — prices the partition mobility the reproduction adds over Section 2.4",
    );

    let products = {
        let base = ctx.scaled(1_500, 150);
        if ctx.quick {
            base / 2
        } else {
            base
        }
    };
    let dir = scratch("suffix");
    let mut config = RecoveryConfig::fast(&dir);
    config.num_products = products;
    config.probes = 4;
    config.options.segment_max_bytes = 256 * 1024;
    let harness = RecoveryHarness::new(config);
    let total = harness.events().len();
    let seed_at = total / 6;

    let mut topology = harness.boot().expect("boot durable topology");
    harness.publish(&topology, 0..seed_at);
    topology.checkpoint_partition(0).expect("checkpoint p0");
    topology.checkpoint_partition(1).expect("checkpoint p1");

    // Grow the log past the fixed checkpoint seed and bootstrap a fresh
    // replica at each point: the seed is constant, the tail is the
    // variable. Each bootstrap joins the serving set for good, so later
    // points also measure under a larger replica row — the realistic case.
    let mut published = seed_at;
    for fraction in [0.0, 0.25, 0.5, 1.0] {
        let target = seed_at + ((total - seed_at) as f64 * fraction) as usize;
        if target > published {
            harness.publish(&topology, published..target);
            published = target;
        }
        let suffix = (published - seed_at) as u64;
        let t0 = Instant::now();
        let report = topology.bootstrap_replica(0);
        let secs = t0.elapsed().as_secs_f64();
        result.push_row(row![
            "phase" => "bootstrap",
            "suffix_events" => suffix,
            "tailed" => report.tailed,
            "from_snapshot" => report.from_snapshot.to_string(),
            "replica" => report.replica,
            "wall_ms" => format!("{:.2}", secs * 1e3),
            "tail_rate_per_sec" => format!("{:.0}", if secs > 0.0 { report.tailed as f64 / secs } else { 0.0 }),
        ]);
    }

    // One online split at full log length for scale context: both halves
    // rebuild from the checkpoint seed plus the whole surviving suffix.
    let t0 = Instant::now();
    let split = topology.split_partition(0).expect("online split");
    let secs = t0.elapsed().as_secs_f64();
    result.push_row(row![
        "phase" => "split",
        "suffix_events" => split.messages_replayed,
        "tailed" => 0,
        "from_snapshot" => split.from_snapshot.to_string(),
        "replica" => split.sibling,
        "wall_ms" => format!("{:.2}", secs * 1e3),
        "tail_rate_per_sec" => 0,
    ]);
    harness.halt(topology);

    result.note(format!(
        "one partition of 2, seed checkpoint fixed at event {seed_at} of {total}; each bootstrap \
         row forks the same snapshot and tails the suffix shown, so wall time vs suffix_events \
         traces the tail cost; the split row rebuilds both halves from the same seed at full \
         log length"
    ));
    let _ = std::fs::remove_dir_all(&dir);
    result
}
