//! Quickstart: build a small visual search world and run a few queries.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a synthetic catalog (products grouped into visual families),
//! stands up the full blender → broker → searcher topology, then searches
//! with fresh "photos" of three product families — the runnable analogue of
//! the paper's Figure 14 mobile-app examples.

use std::time::{Duration, Instant};

use jdvs::search::SearchQuery;
use jdvs::workload::catalog::CatalogConfig;
use jdvs::workload::queries::QueryGenerator;
use jdvs::workload::scenario::{World, WorldConfig};

fn main() {
    println!("jdvs quickstart — building a small world...");
    let t0 = Instant::now();
    let world = World::build(WorldConfig {
        catalog: CatalogConfig {
            num_products: 600,
            num_clusters: 30,
            ..Default::default()
        },
        ..WorldConfig::fast_test()
    });
    println!(
        "built: {} products / {} images indexed across {} partitions in {:?}\n",
        world.catalog().len(),
        world.catalog().num_images(),
        world.topology().indexes().len(),
        t0.elapsed()
    );

    let client = world.client(Duration::from_secs(5));
    let generator = QueryGenerator::new(world.catalog(), 42);

    // Three "photo" queries, top-6 each (like the paper's mobile examples).
    for round in 0..3 {
        let (query, cluster) = generator.next_query(world.images(), 6);
        let url = match &query.input {
            jdvs::search::QueryInput::ImageUrl(u) => u.clone(),
            _ => unreachable!(),
        };
        let t = Instant::now();
        let resp = client.search(query).expect("search failed");
        println!(
            "query #{round} (photo {url}, visual family {cluster}) — {:?}",
            t.elapsed()
        );
        println!(
            "  {:<8} {:>10} {:>10} {:>8} {:>8}  url",
            "score", "distance", "product", "sales", "price"
        );
        for r in &resp.results {
            let family = world.cluster_of(r.hit.product_id);
            println!(
                "  {:<8.4} {:>10.4} {:>10} {:>8} {:>8}  {} (family {:?})",
                r.score,
                r.hit.distance,
                r.hit.product_id,
                r.hit.sales,
                r.hit.price,
                r.hit.url,
                family
            );
        }
        let same = resp
            .results
            .iter()
            .filter(|r| world.cluster_of(r.hit.product_id) == Some(cluster))
            .count();
        println!(
            "  → {same}/{} results from the query's own product family\n",
            resp.results.len()
        );
    }

    // Exact-image query: searching with an indexed image returns its product.
    let product = &world.catalog().products()[7];
    let resp = client
        .search(SearchQuery::by_image_url(product.urls[0].clone(), 1))
        .expect("search failed");
    println!(
        "exact-image query for {} returned {} (distance {:.6})",
        product.id, resp.results[0].hit.product_id, resp.results[0].hit.distance
    );
    assert_eq!(resp.results[0].hit.product_id, product.id);
    println!("quickstart OK");
}
