//! Micro-benchmarks for the distance kernels — the inner loop of every
//! inverted-list scan (Section 2.4's Euclidean-distance computation).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use jdvs_vector::distance::{cosine_similarity, dot, squared_l2};
use jdvs_vector::rng::Xoshiro256;
use jdvs_vector::simd::{self, ADC_ROW};

fn random_vec(dim: usize, seed: u64) -> Vec<f32> {
    let mut rng = Xoshiro256::seed_from(seed);
    (0..dim).map(|_| rng.next_gaussian() as f32).collect()
}

fn bench_distance(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance");
    for dim in [32usize, 64, 128, 512] {
        let a = random_vec(dim, 1);
        let b = random_vec(dim, 2);
        group.bench_with_input(BenchmarkId::new("squared_l2", dim), &dim, |bench, _| {
            bench.iter(|| squared_l2(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("dot", dim), &dim, |bench, _| {
            bench.iter(|| dot(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("cosine", dim), &dim, |bench, _| {
            bench.iter(|| cosine_similarity(black_box(&a), black_box(&b)))
        });
    }
    group.finish();

    // Scalar vs runtime-dispatched SIMD, kernel by kernel: the raw win of
    // the vectorized path before any memory-layout changes.
    let mut group = c.benchmark_group("kernels");
    let fast = simd::detect_best();
    let scalar = simd::scalar();
    for dim in [64usize, 512] {
        let a = random_vec(dim, 7);
        let b = random_vec(dim, 8);
        group.bench_with_input(
            BenchmarkId::new("squared_l2_scalar", dim),
            &dim,
            |bench, _| bench.iter(|| scalar.squared_l2(black_box(&a), black_box(&b))),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("squared_l2_{}", fast.name()), dim),
            &dim,
            |bench, _| bench.iter(|| fast.squared_l2(black_box(&a), black_box(&b))),
        );
        group.bench_with_input(BenchmarkId::new("dot_scalar", dim), &dim, |bench, _| {
            bench.iter(|| scalar.dot(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(
            BenchmarkId::new(format!("dot_{}", fast.name()), dim),
            &dim,
            |bench, _| bench.iter(|| fast.dot(black_box(&a), black_box(&b))),
        );
    }
    for m in [8usize, 16] {
        let table = random_vec(m * ADC_ROW, 9);
        let mut rng = Xoshiro256::seed_from(10);
        let code: Vec<u8> = (0..m).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
        group.bench_with_input(BenchmarkId::new("adc_scalar", m), &m, |bench, _| {
            bench.iter(|| scalar.adc(black_box(&code), black_box(&table)))
        });
        group.bench_with_input(
            BenchmarkId::new(format!("adc_{}", fast.name()), m),
            &m,
            |bench, _| bench.iter(|| fast.adc(black_box(&code), black_box(&table))),
        );
    }
    group.finish();

    // A full inverted-list scan: 1 000 candidates at 64-d, the typical
    // per-list work a searcher does per probed cell.
    let mut group = c.benchmark_group("list_scan");
    let query = random_vec(64, 3);
    let candidates: Vec<Vec<f32>> = (0..1_000).map(|i| random_vec(64, 100 + i)).collect();
    group.bench_function("scan_1000x64d", |bench| {
        bench.iter(|| {
            let mut best = f32::INFINITY;
            for cand in &candidates {
                best = best.min(squared_l2(black_box(&query), cand));
            }
            best
        })
    });
    group.finish();
}

criterion_group!(benches, bench_distance);
criterion_main!(benches);
