//! # jdvs-durability
//!
//! Durability for the real-time ingestion path: the paper's message queue
//! (Section 2.3) is modelled in-memory by
//! [`MessageQueue`](jdvs_storage::MessageQueue); this crate gives it a
//! crash story so a searcher restart does not silently forget every
//! real-time update since the last weekly full build.
//!
//! Three pieces, layered:
//!
//! - [`log`] — a segmented append-only event log. Every record is framed
//!   with a length and a CRC32C; a configurable [`FsyncPolicy`] trades
//!   append throughput for loss bound; opening the log truncates torn or
//!   corrupt tails back to the last valid frame, so the log is always a
//!   verified prefix of what was acknowledged. Under
//!   [`FsyncPolicy::Always`], [`commit`] can batch concurrent publishers
//!   into shared group-commit syncs without weakening the loss bound.
//! - [`checkpoint`] — atomic index snapshots (temp file + `fsync` +
//!   rename) with a CRC-protected manifest recording `{snapshot file,
//!   applied offset}`. Recovery loads the newest snapshot that validates
//!   and knows exactly which log suffix is still unapplied.
//! - [`queue`] / [`recovery`] — [`DurableQueue`] rebuilds the in-memory
//!   queue from the log on open and tees every publish into it;
//!   [`recover_partition`] seeds an indexer from the newest checkpoint and
//!   replays the suffix through the *same*
//!   [`RealtimeIndexer`](jdvs_core::realtime::RealtimeIndexer) code path
//!   live ingestion uses.
//!
//! Retention ties the pieces together: once a checkpoint covers offset
//! *W*, log segments wholly below *W* are deleted
//! ([`DurableQueue::prune_to`]); the queue keeps absolute offsets across
//! pruning via its base offset. Between prunes, [`compact`] reclaims the
//! middle of the log: cold-segment events superseded per image URL by
//! later ones are blanked into no-op tombstones (offsets preserved, so
//! replay and checkpoints are oblivious) with a crash-safe segment swap.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use jdvs_durability::{DurableQueue, FsyncPolicy, LogConfig};
//! use jdvs_metrics::DurabilityMetrics;
//! use jdvs_storage::model::{ProductEvent, ProductId};
//!
//! let dir = std::env::temp_dir().join(format!("jdvs-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let mut config = LogConfig::new(&dir);
//! config.fsync = FsyncPolicy::Always;
//!
//! // First life: publish two events.
//! let dq = DurableQueue::open(config.clone(), Arc::new(DurabilityMetrics::new())).unwrap();
//! dq.queue().publish(ProductEvent::RemoveProduct { product_id: ProductId(1), urls: vec![] });
//! dq.queue().publish(ProductEvent::RemoveProduct { product_id: ProductId(2), urls: vec![] });
//! drop(dq); // crash: no clean shutdown required
//!
//! // Second life: the queue comes back with the same contents.
//! let dq = DurableQueue::open(config, Arc::new(DurabilityMetrics::new())).unwrap();
//! assert_eq!(dq.recovered_events(), 2);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
pub mod codec;
pub mod commit;
pub mod compact;
pub mod log;
pub mod queue;
pub mod recovery;

pub use checkpoint::{CheckpointConfig, CheckpointStore, Manifest, RecoveredCheckpoint};
pub use codec::{decode_event, encode_event, CodecError};
pub use commit::CommitQueue;
pub use compact::{compact_log, CompactionReport};
pub use log::{FsyncPolicy, LogConfig, OpenReport, SegmentedLog};
pub use queue::DurableQueue;
pub use recovery::{recover_partition, RecoveryReport};
