//! Offline placeholder for `rand`. Library code uses `jdvs_vector::rng`
//! (hand-rolled deterministic generators) instead; this crate exists only so
//! dev-dependency resolution succeeds without a registry. A tiny seeded
//! generator is provided in case a test reaches for one.

#![forbid(unsafe_code)]

/// Minimal `Rng`-flavoured trait over the few methods tests might use.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        let span = range.end.saturating_sub(range.start).max(1);
        range.start + self.next_u64() % span
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// SplitMix64: tiny, deterministic, good-enough for test seeding.
#[derive(Debug, Clone)]
pub struct SmallRng(u64);

impl SmallRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        Self(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Process-global convenience generator (deterministic, NOT thread-local
/// entropy — fine for tests, do not use for anything security-adjacent).
pub fn thread_rng() -> SmallRng {
    SmallRng::seed_from_u64(0x5eed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        assert_eq!(a.next_u64(), b.next_u64());
        for _ in 0..100 {
            let v = a.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }
}
