//! The synthetic CNN stand-in.
//!
//! Features are generated as `center(visual_seed) + jitter(content_hash)`:
//! every image whose blob carries the same `visual_seed` (same "visual
//! cluster": same product family, colourway, etc.) gets a feature vector
//! near a shared cluster center, displaced by a small deterministic jitter
//! derived from the exact bytes. Identical bytes ⇒ identical vector;
//! similar products ⇒ nearby vectors; unrelated products ⇒ far vectors.

use jdvs_storage::image_store::ImageBlob;
use jdvs_vector::rng::{SplitMix64, Xoshiro256};
use jdvs_vector::Vector;
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic extractor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtractorConfig {
    /// Feature dimensionality (production CNN embeddings are 128–4096-d;
    /// the default keeps experiments fast while staying "high-dimensional"
    /// in the curse-of-dimensionality sense).
    pub dim: usize,
    /// Standard deviation of per-image jitter around the cluster center.
    /// Cluster centers are unit-scale, so 0.05–0.3 gives well-separated
    /// but non-trivial clusters.
    pub jitter: f32,
    /// Master seed mixed into cluster-center derivation (a different model
    /// checkpoint, in production terms).
    pub model_seed: u64,
    /// L2-normalize output features (standard practice for CNN embeddings).
    pub normalize: bool,
}

impl Default for ExtractorConfig {
    fn default() -> Self {
        Self {
            dim: 64,
            jitter: 0.15,
            model_seed: 0xFEA7,
            normalize: true,
        }
    }
}

/// Deterministic feature extractor; see the module docs for the model.
///
/// # Example
///
/// ```
/// use jdvs_features::{FeatureExtractor, ExtractorConfig};
/// use jdvs_storage::ImageStore;
///
/// let store = ImageStore::with_blob_len(256);
/// let extractor = FeatureExtractor::new(ExtractorConfig::default());
/// let k1 = store.put_synthetic("sku1/a.jpg", 7);
/// let k2 = store.put_synthetic("sku1/b.jpg", 7);  // same visual cluster
/// let k3 = store.put_synthetic("sku9/a.jpg", 1234); // different cluster
/// let f1 = extractor.extract(&store.get(k1).unwrap());
/// let f2 = extractor.extract(&store.get(k2).unwrap());
/// let f3 = extractor.extract(&store.get(k3).unwrap());
/// let near = jdvs_vector::distance::squared_l2(f1.as_slice(), f2.as_slice());
/// let far = jdvs_vector::distance::squared_l2(f1.as_slice(), f3.as_slice());
/// assert!(near < far);
/// ```
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    config: ExtractorConfig,
}

impl FeatureExtractor {
    /// Creates an extractor.
    ///
    /// # Panics
    ///
    /// Panics if `config.dim == 0`.
    pub fn new(config: ExtractorConfig) -> Self {
        assert!(config.dim > 0, "feature dimension must be positive");
        Self { config }
    }

    /// The configured feature dimensionality.
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &ExtractorConfig {
        &self.config
    }

    /// Extracts features from an image blob.
    pub fn extract(&self, blob: &ImageBlob) -> Vector {
        let center = self.cluster_center(blob.visual_seed);
        let content = content_hash(&blob.bytes);
        let mut rng = Xoshiro256::seed_from(content ^ self.config.model_seed.rotate_left(17));
        let mut data = center.into_inner();
        for x in &mut data {
            *x += rng.next_gaussian() as f32 * self.config.jitter;
        }
        let mut v = Vector::from(data);
        if self.config.normalize {
            v.normalize();
        }
        v
    }

    /// The (unjittered, unnormalized) center of a visual cluster — exposed
    /// so workload generators can place query images inside a known cluster.
    pub fn cluster_center(&self, visual_seed: u64) -> Vector {
        let mut sm = SplitMix64::new(visual_seed ^ self.config.model_seed);
        let mut rng = Xoshiro256::seed_from(sm.next_u64());
        let mut data = vec![0.0f32; self.config.dim];
        rng.fill_gaussian(&mut data);
        Vector::from(data)
    }
}

/// FNV-1a over the blob contents: the deterministic "what the pixels say"
/// input to jitter.
fn content_hash(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use jdvs_storage::ImageStore;
    use jdvs_vector::distance::squared_l2;

    fn extractor() -> FeatureExtractor {
        FeatureExtractor::new(ExtractorConfig {
            dim: 32,
            ..Default::default()
        })
    }

    #[test]
    fn identical_bytes_give_identical_features() {
        let ex = extractor();
        let blob = ImageBlob {
            bytes: Bytes::from_static(b"pixels"),
            visual_seed: 3,
        };
        assert_eq!(ex.extract(&blob), ex.extract(&blob));
    }

    #[test]
    fn different_bytes_same_cluster_are_near_but_not_equal() {
        let ex = extractor();
        let a = ImageBlob {
            bytes: Bytes::from_static(b"pixels-a"),
            visual_seed: 3,
        };
        let b = ImageBlob {
            bytes: Bytes::from_static(b"pixels-b"),
            visual_seed: 3,
        };
        let fa = ex.extract(&a);
        let fb = ex.extract(&b);
        assert_ne!(fa, fb);
        // Same cluster: should be close relative to a random other cluster.
        let c = ImageBlob {
            bytes: Bytes::from_static(b"pixels-c"),
            visual_seed: 999,
        };
        let fc = ex.extract(&c);
        assert!(
            squared_l2(fa.as_slice(), fb.as_slice()) < squared_l2(fa.as_slice(), fc.as_slice())
        );
    }

    #[test]
    fn cluster_structure_survives_extraction() {
        // 5 clusters x 20 images: nearest neighbour of each image (other
        // than itself) should be in the same cluster almost always.
        let store = ImageStore::with_blob_len(128);
        let ex = extractor();
        let mut feats = Vec::new();
        for cluster in 0..5u64 {
            for i in 0..20 {
                let k = store.put_synthetic(&format!("c{cluster}/i{i}.jpg"), cluster * 100);
                feats.push((cluster, ex.extract(&store.get(k).unwrap())));
            }
        }
        let mut correct = 0;
        for (i, (ci, fi)) in feats.iter().enumerate() {
            let mut best = usize::MAX;
            let mut best_d = f32::INFINITY;
            for (j, (_, fj)) in feats.iter().enumerate() {
                if i == j {
                    continue;
                }
                let d = squared_l2(fi.as_slice(), fj.as_slice());
                if d < best_d {
                    best_d = d;
                    best = j;
                }
            }
            if feats[best].0 == *ci {
                correct += 1;
            }
        }
        assert!(
            correct >= 95,
            "nearest-neighbour cluster purity too low: {correct}/100"
        );
    }

    #[test]
    fn normalization_flag_controls_norm() {
        let blob = ImageBlob {
            bytes: Bytes::from_static(b"x"),
            visual_seed: 1,
        };
        let normed = FeatureExtractor::new(ExtractorConfig {
            dim: 16,
            normalize: true,
            ..Default::default()
        })
        .extract(&blob);
        assert!((normed.norm() - 1.0).abs() < 1e-5);
        let raw = FeatureExtractor::new(ExtractorConfig {
            dim: 16,
            normalize: false,
            ..Default::default()
        })
        .extract(&blob);
        assert!(
            (raw.norm() - 1.0).abs() > 1e-3,
            "unnormalized norm should differ from 1"
        );
    }

    #[test]
    fn model_seed_changes_embedding_space() {
        let blob = ImageBlob {
            bytes: Bytes::from_static(b"x"),
            visual_seed: 1,
        };
        let a = FeatureExtractor::new(ExtractorConfig {
            model_seed: 1,
            ..Default::default()
        })
        .extract(&blob);
        let b = FeatureExtractor::new(ExtractorConfig {
            model_seed: 2,
            ..Default::default()
        })
        .extract(&blob);
        assert_ne!(a, b);
    }

    #[test]
    fn dim_is_respected() {
        let ex = FeatureExtractor::new(ExtractorConfig {
            dim: 7,
            ..Default::default()
        });
        let blob = ImageBlob {
            bytes: Bytes::from_static(b"x"),
            visual_seed: 1,
        };
        assert_eq!(ex.extract(&blob).dim(), 7);
        assert_eq!(ex.dim(), 7);
    }

    #[test]
    #[should_panic(expected = "feature dimension must be positive")]
    fn zero_dim_panics() {
        FeatureExtractor::new(ExtractorConfig {
            dim: 0,
            ..Default::default()
        });
    }
}
