//! Offline shim for `serde`: marker traits with blanket impls plus no-op
//! derive macros. jdvs derives `Serialize`/`Deserialize` for documentation
//! and future wire-format work but never serializes through serde itself
//! (persistence is a hand-rolled binary format; JSON goes through the
//! `serde_json` shim's `Value` type directly).

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Owned-deserialization marker, for completeness with real serde's API.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}
