//! Property-based tests for jdvs-vector invariants.

use proptest::prelude::*;

use jdvs_vector::distance::{cosine_similarity, dot, l2, squared_l2};
use jdvs_vector::kmeans::{Kmeans, KmeansConfig};
use jdvs_vector::pq::{PqConfig, ProductQuantizer};
use jdvs_vector::rng::Xoshiro256;
use jdvs_vector::simd::{self, ADC_ROW};
use jdvs_vector::topk::TopK;
use jdvs_vector::Vector;

/// `dim` seeded values in roughly [-100, 100] — big enough to stress
/// accumulation order, fast to generate at dim 1024 (a proptest-generated
/// `Vec<f32>` of that length would dominate case time in the shim).
fn seeded(dim: usize, seed: u64) -> Vec<f32> {
    let mut rng = Xoshiro256::seed_from(seed);
    (0..dim)
        .map(|_| (rng.next_gaussian() as f32) * 50.0)
        .collect()
}

fn close(a: f32, b: f32) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= scale * 1e-4
}

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1e3f32..1e3, len..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Distance axioms (on finite inputs): non-negativity, identity,
    /// symmetry.
    #[test]
    fn squared_l2_axioms(a in finite_vec(16), b in finite_vec(16)) {
        let dab = squared_l2(&a, &b);
        prop_assert!(dab >= 0.0);
        prop_assert_eq!(squared_l2(&a, &a), 0.0);
        prop_assert_eq!(dab, squared_l2(&b, &a));
    }

    /// `l2` is the square root of `squared_l2`.
    #[test]
    fn l2_consistent_with_squared(a in finite_vec(8), b in finite_vec(8)) {
        let d = l2(&a, &b);
        prop_assert!((d * d - squared_l2(&a, &b)).abs() <= squared_l2(&a, &b) * 1e-5 + 1e-3);
    }

    /// Dot product is bilinear in its first argument (within float slack).
    #[test]
    fn dot_is_additive(a in finite_vec(8), b in finite_vec(8), c in finite_vec(8)) {
        let lhs = dot(&a.iter().zip(&b).map(|(x, y)| x + y).collect::<Vec<_>>(), &c);
        let rhs = dot(&a, &c) + dot(&b, &c);
        let scale = lhs.abs().max(rhs.abs()).max(1.0);
        prop_assert!((lhs - rhs).abs() / scale < 1e-3, "{lhs} vs {rhs}");
    }

    /// Cosine similarity is scale-invariant and bounded.
    #[test]
    fn cosine_bounded_and_scale_invariant(
        a in finite_vec(8),
        b in finite_vec(8),
        s in 0.1f32..100.0,
    ) {
        let c = cosine_similarity(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&c));
        let scaled: Vec<f32> = a.iter().map(|x| x * s).collect();
        let c2 = cosine_similarity(&scaled, &b);
        prop_assert!((c - c2).abs() < 1e-3, "{c} vs {c2}");
    }

    /// Normalization yields unit vectors for non-zero inputs.
    #[test]
    fn normalize_yields_unit_norm(data in finite_vec(12)) {
        let v = Vector::from(data);
        prop_assume!(v.norm() > 1e-3);
        prop_assert!((v.normalized().norm() - 1.0).abs() < 1e-4);
    }

    /// k-means assignment always returns the argmin centroid.
    #[test]
    fn kmeans_assign_is_argmin(seed in any::<u64>(), k in 2usize..8) {
        let mut rng = Xoshiro256::seed_from(seed);
        let data: Vec<Vector> = (0..60)
            .map(|_| (0..6).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let model = Kmeans::train(&data, &KmeansConfig { k, max_iters: 5, seed, ..Default::default() });
        for v in data.iter().take(10) {
            let assigned = model.assign(v.as_slice());
            let d_assigned = squared_l2(model.centroids()[assigned].as_slice(), v.as_slice());
            for c in model.centroids() {
                prop_assert!(d_assigned <= squared_l2(c.as_slice(), v.as_slice()) + 1e-6);
            }
        }
    }

    /// assign_multi returns distinct, distance-sorted cells whose first
    /// element equals assign.
    #[test]
    fn assign_multi_consistent(seed in any::<u64>(), nprobe in 1usize..6) {
        let mut rng = Xoshiro256::seed_from(seed ^ 0xA55);
        let data: Vec<Vector> = (0..40)
            .map(|_| (0..4).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let model = Kmeans::train(&data, &KmeansConfig { k: 6, max_iters: 4, seed, ..Default::default() });
        let q: Vec<f32> = (0..4).map(|_| rng.next_gaussian() as f32).collect();
        let probes = model.assign_multi(&q, nprobe);
        prop_assert_eq!(probes.len(), nprobe.min(model.k()));
        prop_assert_eq!(probes[0], model.assign(&q));
        let mut sorted = probes.clone();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), probes.len(), "no duplicate cells");
    }

    /// PQ: ADC distance equals the exact distance to the decoded vector.
    #[test]
    fn pq_adc_matches_decoded(seed in any::<u64>()) {
        let mut rng = Xoshiro256::seed_from(seed ^ 0x99);
        let data: Vec<Vector> = (0..300)
            .map(|_| (0..8).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let pq = ProductQuantizer::train(
            &data,
            &PqConfig { num_subspaces: 2, max_iters: 4, seed, bits: 8 },
        );
        let table = pq.adc_table(data[0].as_slice());
        for v in data.iter().take(10) {
            let code = pq.encode(v.as_slice());
            let adc = table.distance(&code);
            let exact = squared_l2(data[0].as_slice(), pq.decode(&code).as_slice());
            prop_assert!((adc - exact).abs() < 1e-2, "{adc} vs {exact}");
        }
    }

    /// 4-bit PQ: the u8-quantized ADC distance stays within the table's
    /// advertised `error_bound` of the exact f32 ADC distance, for every
    /// trained quantizer shape and query the strategy produces. The bound
    /// is what makes the two-stage re-rank contract safe: stage 1's
    /// shortlist ranks by quantized distance, stage 2 re-scores exactly.
    #[test]
    fn quantized_adc_error_is_bounded(
        seed in any::<u64>(),
        m_pow in 1usize..=4, // 2, 4, 8, 16 subspaces
        scale in 0.01f32..100.0,
    ) {
        let m = 1usize << m_pow;
        let dim = m * 2;
        let mut rng = Xoshiro256::seed_from(seed ^ 0x4B17);
        let data: Vec<Vector> = (0..200)
            .map(|_| (0..dim).map(|_| rng.next_gaussian() as f32 * scale).collect())
            .collect();
        let pq = ProductQuantizer::train(
            &data,
            &PqConfig { num_subspaces: m, max_iters: 4, seed, bits: 4 },
        );
        let query: Vec<f32> = (0..dim).map(|_| rng.next_gaussian() as f32 * scale).collect();
        let exact = pq.adc_table(&query);
        let quantized = pq.quantized_adc_table(&query);
        let bound = quantized.error_bound();
        prop_assert!(bound.is_finite() && bound >= 0.0);
        for v in data.iter().take(20) {
            let code = pq.encode(v.as_slice());
            let q = quantized.distance(&code);
            let e = exact.distance(&code);
            // One ulp-ish slack on top: bound is exact in real arithmetic,
            // the comparison happens in f32.
            let slack = bound + e.abs().max(1.0) * 1e-5;
            prop_assert!(
                (q - e).abs() <= slack,
                "m {m} scale {scale}: quantized {q} vs exact {e}, bound {bound}"
            );
        }
    }

    /// The active (possibly SIMD) kernels agree with the scalar reference
    /// within 1e-4 relative tolerance on every dimension 1..=1024,
    /// including non-multiples of the vector lane width. Under
    /// `JDVS_FORCE_SCALAR` this still passes (scalar vs scalar is exact),
    /// so the force-disabled CI job runs the same test meaningfully.
    #[test]
    fn simd_l2_and_dot_match_scalar(dim in 1usize..=1024, seed in any::<u64>()) {
        let a = seeded(dim, seed);
        let b = seeded(dim, seed ^ 0xDEAD_BEEF);
        let fast = simd::active();
        let scalar = simd::scalar();
        let (l2_fast, l2_ref) = (fast.squared_l2(&a, &b), scalar.squared_l2(&a, &b));
        prop_assert!(close(l2_fast, l2_ref), "squared_l2 dim {dim}: {l2_fast} vs {l2_ref}");
        let (dot_fast, dot_ref) = (fast.dot(&a, &b), scalar.dot(&a, &b));
        prop_assert!(close(dot_fast, dot_ref), "dot dim {dim}: {dot_fast} vs {dot_ref}");
    }

    /// The ADC gather kernel agrees with the scalar table walk for every
    /// subspace count the PQ mode can produce (including odd ones and
    /// non-multiples of the gather width).
    #[test]
    fn simd_adc_matches_scalar(m in 1usize..=64, seed in any::<u64>()) {
        let table = seeded(m * ADC_ROW, seed);
        let mut rng = Xoshiro256::seed_from(seed ^ 0xC0DE);
        let code: Vec<u8> = (0..m).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
        let fast = simd::active().adc(&code, &table);
        let reference = simd::scalar().adc(&code, &table);
        prop_assert!(close(fast, reference), "adc m {m}: {fast} vs {reference}");
    }

    /// TopK's threshold never decreases acceptance wrongly: any candidate
    /// strictly below the threshold is accepted when the heap is full.
    #[test]
    fn topk_threshold_contract(
        items in prop::collection::vec((any::<u64>(), 0.0f32..1e6), 10..100),
        k in 1usize..8,
    ) {
        let mut topk = TopK::new(k);
        for (i, &(id, d)) in items.iter().enumerate() {
            let threshold = topk.threshold();
            let accepted = topk.push(id.wrapping_add(i as u64), d);
            if d < threshold {
                prop_assert!(accepted, "candidate below threshold must be kept");
            }
            if topk.is_full() {
                prop_assert!(topk.threshold() <= threshold, "threshold shrinks monotonically");
            }
        }
        let sorted = topk.into_sorted_vec();
        for w in sorted.windows(2) {
            prop_assert!(w[0].distance <= w[1].distance);
        }
    }
}
