//! Distance kernels.
//!
//! The paper's searchers rank candidates by **Euclidean distance** between
//! high-dimensional feature vectors (Section 2.4); the blender's cosine mode
//! is provided for normalized-feature deployments. The hot loops —
//! [`squared_l2`] and [`dot`] — dispatch through [`crate::simd`] to the
//! fastest kernel the CPU supports (AVX2+FMA, NEON, or the 4-way unrolled
//! scalar fallback), selected once at startup; the `*_sq` form avoids the
//! square root that a pure ordering never needs.

use serde::{Deserialize, Serialize};

use crate::simd;

/// Which distance/similarity the index and searchers use.
///
/// All metrics are exposed in "smaller is closer" form so that top-k
/// selection code never branches on the metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DistanceMetric {
    /// Squared Euclidean distance (the paper's choice). Monotone in true
    /// Euclidean distance, so rankings are identical and the square root is
    /// skipped.
    #[default]
    SquaredL2,
    /// Cosine distance `1 - cos(a, b)`; appropriate when features are
    /// L2-normalized by the extractor.
    Cosine,
    /// Negative inner product; appropriate for maximum-inner-product search.
    NegativeDot,
}

impl DistanceMetric {
    /// Evaluates the metric between `a` and `b` ("smaller is closer").
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn eval(self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            DistanceMetric::SquaredL2 => squared_l2(a, b),
            DistanceMetric::Cosine => cosine_distance(a, b),
            DistanceMetric::NegativeDot => -dot(a, b),
        }
    }
}

impl std::fmt::Display for DistanceMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            DistanceMetric::SquaredL2 => "squared-l2",
            DistanceMetric::Cosine => "cosine",
            DistanceMetric::NegativeDot => "negative-dot",
        };
        f.write_str(name)
    }
}

/// Squared Euclidean distance `Σ (aᵢ - bᵢ)²` (SIMD-dispatched).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn squared_l2(a: &[f32], b: &[f32]) -> f32 {
    simd::active().squared_l2(a, b)
}

/// Euclidean distance `sqrt(squared_l2(a, b))`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn l2(a: &[f32], b: &[f32]) -> f32 {
    squared_l2(a, b).sqrt()
}

/// Inner product `Σ aᵢ·bᵢ` (SIMD-dispatched).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    simd::active().dot(a, b)
}

/// Cosine similarity in `[-1, 1]`; returns `0.0` if either vector is zero.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    let d = dot(a, b);
    let na = dot(a, a).sqrt();
    let nb = dot(b, b).sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        (d / (na * nb)).clamp(-1.0, 1.0)
    }
}

/// Cosine distance `1 - cosine_similarity(a, b)`, in `[0, 2]`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    1.0 - cosine_similarity(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_l2_basics() {
        assert_eq!(squared_l2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(squared_l2(&[1.0; 7], &[1.0; 7]), 0.0);
    }

    #[test]
    fn squared_l2_handles_remainder_lanes() {
        // Length 5 exercises both the unrolled body and the scalar tail.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [0.0, 0.0, 0.0, 0.0, 0.0];
        assert_eq!(squared_l2(&a, &b), 55.0);
    }

    #[test]
    fn l2_is_sqrt_of_squared() {
        let a = [1.0, 2.0, 2.0];
        let b = [0.0, 0.0, 0.0];
        assert!((l2(&a, &b) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn dot_basics() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn cosine_of_parallel_and_orthogonal() {
        assert!((cosine_similarity(&[2.0, 0.0], &[5.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert!((cosine_distance(&[1.0, 0.0], &[-1.0, 0.0]) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_is_zero_similarity() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn metric_eval_dispatch() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert_eq!(DistanceMetric::SquaredL2.eval(&a, &b), 2.0);
        assert!((DistanceMetric::Cosine.eval(&a, &b) - 1.0).abs() < 1e-6);
        assert_eq!(DistanceMetric::NegativeDot.eval(&a, &a), -1.0);
    }

    #[test]
    #[should_panic(expected = "different dimension")]
    fn mismatched_lengths_panic() {
        squared_l2(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn display_names() {
        assert_eq!(DistanceMetric::SquaredL2.to_string(), "squared-l2");
        assert_eq!(DistanceMetric::Cosine.to_string(), "cosine");
        assert_eq!(DistanceMetric::NegativeDot.to_string(), "negative-dot");
    }
}
