//! Partition recovery: newest valid snapshot + log-suffix replay.
//!
//! [`recover_partition`] is the startup path of a durable serving stack:
//!
//! 1. [`CheckpointStore::recover`] loads the newest snapshot that passes
//!    its CRC (manifest first, then fallbacks) and the applied offset it
//!    covers; the recovered index is swapped into the indexer's
//!    [`IndexHandle`](jdvs_core::swap::IndexHandle).
//! 2. The queue suffix `[applied_offset ..)` — rebuilt from the durable
//!    log by [`DurableQueue::open`](crate::queue::DurableQueue) — is
//!    replayed through [`RealtimeIndexer::apply_at`], the same code path
//!    live ingestion uses, so recovery and steady state cannot diverge.
//!
//! With no usable snapshot the replay starts at the queue base (a cold
//! replay of the whole retained log). Snapshots whose watermark exceeds
//! the queue head are rejected outright — they cover events the durable
//! log no longer holds, so seeding from one would skip whatever events
//! are published at those offsets next. Either way the recovered index's
//! applied-offset watermark ends exactly at the queue head.

use std::sync::Arc;

use jdvs_core::realtime::{ApplyReport, RealtimeIndexer};
use jdvs_metrics::DurabilityMetrics;
use jdvs_storage::model::ProductEvent;
use jdvs_storage::queue::Offset;
use jdvs_storage::MessageQueue;

use crate::checkpoint::{CheckpointStore, SharedCheckpoint};

/// Replay batch size (bounds peak memory of a recovery).
const REPLAY_BATCH: usize = 1024;

/// What a partition recovery did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Whether a checkpoint snapshot seeded the index (`false` = cold
    /// replay from the queue base).
    pub from_snapshot: bool,
    /// First offset replayed.
    pub start_offset: Offset,
    /// Events replayed through the indexer.
    pub replayed: u64,
    /// Cumulative effect of the replayed events.
    pub apply: ApplyReport,
}

/// Recovers one partition replica: loads the newest valid checkpoint into
/// `indexer`'s handle, then replays `queue`'s suffix through it. Returns
/// what happened; after this the index serves queries at the same state a
/// clean shutdown would have left (modulo any un-fsynced log tail, which
/// the log already truncated away).
pub fn recover_partition(
    indexer: &RealtimeIndexer,
    checkpoints: &CheckpointStore,
    queue: &MessageQueue<ProductEvent>,
    metrics: &DurabilityMetrics,
) -> RecoveryReport {
    // Never seed from a snapshot whose watermark outruns the rebuilt
    // queue's head: the log lost (or was truncated below) events the
    // snapshot claims to cover, and new publishes will re-assign those
    // offsets — a consumer pinned past the head would skip them forever.
    // `recover_shared_within` falls back to an older snapshot or cold
    // replay.
    let shared = checkpoints.recover_shared_within(queue.len());
    recover_partition_seeded(indexer, shared.as_ref(), queue, metrics)
}

/// [`recover_partition`] with the snapshot decode hoisted out: `seed` is
/// a checkpoint the caller already recovered (and bounded by the queue
/// head), so a partition's replicas share one disk read and one
/// validating decode — each replica forks its own copy from the cached
/// bytes. `None` means cold replay from the queue base.
pub fn recover_partition_seeded(
    indexer: &RealtimeIndexer,
    seed: Option<&SharedCheckpoint>,
    queue: &MessageQueue<ProductEvent>,
    metrics: &DurabilityMetrics,
) -> RecoveryReport {
    metrics.recoveries.incr();

    let mut report = RecoveryReport {
        start_offset: queue.base(),
        ..Default::default()
    };
    if let Some(shared) = seed {
        // Retention never prunes the log past the checkpoint watermark, so
        // the max() is defensive: a manually-truncated log still recovers,
        // replaying from whatever survives.
        let index = shared.fork();
        report.from_snapshot = true;
        report.start_offset = shared.applied_offset.max(queue.base());
        index.stats().applied_offset.set_max(shared.applied_offset);
        metrics.recoveries_from_snapshot.incr();
        metrics.checkpoint_offset.set_max(shared.applied_offset);
        indexer.handle().swap(Arc::new(index));
    }

    let mut offset = report.start_offset;
    loop {
        let batch = queue.read_range(offset, REPLAY_BATCH);
        if batch.is_empty() {
            break;
        }
        for event in &batch {
            report.apply.merge(indexer.apply_at(offset, event));
            offset += 1;
        }
        metrics.events_replayed.add(batch.len() as u64);
    }
    report.replayed = offset - report.start_offset;
    // Make replayed inserts searchable before the partition serves.
    indexer.index().flush();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::CheckpointConfig;
    use jdvs_core::config::IndexConfig;
    use jdvs_core::index::VisualIndex;
    use jdvs_features::cost::CostModel;
    use jdvs_features::{CachingExtractor, ExtractorConfig, FeatureExtractor};
    use jdvs_storage::model::{ProductAttributes, ProductId};
    use jdvs_storage::{FeatureDb, ImageStore};
    use jdvs_vector::Vector;
    use std::fs;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    const DIM: usize = 8;

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("jdvs-rec-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    struct Fixture {
        indexer: RealtimeIndexer,
        images: Arc<ImageStore>,
    }

    fn fixture() -> Fixture {
        let images = Arc::new(ImageStore::with_blob_len(64));
        let feature_db = Arc::new(FeatureDb::new());
        let extractor = Arc::new(CachingExtractor::new(
            FeatureExtractor::new(ExtractorConfig {
                dim: DIM,
                ..Default::default()
            }),
            CostModel::free(),
        ));
        let mut rng = jdvs_vector::rng::Xoshiro256::seed_from(5);
        let train: Vec<Vector> = (0..64)
            .map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let index = Arc::new(VisualIndex::bootstrap(
            IndexConfig {
                dim: DIM,
                num_lists: 4,
                ..Default::default()
            },
            &train,
        ));
        let indexer = RealtimeIndexer::for_index(index, extractor, Arc::clone(&images), feature_db);
        Fixture { indexer, images }
    }

    fn add(f: &Fixture, i: u64) -> ProductEvent {
        let url = format!("rec-{i}");
        f.images.put_synthetic(&url, i * 31);
        ProductEvent::AddProduct {
            product_id: ProductId(i),
            images: vec![ProductAttributes::new(ProductId(i), i, 100, 1, url)],
        }
    }

    #[test]
    fn cold_recovery_replays_whole_queue() {
        let dir = temp_dir("cold");
        let metrics = Arc::new(DurabilityMetrics::new());
        let checkpoints =
            CheckpointStore::open(CheckpointConfig::new(&dir), Arc::clone(&metrics)).unwrap();
        let f = fixture();
        let queue: MessageQueue<ProductEvent> = MessageQueue::new();
        for i in 0..20 {
            queue.publish(add(&f, i));
        }
        let report = recover_partition(&f.indexer, &checkpoints, &queue, &metrics);
        assert!(!report.from_snapshot);
        assert_eq!(report.replayed, 20);
        assert_eq!(report.apply.inserted, 20);
        assert_eq!(f.indexer.index().valid_images(), 20);
        assert_eq!(f.indexer.index().stats().applied_offset.get(), 20);
        assert_eq!(metrics.events_replayed.get(), 20);
        assert_eq!(metrics.recoveries.get(), 1);
        assert_eq!(metrics.recoveries_from_snapshot.get(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_recovery_replays_only_the_suffix() {
        let dir = temp_dir("suffix");
        let metrics = Arc::new(DurabilityMetrics::new());
        let checkpoints =
            CheckpointStore::open(CheckpointConfig::new(&dir), Arc::clone(&metrics)).unwrap();

        // First life: apply 10 events, checkpoint at the watermark, then
        // 5 more arrive after the checkpoint.
        let f = fixture();
        let queue: MessageQueue<ProductEvent> = MessageQueue::new();
        for i in 0..10 {
            let off = queue.publish(add(&f, i));
            f.indexer.apply_at(off, &queue.read_range(off, 1).remove(0));
        }
        f.indexer.index().flush();
        checkpoints.save(&f.indexer.index(), 10).unwrap();
        for i in 10..15 {
            queue.publish(add(&f, i));
        }

        // Second life: fresh indexer over the same (durable) storage.
        let f2 = Fixture {
            indexer: RealtimeIndexer::for_index(
                f.indexer.index(), // placeholder; swap() replaces it
                Arc::new(CachingExtractor::new(
                    FeatureExtractor::new(ExtractorConfig {
                        dim: DIM,
                        ..Default::default()
                    }),
                    CostModel::free(),
                )),
                Arc::clone(&f.images),
                Arc::new(FeatureDb::new()),
            ),
            images: Arc::clone(&f.images),
        };
        let report = recover_partition(&f2.indexer, &checkpoints, &queue, &metrics);
        assert!(report.from_snapshot);
        assert_eq!(report.start_offset, 10);
        assert_eq!(report.replayed, 5);
        assert_eq!(f2.indexer.index().valid_images(), 15);
        assert_eq!(f2.indexer.index().stats().applied_offset.get(), 15);
        assert_eq!(metrics.recoveries_from_snapshot.get(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn watermark_past_the_log_end_falls_back_to_an_older_snapshot() {
        let dir = temp_dir("outrun");
        let metrics = Arc::new(DurabilityMetrics::new());
        let checkpoints = CheckpointStore::open(
            CheckpointConfig {
                dir: dir.clone(),
                keep: 3,
            },
            Arc::clone(&metrics),
        )
        .unwrap();

        // First life: 10 events applied; an early checkpoint at 5 and a
        // newer one at 10.
        let f = fixture();
        let queue: MessageQueue<ProductEvent> = MessageQueue::new();
        for i in 0..10 {
            let off = queue.publish(add(&f, i));
            f.indexer.apply_at(off, &queue.read_range(off, 1).remove(0));
            if off + 1 == 5 {
                f.indexer.index().flush();
                checkpoints.save(&f.indexer.index(), 5).unwrap();
            }
        }
        f.indexer.index().flush();
        checkpoints.save(&f.indexer.index(), 10).unwrap();

        // Second life, but the crash truncated the un-fsynced log tail:
        // only 7 of the 10 events survive, so the newest checkpoint's
        // watermark (10) outruns the rebuilt queue head (7).
        let survived: MessageQueue<ProductEvent> = MessageQueue::new();
        for i in 0..7 {
            survived.publish(add(&f, i));
        }
        let f2 = Fixture {
            indexer: RealtimeIndexer::for_index(
                f.indexer.index(), // placeholder; swap() replaces it
                Arc::new(CachingExtractor::new(
                    FeatureExtractor::new(ExtractorConfig {
                        dim: DIM,
                        ..Default::default()
                    }),
                    CostModel::free(),
                )),
                Arc::clone(&f.images),
                Arc::new(FeatureDb::new()),
            ),
            images: Arc::clone(&f.images),
        };
        let report = recover_partition(&f2.indexer, &checkpoints, &survived, &metrics);
        assert!(report.from_snapshot, "the offset-5 snapshot is usable");
        assert_eq!(report.start_offset, 5, "watermark-10 snapshot rejected");
        assert_eq!(report.replayed, 2, "replays 5..7");
        assert_eq!(f2.indexer.index().valid_images(), 7);
        assert_eq!(
            f2.indexer.index().stats().applied_offset.get(),
            7,
            "watermark ends at the surviving log head, never past it"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
