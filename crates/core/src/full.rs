//! Full indexing (Section 2.2, Figures 2 and 3).
//!
//! *"The full indexing is performed periodically to ensure the data
//! completeness... All product update messages of a day are buffered in a
//! message log. At the end of the day, each message in the log is processed
//! in order."*
//!
//! [`FullIndexBuilder`] replays a message log, resolves the catalog's final
//! state (which images exist, their freshest attributes, whether they are
//! valid), obtains features (reusing the feature database — only genuinely
//! new images are extracted), trains the k-means coarse quantizer on a
//! sample, and bulk-builds a fresh [`VisualIndex`] containing **only the
//! valid images** — the paper's optimization that keeps weekly rebuilds and
//! subsequent searches fast.

use std::collections::HashMap;
use std::sync::Arc;

use jdvs_features::CachingExtractor;
use jdvs_storage::model::{ImageKey, ProductAttributes, ProductEvent};
use jdvs_storage::{FeatureDb, ImageStore};
use jdvs_vector::rng::Xoshiro256;
use jdvs_vector::Vector;

use crate::config::IndexConfig;
use crate::index::VisualIndex;

/// Statistics from one full-index build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BuildReport {
    /// Messages replayed from the log.
    pub messages_replayed: u64,
    /// Distinct images in the final catalog state.
    pub images_seen: u64,
    /// Images valid at the end of the replay (indexed).
    pub images_indexed: u64,
    /// Images skipped because they were invalid at the end of the day.
    pub images_invalid: u64,
    /// Images skipped because they hash to another partition.
    pub images_foreign: u64,
    /// Feature extractions actually performed (the rest were reused).
    pub extractions: u64,
    /// Features reused from the feature database.
    pub reuses: u64,
}

/// Catalog state accumulated during log replay.
#[derive(Debug, Default)]
struct CatalogState {
    /// Final attributes + validity per image, in first-seen order (the
    /// paper numbers images sequentially during the build).
    images: Vec<(ImageKey, ProductAttributes, bool)>,
    by_key: HashMap<ImageKey, usize>,
}

impl CatalogState {
    fn apply(&mut self, event: &ProductEvent) {
        match event {
            ProductEvent::AddProduct { images, .. } => {
                for attrs in images {
                    let key = attrs.image_key();
                    match self.by_key.get(&key) {
                        Some(&i) => {
                            self.images[i].1 = attrs.clone();
                            self.images[i].2 = true;
                        }
                        None => {
                            self.by_key.insert(key, self.images.len());
                            self.images.push((key, attrs.clone(), true));
                        }
                    }
                }
            }
            ProductEvent::RemoveProduct { urls, .. } => {
                for url in urls {
                    if let Some(&i) = self.by_key.get(&ImageKey::from_url(url)) {
                        self.images[i].2 = false;
                    }
                }
            }
            ProductEvent::UpdateAttributes {
                urls,
                sales,
                price,
                praise,
                ..
            } => {
                for url in urls {
                    if let Some(&i) = self.by_key.get(&ImageKey::from_url(url)) {
                        let attrs = &mut self.images[i].1;
                        if let Some(s) = sales {
                            attrs.sales = *s;
                        }
                        if let Some(p) = price {
                            attrs.price = *p;
                        }
                        if let Some(p) = praise {
                            attrs.praise = *p;
                        }
                    }
                }
            }
        }
    }
}

/// Image-ownership predicate: which keys a scoped build keeps. `Arc`'d so
/// one routing closure (e.g. over a live, splittable partition map) can be
/// shared by builders and real-time indexers.
pub type KeyFilter = Arc<dyn Fn(ImageKey) -> bool + Send + Sync>;

/// The full indexer; see the module docs.
pub struct FullIndexBuilder {
    config: IndexConfig,
    extractor: Arc<CachingExtractor>,
    images: Arc<ImageStore>,
    feature_db: Arc<FeatureDb>,
    /// Ownership predicate: restrict the build to images it accepts.
    filter: Option<KeyFilter>,
}

impl std::fmt::Debug for FullIndexBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FullIndexBuilder")
            .field("config", &self.config)
            .field("filtered", &self.filter.is_some())
            .finish()
    }
}

impl FullIndexBuilder {
    /// Creates a builder over the shared stores.
    pub fn new(
        config: IndexConfig,
        extractor: Arc<CachingExtractor>,
        images: Arc<ImageStore>,
        feature_db: Arc<FeatureDb>,
    ) -> Self {
        config.validate();
        Self {
            config,
            extractor,
            images,
            feature_db,
            filter: None,
        }
    }

    /// Restricts the build to images hashing into `partition` of
    /// `num_partitions` — how each searcher's weekly index file is built.
    ///
    /// # Panics
    ///
    /// Panics if `partition >= num_partitions` or `num_partitions == 0`.
    pub fn with_partition(self, partition: usize, num_partitions: usize) -> Self {
        assert!(num_partitions > 0, "num_partitions must be positive");
        assert!(partition < num_partitions, "partition out of range");
        self.with_filter(Arc::new(move |key: ImageKey| {
            key.partition(num_partitions) == partition
        }))
    }

    /// Restricts the build to images accepted by an arbitrary ownership
    /// predicate (e.g. "routes to partition `p` under the live, possibly
    /// split, partition map").
    pub fn with_filter(mut self, filter: KeyFilter) -> Self {
        self.filter = Some(filter);
        self
    }

    /// Replays `log` in order and builds a fresh index of the valid images.
    /// Returns the index and a build report.
    ///
    /// # Panics
    ///
    /// Panics if an **unscoped** replay yields no valid image with an
    /// available blob — an index needs at least one vector to train its
    /// quantizer. A partition/filter-scoped build may legitimately own zero
    /// images and yields an empty (degenerate-quantizer) index instead.
    pub fn build(&self, log: &[ProductEvent]) -> (VisualIndex, BuildReport) {
        // Phase 1: resolve final catalog state.
        let mut state = CatalogState::default();
        for event in log {
            state.apply(event);
        }
        self.build_from_state(state, log.len() as u64)
    }

    /// Like [`FullIndexBuilder::build`], but seeds the catalog state from an
    /// existing index (a decoded checkpoint snapshot) and replays only the
    /// log **suffix** past the seed's watermark. Because a seed index
    /// records images in first-seen order with their final attributes and
    /// validity, reconstructing catalog state from it and applying the
    /// surviving suffix is equivalent to replaying the full log — which is
    /// what makes rebuilds work after checkpoint retention pruned the log
    /// prefix.
    ///
    /// # Panics
    ///
    /// Same contract as [`FullIndexBuilder::build`].
    pub fn build_seeded(
        &self,
        seed: &VisualIndex,
        suffix: &[ProductEvent],
    ) -> (VisualIndex, BuildReport) {
        let mut state = CatalogState::default();
        // Seed indexes number images sequentially in first-seen order, so
        // iterating ids reproduces the order a full replay would have seen
        // them in.
        for raw in 0..seed.num_images() {
            let id = crate::ids::ImageId(raw as u32);
            let attrs = seed
                .attributes(id)
                .expect("seed index ids are dense; attributes cannot be missing");
            let key = attrs.image_key();
            state.by_key.insert(key, state.images.len());
            state.images.push((key, attrs, seed.is_valid(id)));
        }
        for event in suffix {
            state.apply(event);
        }
        self.build_from_state(state, suffix.len() as u64)
    }

    /// Phases 2–4 shared by [`build`](FullIndexBuilder::build) and
    /// [`build_seeded`](FullIndexBuilder::build_seeded).
    fn build_from_state(
        &self,
        state: CatalogState,
        messages_replayed: u64,
    ) -> (VisualIndex, BuildReport) {
        let mut report = BuildReport {
            messages_replayed,
            images_seen: state.images.len() as u64,
            ..Default::default()
        };

        // Phase 2: obtain features for valid images (reuse-first).
        let extractions_before = self.extractor.misses();
        let reuses_before = self.extractor.hits();
        let mut indexable: Vec<(Vector, ProductAttributes)> = Vec::new();
        for (key, attrs, valid) in &state.images {
            if let Some(filter) = &self.filter {
                if !filter(*key) {
                    report.images_foreign += 1;
                    continue;
                }
            }
            if !valid {
                report.images_invalid += 1;
                continue;
            }
            let (features, _) = self
                .extractor
                .features_for(attrs, &self.images, &self.feature_db);
            if let Some(f) = features {
                indexable.push((f, attrs.clone()));
            }
        }
        report.extractions = self.extractor.misses() - extractions_before;
        report.reuses = self.extractor.hits() - reuses_before;
        assert!(
            !indexable.is_empty() || self.filter.is_some(),
            "full index build requires at least one valid image with features"
        );

        // Phase 3: train the coarse quantizer on a bounded sample. A
        // partition-scoped build may legitimately own zero images; it still
        // needs a valid (degenerate) quantizer to serve empty results.
        let sample = if indexable.is_empty() {
            vec![Vector::zeros(self.config.dim)]
        } else {
            self.training_sample(&indexable)
        };
        let index = VisualIndex::bootstrap(self.config.clone(), &sample);

        // Phase 4: bulk insert.
        for (features, attrs) in indexable {
            index
                .insert(features, attrs)
                .expect("bulk insert of validated records cannot fail");
            report.images_indexed += 1;
        }
        index.flush();
        (index, report)
    }

    /// Deterministic sample of up to `config.train_sample` feature vectors.
    fn training_sample(&self, indexable: &[(Vector, ProductAttributes)]) -> Vec<Vector> {
        let n = indexable.len();
        let cap = self.config.train_sample.min(n);
        if cap == n {
            return indexable.iter().map(|(v, _)| v.clone()).collect();
        }
        let mut rng = Xoshiro256::seed_from(self.config.seed ^ 0x7241_1A5E);
        rng.sample_indices(n, cap)
            .into_iter()
            .map(|i| indexable[i].0.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jdvs_features::cost::CostModel;
    use jdvs_features::{ExtractorConfig, FeatureExtractor};
    use jdvs_storage::model::ProductId;

    const DIM: usize = 16;

    struct Fixture {
        builder: FullIndexBuilder,
        images: Arc<ImageStore>,
        extractor: Arc<CachingExtractor>,
    }

    fn fixture() -> Fixture {
        let images = Arc::new(ImageStore::with_blob_len(64));
        let feature_db = Arc::new(FeatureDb::new());
        let extractor = Arc::new(CachingExtractor::new(
            FeatureExtractor::new(ExtractorConfig {
                dim: DIM,
                ..Default::default()
            }),
            CostModel::free(),
        ));
        let builder = FullIndexBuilder::new(
            IndexConfig {
                dim: DIM,
                num_lists: 4,
                initial_list_capacity: 8,
                ..Default::default()
            },
            Arc::clone(&extractor),
            Arc::clone(&images),
            feature_db,
        );
        Fixture {
            builder,
            images,
            extractor,
        }
    }

    fn add(f: &Fixture, product: u64, url: &str) -> ProductEvent {
        f.images.put_synthetic(url, product * 17);
        ProductEvent::AddProduct {
            product_id: ProductId(product),
            images: vec![ProductAttributes::new(
                ProductId(product),
                1,
                100,
                1,
                url.into(),
            )],
        }
    }

    fn remove(product: u64, url: &str) -> ProductEvent {
        ProductEvent::RemoveProduct {
            product_id: ProductId(product),
            urls: vec![url.into()],
        }
    }

    #[test]
    fn builds_index_of_valid_images_only() {
        let f = fixture();
        let log = vec![
            add(&f, 1, "u1"),
            add(&f, 2, "u2"),
            add(&f, 3, "u3"),
            remove(2, "u2"), // delisted before end of day
        ];
        let (index, report) = f.builder.build(&log);
        assert_eq!(report.messages_replayed, 4);
        assert_eq!(report.images_seen, 3);
        assert_eq!(report.images_indexed, 2);
        assert_eq!(report.images_invalid, 1);
        assert_eq!(index.valid_images(), 2);
        assert!(
            index.lookup(ImageKey::from_url("u2")).is_none(),
            "invalid image not indexed"
        );
    }

    #[test]
    fn relisting_within_the_day_keeps_image_valid() {
        let f = fixture();
        let log = vec![add(&f, 1, "u1"), remove(1, "u1"), add(&f, 1, "u1")];
        let (index, report) = f.builder.build(&log);
        assert_eq!(report.images_indexed, 1);
        assert_eq!(index.valid_images(), 1);
    }

    #[test]
    fn update_events_shape_final_attributes() {
        let f = fixture();
        let log = vec![
            add(&f, 1, "u1"),
            ProductEvent::UpdateAttributes {
                product_id: ProductId(1),
                urls: vec!["u1".into()],
                sales: Some(5_000),
                price: Some(42),
                praise: None,
            },
        ];
        let (index, _) = f.builder.build(&log);
        let id = index.lookup(ImageKey::from_url("u1")).unwrap();
        let attrs = index.attributes(id).unwrap();
        assert_eq!(attrs.sales, 5_000);
        assert_eq!(attrs.price, 42);
        assert_eq!(attrs.praise, 1, "untouched field keeps the add-time value");
    }

    #[test]
    fn second_build_reuses_features() {
        let f = fixture();
        let log: Vec<ProductEvent> = (0..20).map(|i| add(&f, i, &format!("u{i}"))).collect();
        let (_, first) = f.builder.build(&log);
        assert_eq!(first.extractions, 20);
        assert_eq!(first.reuses, 0);
        let (_, second) = f.builder.build(&log);
        assert_eq!(second.extractions, 0, "second build extracts nothing");
        assert_eq!(second.reuses, 20);
        assert_eq!(f.extractor.misses(), 20);
    }

    #[test]
    fn built_index_answers_queries() {
        let f = fixture();
        let log: Vec<ProductEvent> = (0..50).map(|i| add(&f, i, &format!("u{i}"))).collect();
        let (index, _) = f.builder.build(&log);
        let id = index.lookup(ImageKey::from_url("u7")).unwrap();
        let feats = index.features(id).unwrap();
        let hits = index.search(feats.as_slice(), 1, index.quantizer().k());
        assert_eq!(hits[0].id, id.as_u64());
    }

    #[test]
    #[should_panic(expected = "at least one valid image")]
    fn empty_log_panics() {
        let f = fixture();
        f.builder.build(&[]);
    }

    #[test]
    fn seeded_build_matches_cold_build_bit_for_bit() {
        let f = fixture();
        let prefix: Vec<ProductEvent> = (0..12)
            .map(|i| add(&f, i, &format!("u{i}")))
            .chain([remove(3, "u3"), remove(7, "u7")])
            .collect();
        let suffix: Vec<ProductEvent> = (12..20)
            .map(|i| add(&f, i, &format!("u{i}")))
            .chain([
                remove(1, "u1"),
                add(&f, 7, "u7"), // relist a prefix-deleted image
                ProductEvent::UpdateAttributes {
                    product_id: ProductId(5),
                    urls: vec!["u5".into()],
                    sales: Some(9_000),
                    price: None,
                    praise: Some(77),
                },
            ])
            .collect();
        let full: Vec<ProductEvent> = prefix.iter().chain(&suffix).cloned().collect();

        // The seed is what a checkpoint snapshots: a realtime-maintained
        // index, which keeps tombstoned records in first-seen order.
        let seed = {
            let (cold_prefix, _) = f.builder.build(&prefix[..12]); // adds only
            let live = crate::realtime::RealtimeIndexer::for_index(
                Arc::new(cold_prefix),
                Arc::clone(&f.extractor),
                Arc::clone(&f.images),
                Arc::new(FeatureDb::new()),
            );
            for ev in &prefix[12..] {
                live.apply(ev);
            }
            live.index()
        };

        let (seeded, seeded_report) = f.builder.build_seeded(&seed, &suffix);
        let (cold, _) = f.builder.build(&full);

        assert_eq!(seeded_report.messages_replayed, suffix.len() as u64);
        assert_eq!(
            crate::persist::save(&seeded),
            crate::persist::save(&cold),
            "checkpoint-seeded build must be bit-identical to a cold full replay"
        );
    }

    #[test]
    fn filter_scoped_build_may_own_zero_images() {
        let f = fixture();
        let log = vec![add(&f, 1, "u1"), add(&f, 2, "u2")];
        let (index, report) = f
            .builder
            .with_filter(Arc::new(|_key: ImageKey| false))
            .build(&log);
        assert_eq!(report.images_indexed, 0);
        assert_eq!(report.images_foreign, 2);
        assert_eq!(index.valid_images(), 0, "empty index, not a panic");
    }

    #[test]
    fn update_before_add_is_ignored() {
        let f = fixture();
        let log = vec![
            ProductEvent::UpdateAttributes {
                product_id: ProductId(1),
                urls: vec!["u1".into()],
                sales: Some(1),
                price: None,
                praise: None,
            },
            remove(1, "u1"),
            add(&f, 1, "u1"),
        ];
        let (index, report) = f.builder.build(&log);
        assert_eq!(report.images_indexed, 1);
        assert_eq!(index.valid_images(), 1);
    }
}
