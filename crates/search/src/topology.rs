//! Whole-system assembly (Figure 1 / Figure 10).
//!
//! [`SearchTopology::build`] stands up the paper's serving stack in one
//! call: P×R searcher nodes (each with its partition index behind a
//! hot-swappable [`IndexHandle`] and, when enabled, a real-time indexing
//! thread following the shared message queue), G×R broker instances, B
//! blenders, and the front-end load balancer. The returned handle owns
//! every node and thread and tears the system down in
//! [`SearchTopology::shutdown`] (also on drop).
//!
//! [`SearchTopology::rebuild_partition`] performs the paper's **weekly
//! full indexing** (Figure 2) online: it replays the message log into a
//! fresh index (physically dropping logically-deleted images), serializes
//! it through the snapshot format (the "index file" production ships to
//! searcher nodes), and hot-swaps each replica while searches keep
//! flowing.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};

use jdvs_core::full::{FullIndexBuilder, KeyFilter};
use jdvs_core::realtime::RealtimeIndexer;
use jdvs_core::swap::IndexHandle;
use jdvs_core::{persist, IndexConfig, VisualIndex};
use jdvs_durability::checkpoint::{CheckpointConfig, CheckpointStore, SharedCheckpoint};
use jdvs_durability::log::{FsyncPolicy, LogConfig};
use jdvs_durability::queue::DurableQueue;
use jdvs_durability::recovery::{recover_partition_seeded, RecoveryReport};
use jdvs_features::CachingExtractor;
use jdvs_metrics::{DurabilityMetrics, DurabilitySnapshot, ResilienceMetrics, ResilienceSnapshot};
use jdvs_net::balancer::Balancer;
use jdvs_net::latency::LatencyModel;
use jdvs_net::node::{Node, NodeHandle};
use jdvs_net::rpc::RpcError;
use jdvs_net::{HealthPolicy, RetryPolicy};
use jdvs_storage::model::ProductEvent;
use jdvs_storage::queue::Consumer;
use jdvs_storage::{FeatureDb, ImageStore, MessageQueue};
use jdvs_vector::kmeans::{Kmeans, KmeansConfig};
use jdvs_vector::Vector;

use crate::blender::BlenderService;
use crate::broker::BrokerService;
use crate::client::SearchClient;
use crate::partition::PartitionMap;
use crate::protocol::{SearchQuery, SearchResponse};
use crate::ranking::RankingPolicy;
use crate::searcher::SearcherService;

/// Shape and behaviour of the serving stack.
#[derive(Debug, Clone)]
pub struct TopologyConfig {
    /// Per-partition index configuration.
    pub index: IndexConfig,
    /// Number of index partitions (paper testbed: 20).
    pub num_partitions: usize,
    /// Searcher replicas per partition ("each partition can have multiple
    /// copies for availability").
    pub replicas_per_partition: usize,
    /// Broker groups (each owns a partition subset).
    pub num_broker_groups: usize,
    /// Identical instances per broker group.
    pub broker_replicas: usize,
    /// Blender instances.
    pub num_blenders: usize,
    /// Worker threads per searcher node (its "cores").
    pub searcher_workers: usize,
    /// Worker threads per broker instance.
    pub broker_workers: usize,
    /// Worker threads per blender instance.
    pub blender_workers: usize,
    /// Per-hop latency model for every node.
    pub latency: LatencyModel,
    /// Deadline for broker→searcher calls.
    pub searcher_deadline: Duration,
    /// Deadline for blender→broker calls.
    pub broker_deadline: Duration,
    /// Run a real-time indexing thread per searcher.
    pub realtime_indexing: bool,
    /// Result ranking policy.
    pub ranking: RankingPolicy,
    /// Capacity of the shared blender query-feature cache (`None`
    /// disables caching; repeated query images then re-extract).
    pub query_cache_capacity: Option<usize>,
    /// Query-category detector attached to every blender (`None` disables
    /// category detection on responses).
    pub category_detector: Option<Arc<jdvs_features::category::CategoryDetector>>,
    /// Circuit-breaker policy applied by every balancer in the stack.
    pub health: HealthPolicy,
    /// Failover/backoff policy applied by every balancer in the stack.
    pub retry: RetryPolicy,
    /// When set, brokers hedge straggling searcher calls after this long.
    pub hedge_after: Option<Duration>,
    /// [`SearchTopology::bootstrap_replica`] tails the live log without
    /// pausing ingestion until the new replica is within this many events
    /// of the queue head; only the final gap is drained under the quiesce.
    /// Bounds the stop-the-partition window of a bootstrap.
    pub bootstrap_lag_bound: u64,
    /// Master seed (latency streams, fault streams).
    pub seed: u64,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        Self {
            index: IndexConfig::default(),
            num_partitions: 4,
            replicas_per_partition: 1,
            num_broker_groups: 2,
            broker_replicas: 1,
            num_blenders: 2,
            searcher_workers: 2,
            broker_workers: 2,
            blender_workers: 2,
            latency: LatencyModel::Zero,
            searcher_deadline: Duration::from_secs(5),
            broker_deadline: Duration::from_secs(10),
            realtime_indexing: true,
            ranking: RankingPolicy::default(),
            query_cache_capacity: None,
            category_detector: None,
            health: HealthPolicy::default(),
            retry: RetryPolicy::default(),
            hedge_after: None,
            bootstrap_lag_bound: 64,
            seed: 0x70B0,
        }
    }
}

impl TopologyConfig {
    /// Validates invariants.
    ///
    /// # Panics
    ///
    /// Panics on zero counts or group/partition mismatch.
    pub fn validate(&self) {
        self.index.validate();
        assert!(self.num_partitions > 0, "num_partitions must be positive");
        assert!(
            self.replicas_per_partition > 0,
            "replicas_per_partition must be positive"
        );
        assert!(self.broker_replicas > 0, "broker_replicas must be positive");
        assert!(self.num_blenders > 0, "num_blenders must be positive");
        assert!(
            self.searcher_workers > 0,
            "searcher_workers must be positive"
        );
        // PartitionMap::new enforces the group/partition relationship.
        let _ = PartitionMap::new(self.num_partitions, self.num_broker_groups);
    }
}

/// Where and how a durable topology persists its ingestion stream.
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// Root data directory: the event log lives in `<dir>/wal`, partition
    /// `p`'s checkpoints in `<dir>/ckpt-p{p}`.
    pub dir: PathBuf,
    /// Fsync policy of the ingestion log.
    pub fsync: FsyncPolicy,
    /// Batch concurrent publishers into shared group-commit syncs when
    /// `fsync` is [`FsyncPolicy::Always`] (same loss bound, far fewer
    /// `fdatasync`s under concurrent ingestion). Ignored otherwise.
    pub group_commit: bool,
    /// Log segment roll size in bytes.
    pub segment_max_bytes: u64,
    /// Checkpoint snapshots retained per partition.
    pub snapshots_keep: usize,
    /// When set (and real-time indexing is on), a background scheduler
    /// thread watches every partition's **replay exposure** — events its
    /// live index has applied beyond its newest checkpoint watermark, i.e.
    /// the replay a crash would have to redo — and checkpoints any
    /// partition whose exposure exceeds this bound, without an operator
    /// calling [`SearchTopology::checkpoint_partition`]. `None` (the
    /// default) disables the scheduler; checkpoints are manual-only.
    pub checkpoint_exposure: Option<u64>,
    /// When set (and real-time indexing is on), the background scheduler
    /// also watches the log's **blanked-frame estimate** — the fraction of
    /// frames a per-key compaction could rewrite into no-op tombstones
    /// (see [`DurableQueue::stale_frame_ratio`]) — and runs
    /// [`DurableQueue::compact`] under the maintenance mutex whenever the
    /// estimate crosses this threshold. Hot-key churn (the same URLs
    /// re-added over and over) then stops growing cold-recovery replay
    /// cost without an operator in the loop. `None` (the default) leaves
    /// compaction manual-only.
    pub log_compaction_ratio: Option<f64>,
}

impl DurabilityOptions {
    /// Defaults: `FsyncPolicy::Always`, no group commit, 8 MiB segments,
    /// 2 snapshots kept, no background checkpoint scheduler, no background
    /// log compaction.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            group_commit: false,
            segment_max_bytes: 8 * 1024 * 1024,
            snapshots_keep: 2,
            checkpoint_exposure: None,
            log_compaction_ratio: None,
        }
    }

    /// Enables the background checkpoint scheduler with the given replay
    /// exposure bound (see [`DurabilityOptions::checkpoint_exposure`]).
    pub fn with_checkpoint_exposure(mut self, events: u64) -> Self {
        self.checkpoint_exposure = Some(events);
        self
    }

    /// Enables scheduler-driven per-key log compaction at the given
    /// blanked-frame ratio threshold (see
    /// [`DurabilityOptions::log_compaction_ratio`]).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < ratio <= 1.0`.
    pub fn with_log_compaction(mut self, ratio: f64) -> Self {
        assert!(
            ratio > 0.0 && ratio <= 1.0,
            "log_compaction_ratio must be in (0, 1]"
        );
        self.log_compaction_ratio = Some(ratio);
        self
    }
}

/// The durable machinery of a topology built with
/// [`SearchTopology::build_durable`].
#[derive(Debug)]
struct DurableParts {
    /// Owns the log and the publish tee on the shared queue.
    queue: DurableQueue,
    /// One checkpoint store per partition. Behind a lock because an online
    /// split appends the sibling's store while checkpoints may be reading.
    checkpoints: RwLock<Vec<CheckpointStore>>,
    metrics: Arc<DurabilityMetrics>,
    /// What startup recovery did, one entry per (partition, replica) in
    /// partition-major order.
    recovery: Vec<RecoveryReport>,
    /// Root data directory: sibling checkpoint stores open under it on
    /// split, and the partition-map file lives beside the WAL.
    dir: PathBuf,
    /// Snapshots retained per partition (applies to sibling stores too).
    snapshots_keep: usize,
}

/// The durable partition-map file (`<dir>/partition-map`): a split changes
/// the routing table at runtime, and any checkpoint taken afterwards covers
/// only the split partition's *narrowed* key set — so a restart must
/// reconstruct the split layout or moved keys checkpointed by the sibling
/// would silently vanish. The file is written atomically (tmp + rename)
/// before a split resumes ingestion, which is also before any post-split
/// checkpoint can exist (both serialize on the maintenance mutex).
const PARTITION_MAP_FILE: &str = "partition-map";
const PARTITION_MAP_MAGIC: &str = "jdvs-partition-map v1";

fn save_partition_map(dir: &Path, map: &PartitionMap) -> io::Result<()> {
    let join = |row: &[usize]| {
        row.iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    };
    let body = format!(
        "{PARTITION_MAP_MAGIC}\ngroups {}\nassign {}\ntable {}\n",
        map.num_broker_groups(),
        join(map.groups()),
        join(map.table()),
    );
    let tmp = dir.join(format!("{PARTITION_MAP_FILE}.tmp"));
    std::fs::write(&tmp, body)?;
    std::fs::rename(&tmp, dir.join(PARTITION_MAP_FILE))
}

/// Loads the persisted layout, if one exists. A corrupt file is an error,
/// not a fallback: silently reverting to the config-derived layout after a
/// split could drop every key the sibling's checkpoints own.
fn load_partition_map(dir: &Path) -> io::Result<Option<PartitionMap>> {
    let path = dir.join(PARTITION_MAP_FILE);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let corrupt = || io::Error::new(io::ErrorKind::InvalidData, "corrupt partition-map file");
    let mut lines = text.lines();
    if lines.next() != Some(PARTITION_MAP_MAGIC) {
        return Err(corrupt());
    }
    let mut field = |name: &str| -> io::Result<Vec<usize>> {
        let line = lines.next().ok_or_else(corrupt)?;
        let rest = line.strip_prefix(name).ok_or_else(corrupt)?;
        rest.split_whitespace()
            .map(|v| v.parse::<usize>().map_err(|_| corrupt()))
            .collect()
    };
    let groups_count = *field("groups ")?.first().ok_or_else(corrupt)?;
    let assign = field("assign ")?;
    let table = field("table ")?;
    Ok(Some(PartitionMap::from_parts(groups_count, assign, table)))
}

/// Outcome of [`SearchTopology::checkpoint_partition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointReport {
    /// Partition checkpointed.
    pub partition: usize,
    /// Applied-offset watermark the snapshot covers.
    pub applied_offset: u64,
    /// Snapshot bytes written.
    pub snapshot_bytes: u64,
    /// Log segments reclaimed by retention after this checkpoint.
    pub segments_pruned: u64,
}

/// Outcome of one partition's online full rebuild.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebuildReport {
    /// Partition rebuilt.
    pub partition: usize,
    /// Messages replayed from the log (max across replicas).
    pub messages_replayed: u64,
    /// Records in the old index (including logically deleted) at swap time,
    /// summed over replicas.
    pub records_before: usize,
    /// Records in the fresh index (valid images only), summed.
    pub records_after: usize,
    /// Snapshot bytes shipped per replica (last replica's size).
    pub snapshot_bytes: usize,
}

/// Outcome of [`SearchTopology::bootstrap_replica`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BootstrapReport {
    /// Partition the replica joined.
    pub partition: usize,
    /// Index of the new replica within the partition's row.
    pub replica: usize,
    /// Whether a checkpoint snapshot seeded the replica (`false` = cold
    /// replay of the whole retained log through the live indexing path).
    pub from_snapshot: bool,
    /// First log offset tailed (the seed watermark, or the queue base).
    pub seed_offset: u64,
    /// Events applied before joining the serving set (both the unpaused
    /// tail and the final quiesced drain).
    pub tailed: u64,
}

/// Outcome of [`SearchTopology::split_partition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitReport {
    /// Partition that was split (keeps the lower half of its key space).
    pub partition: usize,
    /// New partition id owning the upper half.
    pub sibling: usize,
    /// Messages replayed building the halves (checkpoint seeding makes
    /// this the surviving suffix, not the whole log).
    pub messages_replayed: u64,
    /// Records in the parent's fresh half, summed over replicas.
    pub parent_records: usize,
    /// Records in the sibling's fresh half, summed over replicas.
    pub sibling_records: usize,
    /// Whether a checkpoint snapshot seeded both halves.
    pub from_snapshot: bool,
}

/// Per-replica slice of an [`OpsReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionOps {
    /// Partition number.
    pub partition: usize,
    /// Replica number.
    pub replica: usize,
    /// Hot-swap generation (how many full rebuilds landed).
    pub generation: u64,
    /// Forward-index records (incl. logically deleted).
    pub records: usize,
    /// Currently valid (searchable) images.
    pub valid: usize,
    /// Lifetime insert count.
    pub inserts: u64,
    /// Lifetime reuse (revalidation) count.
    pub reuses: u64,
    /// Lifetime attribute-update count.
    pub updates: u64,
    /// Lifetime logical-deletion count.
    pub deletions: u64,
    /// Lifetime queries served by this replica's index.
    pub searches: u64,
    /// Inverted-list expansions performed.
    pub expansions: u64,
    /// Applied-offset watermark: queue offset after the newest event this
    /// replica's index has applied (0 when no event carried an offset).
    pub applied_offset: u64,
}

/// Point-in-time operational snapshot of the stack.
#[derive(Debug, Clone, PartialEq)]
pub struct OpsReport {
    /// Messages ever published to the update queue.
    pub queue_length: u64,
    /// Events the slowest real-time indexer has yet to consume.
    pub max_indexer_lag: u64,
    /// Blender query-cache statistics, when enabled.
    pub query_cache: Option<jdvs_storage::lru::LruStats>,
    /// Durability counters, when the topology was built durable.
    pub durability: Option<DurabilitySnapshot>,
    /// One entry per (partition, replica).
    pub partitions: Vec<PartitionOps>,
}

impl OpsReport {
    /// Valid images across one replica of each partition (logical corpus
    /// size).
    pub fn logical_valid_images(&self) -> usize {
        self.partitions
            .iter()
            .filter(|p| p.replica == 0)
            .map(|p| p.valid)
            .sum()
    }
}

/// The balancer list a single broker instance fans out over — one
/// balancer per partition its group owns, shared with the running
/// [`BrokerService`] so lifecycle operations can grow it in place.
type BrokerFanout = Arc<RwLock<Vec<Balancer<NodeHandle<SearcherService>>>>>;

/// The assembled serving system.
pub struct SearchTopology {
    frontend: Arc<Balancer<NodeHandle<BlenderService>>>,
    /// The live partition layout, shared with every partition filter
    /// closure: an online split rewrites it in place and the parent's
    /// indexers immediately stop owning the moved keys.
    partition_map: Arc<RwLock<PartitionMap>>,
    config: TopologyConfig,
    /// `handles[p][r]` = hot-swappable index of partition `p`, replica `r`.
    handles: Vec<Vec<Arc<IndexHandle>>>,
    searcher_nodes: Vec<Vec<Node<SearcherService>>>,
    broker_nodes: Vec<Vec<Node<BrokerService>>>,
    /// `broker_partitions[g][b]` = the balancer list broker instance `b`
    /// of group `g` fans out over, shared with the running
    /// [`BrokerService`]; replica bootstrap pushes targets into existing
    /// balancers, splits push whole new balancers.
    broker_partitions: Vec<Vec<BrokerFanout>>,
    /// Live per-group partition counts, shared with every blender's
    /// coverage accounting; a split bumps the parent's group.
    group_partition_counts: Arc<Vec<AtomicUsize>>,
    blender_nodes: Vec<Node<BlenderService>>,
    queue: MessageQueue<ProductEvent>,
    extractor: Arc<CachingExtractor>,
    images: Arc<ImageStore>,
    feature_db: Arc<FeatureDb>,
    indexer_stop: Arc<AtomicBool>,
    indexer_pause: Arc<AtomicBool>,
    /// Bumped (under `maintenance`) each time a quiesce begins; indexer
    /// threads echo it into their parked slot once at rest.
    pause_epoch: Arc<AtomicU64>,
    /// `parked[p][r]` = newest pause epoch that replica's indexer has
    /// positively acknowledged (it is parked, no apply in flight).
    indexer_parked: Vec<Vec<Arc<AtomicU64>>>,
    /// Serializes checkpoint/rebuild: both share the global pause flag, so
    /// one finishing must not resume indexing under the other's snapshot.
    /// Shared (`Arc`) with the background checkpoint scheduler, which runs
    /// the same maintenance path from its own thread.
    maintenance: Arc<Mutex<()>>,
    indexer_threads: Vec<JoinHandle<()>>,
    /// Background checkpoint scheduler
    /// ([`DurabilityOptions::checkpoint_exposure`]), joined in shutdown.
    checkpoint_scheduler: Option<JoinHandle<()>>,
    /// `processed[p][r]` = events consumed by that replica's indexer.
    indexer_processed: Vec<Vec<Arc<AtomicU64>>>,
    query_cache: Option<Arc<jdvs_storage::lru::LruCache<jdvs_storage::model::ImageKey, Vec<f32>>>>,
    metrics: Arc<ResilienceMetrics>,
    realtime_indexing: bool,
    /// Durable log + checkpoints, when built with `build_durable`. Shared
    /// (`Arc`) with the background checkpoint scheduler.
    durable: Option<Arc<DurableParts>>,
}

/// The subset of topology state the checkpoint path touches, cloneable
/// (`Arc`s all the way down) so the background scheduler thread can run
/// [`CheckpointCore::checkpoint_partition`] without borrowing the
/// [`SearchTopology`] that owns it. [`SearchTopology::checkpoint_partition`]
/// delegates here too — operator-initiated and scheduled checkpoints are
/// the same code path, serialized by the same maintenance mutex.
struct CheckpointCore {
    /// `handles[p][0]` is the replica whose index gets snapshotted.
    handles: Vec<Vec<Arc<IndexHandle>>>,
    maintenance: Arc<Mutex<()>>,
    indexer_pause: Arc<AtomicBool>,
    pause_epoch: Arc<AtomicU64>,
    indexer_parked: Vec<Vec<Arc<AtomicU64>>>,
    indexer_stop: Arc<AtomicBool>,
    durable: Arc<DurableParts>,
}

/// Pauses real-time consumption and blocks until every indexer thread in
/// `parked_row` has positively acknowledged the pause (echoed the new pause
/// epoch after finishing its in-flight apply). Bails early on `stop` so a
/// maintenance call racing teardown cannot hang. Callers must hold the
/// maintenance mutex and resume by clearing `pause`.
fn quiesce_row(
    pause_epoch: &AtomicU64,
    pause: &AtomicBool,
    parked_row: &[Arc<AtomicU64>],
    stop: &AtomicBool,
) {
    let epoch = pause_epoch.fetch_add(1, Ordering::SeqCst) + 1;
    pause.store(true, Ordering::Release);
    for parked in parked_row {
        while parked.load(Ordering::Acquire) < epoch && !stop.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

/// An ownership predicate over the **live** partition layout: when a split
/// rewrites the shared map, every existing filter narrows (or widens)
/// automatically — no indexer or builder holds a stale layout.
fn partition_filter(map: &Arc<RwLock<PartitionMap>>, partition: usize) -> KeyFilter {
    let map = Arc::clone(map);
    Arc::new(move |key| map.read().partition_of(key) == partition)
}

/// Spawns one replica's real-time indexing thread: poll → `apply_at` →
/// advance `processed`, with the positive pause handshake and a
/// drain-on-stop exit. Shared by assembly, replica bootstrap, and split.
#[allow(clippy::too_many_arguments)] // private; every arg is one shared knob
fn spawn_indexer_thread(
    name: String,
    mut consumer: Consumer<ProductEvent>,
    indexer: RealtimeIndexer,
    stop: Arc<AtomicBool>,
    pause: Arc<AtomicBool>,
    epoch: Arc<AtomicU64>,
    processed: Arc<AtomicU64>,
    parked: Arc<AtomicU64>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if pause.load(Ordering::Acquire) {
                    // Positive quiesce handshake: echo the pause epoch only
                    // here, after any in-flight apply completed — the
                    // coordinator waits for *its* epoch, so a stale park
                    // from an earlier pause can't satisfy it.
                    while pause.load(Ordering::Acquire) && !stop.load(Ordering::Relaxed) {
                        parked.store(epoch.load(Ordering::Acquire), Ordering::Release);
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    continue;
                }
                let offset = consumer.position();
                match consumer.poll(Duration::from_millis(10)) {
                    Some(event) => {
                        indexer.apply_at(offset, &event);
                        processed.store(consumer.position(), Ordering::Release);
                    }
                    None => indexer.index().flush(),
                }
            }
            // Drain the backlog for deterministic shutdown (ignoring
            // pause: we are exiting).
            loop {
                let offset = consumer.position();
                match consumer.poll_now() {
                    Some(event) => {
                        indexer.apply_at(offset, &event);
                        processed.store(consumer.position(), Ordering::Release);
                    }
                    None => break,
                }
            }
            indexer.index().flush();
        })
        .expect("spawning real-time indexer thread")
}

impl CheckpointCore {
    /// The full online-checkpoint sequence; see
    /// [`SearchTopology::checkpoint_partition`] for the contract.
    fn checkpoint_partition(&self, partition: usize) -> io::Result<CheckpointReport> {
        let durable = &self.durable;
        let _maintenance = self.maintenance.lock();
        quiesce_row(
            &self.pause_epoch,
            &self.indexer_pause,
            &self.indexer_parked[partition],
            &self.indexer_stop,
        );
        let result: io::Result<(u64, u64)> = (|| {
            let index = self.handles[partition][0].get();
            index.flush();
            let applied_offset = index.stats().applied_offset.get();
            // Sync the log through the watermark first: under EveryN/Os a
            // crash right after this checkpoint could otherwise truncate
            // the log below the watermark, and recovery seeded at it would
            // skip the events re-published at those offsets forever.
            durable.queue.sync()?;
            let bytes_before = durable.metrics.checkpoint_bytes.get();
            durable.checkpoints.read()[partition].save(&index, applied_offset)?;
            Ok((applied_offset, bytes_before))
        })();
        self.indexer_pause.store(false, Ordering::Release);
        let (applied_offset, bytes_before) = result?;

        // Retention: the log is shared by every partition, so only the
        // prefix below the laggiest partition's checkpoint is garbage.
        // A freshly-split sibling has no manifest yet and contributes 0 —
        // retention conservatively stops until its first checkpoint.
        let min_watermark = durable
            .checkpoints
            .read()
            .iter()
            .map(|c| c.manifest().map_or(0, |m| m.applied_offset))
            .min()
            .unwrap_or(0);
        let segments_pruned = durable.queue.prune_to(min_watermark)?;

        Ok(CheckpointReport {
            partition,
            applied_offset,
            snapshot_bytes: durable.metrics.checkpoint_bytes.get() - bytes_before,
            segments_pruned,
        })
    }

    /// One scheduler pass: checkpoint every partition whose replay
    /// exposure (applied watermark minus newest checkpoint watermark)
    /// exceeds `bound`. Errors are left for the next pass to retry — the
    /// log itself is unaffected by a failed snapshot.
    fn run_exposure_pass(&self, bound: u64) {
        for p in 0..self.handles.len() {
            if self.indexer_stop.load(Ordering::Relaxed) {
                return;
            }
            let watermark = self.durable.checkpoints.read()[p]
                .manifest()
                .map_or(0, |m| m.applied_offset);
            let applied = self.handles[p][0].get().stats().applied_offset.get();
            if applied.saturating_sub(watermark) > bound {
                let _ = self.checkpoint_partition(p);
            }
        }
    }

    /// One scheduler pass of the log-compaction side: when the estimated
    /// blanked-frame ratio crosses `threshold` and the log has cold
    /// segments to rewrite, run per-key compaction. Serialized on the same
    /// maintenance mutex as checkpoints, rebuilds and splits, so no
    /// snapshot save or segment retention races the segment swap. Errors
    /// are left for the next pass to retry, like a failed checkpoint.
    fn run_compaction_pass(&self, threshold: f64) {
        if self.indexer_stop.load(Ordering::Relaxed)
            || self.durable.queue.stale_frame_ratio() < threshold
            || self.durable.queue.num_segments() < 2
        {
            return;
        }
        let _maintenance = self.maintenance.lock();
        let _ = self.durable.queue.compact();
    }
}

impl std::fmt::Debug for SearchTopology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchTopology")
            .field("partitions", &self.handles.len())
            .field("blenders", &self.blender_nodes.len())
            .field("realtime_indexing", &self.realtime_indexing)
            .finish()
    }
}

impl SearchTopology {
    /// Builds the full stack.
    ///
    /// The coarse quantizer is trained once on `training` and shared by all
    /// partition replicas (as the weekly full index does in production);
    /// `queue` is the catalog's update stream, followed by every searcher's
    /// real-time indexing thread when `config.realtime_indexing` is set.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid or `training` is empty.
    pub fn build(
        config: TopologyConfig,
        extractor: Arc<CachingExtractor>,
        images: Arc<ImageStore>,
        feature_db: Arc<FeatureDb>,
        training: &[Vector],
        queue: MessageQueue<ProductEvent>,
    ) -> Self {
        config.validate();
        let layout = PartitionMap::new(config.num_partitions, config.num_broker_groups);
        Self::assemble(
            config, extractor, images, feature_db, training, queue, layout, None, None, None,
        )
    }

    /// Builds the full stack on top of a durable ingestion log with
    /// checkpoint recovery (the crash-safe variant of
    /// [`SearchTopology::build`]).
    ///
    /// The update queue is rebuilt from the event log in
    /// `options.dir/wal` (torn or corrupt tails are truncated, CRC-checked
    /// records replayed), every publish is teed back into the log under
    /// the configured [`FsyncPolicy`], and **before any searcher serves**,
    /// each partition replica is recovered: the newest valid checkpoint
    /// snapshot is hot-swapped in and the log suffix past its applied
    /// offset is replayed through the real-time indexing path. See
    /// [`SearchTopology::recovery_reports`] for what startup recovery did
    /// and [`SearchTopology::checkpoint_partition`] for producing new
    /// checkpoints while serving.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from opening the log or checkpoint stores.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid or `training` is empty.
    pub fn build_durable(
        config: TopologyConfig,
        extractor: Arc<CachingExtractor>,
        images: Arc<ImageStore>,
        feature_db: Arc<FeatureDb>,
        training: &[Vector],
        options: DurabilityOptions,
    ) -> io::Result<Self> {
        config.validate();
        let metrics = Arc::new(DurabilityMetrics::new());
        let durable_queue = DurableQueue::open(
            LogConfig {
                dir: options.dir.join("wal"),
                segment_max_bytes: options.segment_max_bytes,
                fsync: options.fsync,
                group_commit: options.group_commit,
            },
            Arc::clone(&metrics),
        )?;
        // A previous life's online splits changed the layout; checkpoints
        // taken after a split cover the narrowed key sets, so the restart
        // must reconstruct the persisted layout (not the config-derived
        // one) or the moved keys would vanish.
        let layout = match load_partition_map(&options.dir)? {
            Some(persisted) => {
                assert_eq!(
                    persisted.num_broker_groups(),
                    config.num_broker_groups,
                    "persisted partition map was laid out for a different broker-group count"
                );
                persisted
            }
            None => PartitionMap::new(config.num_partitions, config.num_broker_groups),
        };
        let snapshots_keep = options.snapshots_keep.max(1);
        let mut checkpoints = Vec::with_capacity(layout.num_partitions());
        for p in 0..layout.num_partitions() {
            checkpoints.push(CheckpointStore::open(
                CheckpointConfig {
                    dir: options.dir.join(format!("ckpt-p{p}")),
                    keep: snapshots_keep,
                },
                Arc::clone(&metrics),
            )?);
        }
        let queue = (**durable_queue.queue()).clone();
        Ok(Self::assemble(
            config,
            extractor,
            images,
            feature_db,
            training,
            queue,
            layout,
            Some(DurableParts {
                queue: durable_queue,
                checkpoints: RwLock::new(checkpoints),
                metrics,
                recovery: Vec::new(),
                dir: options.dir.clone(),
                snapshots_keep,
            }),
            options.checkpoint_exposure,
            options.log_compaction_ratio,
        ))
    }

    #[allow(clippy::too_many_arguments)] // private assembly step shared by build/build_durable
    fn assemble(
        config: TopologyConfig,
        extractor: Arc<CachingExtractor>,
        images: Arc<ImageStore>,
        feature_db: Arc<FeatureDb>,
        training: &[Vector],
        queue: MessageQueue<ProductEvent>,
        layout: PartitionMap,
        mut durable: Option<DurableParts>,
        checkpoint_exposure: Option<u64>,
        log_compaction_ratio: Option<f64>,
    ) -> Self {
        config.validate();
        // The layout may have more partitions than the config when a
        // persisted map (recording previous splits) was restored.
        let num_partitions = layout.num_partitions();
        let partition_map = Arc::new(RwLock::new(layout));
        // One metrics instance shared by every balancer/broker/blender, so
        // a single snapshot covers the whole serving path.
        let metrics = Arc::new(ResilienceMetrics::new());
        let quantizer = Kmeans::train(
            training,
            &KmeansConfig {
                k: config.index.num_lists,
                max_iters: config.index.kmeans_iters,
                tolerance: 1e-4,
                seed: config.index.seed,
                balance_factor: config.index.coarse_balance_factor,
            },
        );
        // Hierarchical coarse quantizer: build the centroid graph once here
        // so every replica's `with_quantizers` below inherits it from its
        // clone instead of rebuilding per replica.
        let quantizer = if config.index.coarse_beam_width > 0 {
            quantizer.with_coarse_graph(config.index.coarse_beam_width)
        } else {
            quantizer
        };
        // PQ codebook (when compressed mode is configured) is trained once
        // and shared by all replicas, like the coarse quantizer.
        let pq_quantizer = config.index.pq_subspaces.map(|m| {
            Arc::new(jdvs_vector::pq::ProductQuantizer::train(
                training,
                &jdvs_vector::pq::PqConfig {
                    num_subspaces: m,
                    max_iters: config.index.kmeans_iters,
                    seed: config.index.seed ^ 0x90DE,
                    bits: config.index.pq_bits,
                },
            ))
        });

        // --- Searchers: one node per (partition, replica). --------------
        let indexer_stop = Arc::new(AtomicBool::new(false));
        let indexer_pause = Arc::new(AtomicBool::new(false));
        let pause_epoch = Arc::new(AtomicU64::new(0));
        let mut handles: Vec<Vec<Arc<IndexHandle>>> = Vec::with_capacity(num_partitions);
        let mut searcher_nodes = Vec::with_capacity(num_partitions);
        let mut indexer_threads = Vec::new();
        let mut indexer_processed: Vec<Vec<Arc<AtomicU64>>> = Vec::new();
        let mut indexer_parked: Vec<Vec<Arc<AtomicU64>>> = Vec::new();
        for p in 0..num_partitions {
            let mut replica_handles = Vec::new();
            let mut nodes = Vec::new();
            let mut processed_row = Vec::new();
            let mut parked_row = Vec::new();
            // One disk read + one validating decode per partition, shared
            // by every replica below (each forks its copy from the cached
            // bytes instead of re-reading the snapshot).
            let shared_seed: Option<SharedCheckpoint> = durable
                .as_ref()
                .and_then(|d| d.checkpoints.read()[p].recover_shared_within(queue.len()));
            for r in 0..config.replicas_per_partition {
                let index = Arc::new(VisualIndex::with_quantizers(
                    config.index.clone(),
                    quantizer.clone(),
                    pq_quantizer.clone(),
                ));
                let handle = Arc::new(IndexHandle::new(index));
                replica_handles.push(Arc::clone(&handle));
                let node = Node::spawn_with(
                    format!("searcher-{p}-{r}"),
                    SearcherService::new(p, Arc::clone(&handle)),
                    config.searcher_workers,
                    config.latency,
                    config.seed ^ ((p as u64) << 16) ^ r as u64,
                );
                nodes.push(node);
                let indexer = RealtimeIndexer::new(
                    handle,
                    Arc::clone(&extractor),
                    Arc::clone(&images),
                    Arc::clone(&feature_db),
                )
                .with_filter(partition_filter(&partition_map, p));
                // Durable startup: recover this replica *before* any query
                // is served — newest valid checkpoint swapped in, then the
                // log suffix replayed through the live indexing path.
                let mut start = queue.base();
                if let Some(d) = durable.as_mut() {
                    let report = recover_partition_seeded(
                        &indexer,
                        shared_seed.as_ref(),
                        &queue,
                        &d.metrics,
                    );
                    start = report.start_offset + report.replayed;
                    d.recovery.push(report);
                }
                if config.realtime_indexing {
                    let consumer = queue.consumer_at(start);
                    // Absolute queue position this replica has consumed
                    // through (== its applied-offset watermark).
                    let processed = Arc::new(AtomicU64::new(start));
                    processed_row.push(Arc::clone(&processed));
                    let parked = Arc::new(AtomicU64::new(0));
                    parked_row.push(Arc::clone(&parked));
                    indexer_threads.push(spawn_indexer_thread(
                        format!("rtidx-{p}-{r}"),
                        consumer,
                        indexer,
                        Arc::clone(&indexer_stop),
                        Arc::clone(&indexer_pause),
                        Arc::clone(&pause_epoch),
                        processed,
                        parked,
                    ));
                }
            }
            handles.push(replica_handles);
            searcher_nodes.push(nodes);
            indexer_processed.push(processed_row);
            indexer_parked.push(parked_row);
        }

        // --- Brokers: G groups × broker_replicas instances. --------------
        let mut broker_nodes = Vec::with_capacity(config.num_broker_groups);
        let mut broker_partitions: Vec<Vec<BrokerFanout>> =
            Vec::with_capacity(config.num_broker_groups);
        for g in 0..config.num_broker_groups {
            let mut instances = Vec::new();
            let mut instance_partitions = Vec::new();
            for b in 0..config.broker_replicas {
                let balancers: Vec<Balancer<NodeHandle<SearcherService>>> = partition_map
                    .read()
                    .partitions_of_group(g)
                    .into_iter()
                    .map(|p| {
                        Balancer::with_policies(
                            searcher_nodes[p].iter().map(Node::handle).collect(),
                            config.health,
                            config.retry,
                            config.seed
                                ^ 0xBA1
                                ^ ((g as u64) << 24)
                                ^ ((b as u64) << 12)
                                ^ p as u64,
                        )
                        .with_metrics(Arc::clone(&metrics))
                    })
                    .collect();
                // The balancer list stays shared with the topology so
                // replica bootstrap and splits can grow it while this
                // broker keeps serving.
                let shared = Arc::new(RwLock::new(balancers));
                instance_partitions.push(Arc::clone(&shared));
                let mut service = BrokerService::over(g, shared, config.searcher_deadline)
                    .with_metrics(Arc::clone(&metrics));
                if let Some(hedge_after) = config.hedge_after {
                    service = service.with_hedging(hedge_after);
                }
                instances.push(Node::spawn_with(
                    format!("broker-{g}-{b}"),
                    service,
                    config.broker_workers,
                    config.latency,
                    config.seed ^ 0xB0 ^ ((g as u64) << 16) ^ b as u64,
                ));
            }
            broker_nodes.push(instances);
            broker_partitions.push(instance_partitions);
        }

        // --- Blenders. ----------------------------------------------------
        let query_cache = config
            .query_cache_capacity
            .map(|cap| Arc::new(jdvs_storage::lru::LruCache::new(cap)));
        let group_partition_counts: Arc<Vec<AtomicUsize>> = Arc::new(
            (0..config.num_broker_groups)
                .map(|g| AtomicUsize::new(partition_map.read().partitions_of_group(g).len()))
                .collect(),
        );
        let blender_nodes: Vec<Node<BlenderService>> = (0..config.num_blenders)
            .map(|i| {
                let groups: Vec<Balancer<NodeHandle<BrokerService>>> = broker_nodes
                    .iter()
                    .enumerate()
                    .map(|(g, instances)| {
                        Balancer::with_policies(
                            instances.iter().map(Node::handle).collect(),
                            config.health,
                            config.retry,
                            config.seed ^ 0xB2A ^ ((i as u64) << 24) ^ g as u64,
                        )
                        .with_metrics(Arc::clone(&metrics))
                    })
                    .collect();
                let mut service = BlenderService::new(
                    groups,
                    Arc::clone(&extractor),
                    Arc::clone(&images),
                    config.ranking,
                    config.broker_deadline,
                )
                .with_shared_group_partitions(Arc::clone(&group_partition_counts))
                .with_metrics(Arc::clone(&metrics));
                if let Some(cache) = &query_cache {
                    service = service.with_query_cache(Arc::clone(cache));
                }
                if let Some(detector) = &config.category_detector {
                    service = service.with_category_detector(Arc::clone(detector));
                }
                Node::spawn_with(
                    format!("blender-{i}"),
                    service,
                    config.blender_workers,
                    config.latency,
                    config.seed ^ 0xB1E ^ i as u64,
                )
            })
            .collect();

        // --- Front end. ----------------------------------------------------
        let frontend = Arc::new(
            Balancer::with_policies(
                blender_nodes.iter().map(Node::handle).collect(),
                config.health,
                config.retry,
                config.seed ^ 0xF0E,
            )
            .with_metrics(Arc::clone(&metrics)),
        );

        let realtime_indexing = config.realtime_indexing;
        let durable = durable.map(Arc::new);
        let maintenance = Arc::new(Mutex::new(()));

        // --- Background maintenance scheduler (durable + a knob set). -----
        // One thread drives both scheduled duties: exposure-bounded
        // checkpoints and threshold-triggered log compaction. They share
        // the maintenance mutex anyway, so a second thread would only
        // queue behind the first.
        let mut checkpoint_scheduler = None;
        let scheduled = checkpoint_exposure.is_some() || log_compaction_ratio.is_some();
        if let (true, Some(d), true) = (scheduled, &durable, realtime_indexing) {
            let core = CheckpointCore {
                handles: handles.clone(),
                maintenance: Arc::clone(&maintenance),
                indexer_pause: Arc::clone(&indexer_pause),
                pause_epoch: Arc::clone(&pause_epoch),
                indexer_parked: indexer_parked.clone(),
                indexer_stop: Arc::clone(&indexer_stop),
                durable: Arc::clone(d),
            };
            let stop = Arc::clone(&indexer_stop);
            checkpoint_scheduler = Some(
                std::thread::Builder::new()
                    .name("ckpt-sched".into())
                    .spawn(move || {
                        while !stop.load(Ordering::Relaxed) {
                            if let Some(bound) = checkpoint_exposure {
                                core.run_exposure_pass(bound);
                            }
                            if let Some(threshold) = log_compaction_ratio {
                                core.run_compaction_pass(threshold);
                            }
                            std::thread::sleep(Duration::from_millis(5));
                        }
                    })
                    .expect("spawning checkpoint scheduler thread"),
            );
        }

        Self {
            frontend,
            partition_map,
            config,
            handles,
            searcher_nodes,
            broker_nodes,
            broker_partitions,
            group_partition_counts,
            blender_nodes,
            queue,
            extractor,
            images,
            feature_db,
            indexer_stop,
            indexer_pause,
            pause_epoch,
            indexer_parked,
            maintenance,
            indexer_threads,
            checkpoint_scheduler,
            indexer_processed,
            query_cache,
            metrics,
            realtime_indexing,
            durable,
        }
    }

    /// The shared resilience counters of the serving path (every balancer,
    /// broker, and blender reports into this instance).
    pub fn resilience_metrics(&self) -> &Arc<ResilienceMetrics> {
        &self.metrics
    }

    /// Point-in-time snapshot of the resilience counters.
    pub fn resilience_snapshot(&self) -> ResilienceSnapshot {
        self.metrics.snapshot()
    }

    /// Statistics of the shared blender query-feature cache, if enabled.
    pub fn query_cache_stats(&self) -> Option<jdvs_storage::lru::LruStats> {
        self.query_cache.as_ref().map(|c| c.stats())
    }

    /// A point-in-time operational report across the whole stack — what a
    /// production dashboard would scrape.
    pub fn ops_report(&self) -> OpsReport {
        let mut partitions = Vec::with_capacity(self.handles.len());
        for (p, row) in self.handles.iter().enumerate() {
            for (r, handle) in row.iter().enumerate() {
                let index = handle.get();
                partitions.push(PartitionOps {
                    partition: p,
                    replica: r,
                    generation: handle.generation(),
                    records: index.num_images(),
                    valid: index.valid_images(),
                    inserts: index.stats().inserts.get(),
                    reuses: index.stats().reuses.get(),
                    updates: index.stats().updates.get(),
                    deletions: index.stats().deletions.get(),
                    searches: index.stats().searches.get(),
                    expansions: index.inverted().total_expansions(),
                    applied_offset: index.stats().applied_offset.get(),
                });
            }
        }
        OpsReport {
            queue_length: self.queue.len(),
            max_indexer_lag: self.max_indexer_lag(),
            query_cache: self.query_cache_stats(),
            durability: self.durability_snapshot(),
            partitions,
        }
    }

    /// The durability counters, when built with
    /// [`SearchTopology::build_durable`].
    pub fn durability_metrics(&self) -> Option<&Arc<DurabilityMetrics>> {
        self.durable.as_ref().map(|d| &d.metrics)
    }

    /// Point-in-time durability snapshot, when built durable.
    pub fn durability_snapshot(&self) -> Option<DurabilitySnapshot> {
        self.durable.as_ref().map(|d| d.metrics.snapshot())
    }

    /// What startup recovery did, one report per (partition, replica) in
    /// partition-major order; `None` when not built durable.
    pub fn recovery_reports(&self) -> Option<&[RecoveryReport]> {
        self.durable.as_ref().map(|d| d.recovery.as_slice())
    }

    /// The durable queue (log handle), when built durable. Useful for
    /// forcing a [`DurableQueue::sync`] in tests and operational tooling.
    pub fn durable_queue(&self) -> Option<&DurableQueue> {
        self.durable.as_ref().map(|d| &d.queue)
    }

    /// Pauses real-time consumption and blocks until every indexer thread
    /// of `partition` has positively acknowledged the pause (echoed the
    /// current pause epoch after finishing its in-flight apply). Callers
    /// must hold `self.maintenance` and resume via
    /// [`SearchTopology::resume_indexers`]. Bails early on shutdown so a
    /// maintenance call racing teardown cannot hang.
    fn quiesce_partition(&self, partition: usize) {
        quiesce_row(
            &self.pause_epoch,
            &self.indexer_pause,
            &self.indexer_parked[partition],
            &self.indexer_stop,
        );
    }

    /// Resumes real-time consumption after [`SearchTopology::quiesce_partition`].
    fn resume_indexers(&self) {
        self.indexer_pause.store(false, Ordering::Release);
    }

    /// Checkpoints one partition **online**: real-time consumption is
    /// briefly paused at a quiesced cut (each indexer thread positively
    /// acknowledges the pause before the snapshot is cut), the log is
    /// synced so the watermark never exceeds the durable log end, replica
    /// 0's index is snapshotted atomically (temp file + rename + manifest)
    /// at its applied-offset watermark, indexing resumes, and log segments
    /// wholly below the *minimum* checkpoint watermark across all
    /// partitions are reclaimed (every partition replays from the shared
    /// log, so retention must respect the laggiest checkpoint).
    ///
    /// Concurrent maintenance calls (checkpoint or rebuild) serialize on
    /// an internal mutex — the pause flag is global, so one caller's
    /// resume must not unpause indexing under another's snapshot.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the log sync, snapshot or retention path.
    ///
    /// # Panics
    ///
    /// Panics if not built durable, real-time indexing is disabled, or
    /// `partition` is out of range.
    pub fn checkpoint_partition(&self, partition: usize) -> io::Result<CheckpointReport> {
        assert!(partition < self.handles.len(), "partition out of range");
        assert!(
            self.realtime_indexing,
            "checkpointing needs the real-time indexers' watermarks"
        );
        let durable = self
            .durable
            .as_ref()
            .expect("checkpoint_partition requires build_durable");
        let core = CheckpointCore {
            handles: self.handles.clone(),
            maintenance: Arc::clone(&self.maintenance),
            indexer_pause: Arc::clone(&self.indexer_pause),
            pause_epoch: Arc::clone(&self.pause_epoch),
            indexer_parked: self.indexer_parked.clone(),
            indexer_stop: Arc::clone(&self.indexer_stop),
            durable: Arc::clone(durable),
        };
        core.checkpoint_partition(partition)
    }

    /// The applied-offset watermark of `partition`'s newest checkpoint
    /// manifest — `None` when not built durable or never checkpointed.
    /// What the background scheduler measures replay exposure against.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range on a durable topology.
    pub fn checkpoint_watermark(&self, partition: usize) -> Option<u64> {
        self.durable.as_ref().and_then(|d| {
            d.checkpoints.read()[partition]
                .manifest()
                .map(|m| m.applied_offset)
        })
    }

    /// A snapshot of the partition layout. Splits change the live layout;
    /// take a fresh snapshot rather than caching this across maintenance
    /// operations.
    pub fn partition_map(&self) -> PartitionMap {
        self.partition_map.read().clone()
    }

    /// The stack's configuration (shape, deadlines, policies).
    pub fn config(&self) -> &TopologyConfig {
        &self.config
    }

    /// The shared feature extractor.
    pub fn extractor(&self) -> &Arc<CachingExtractor> {
        &self.extractor
    }

    /// The shared image store.
    pub fn images(&self) -> &Arc<ImageStore> {
        &self.images
    }

    /// The catalog update queue (publish events here).
    pub fn queue(&self) -> &MessageQueue<ProductEvent> {
        &self.queue
    }

    /// Publishes one catalog event.
    pub fn publish(&self, event: ProductEvent) {
        self.queue.publish(event);
    }

    /// A user-facing client through the front-end balancer.
    pub fn client(&self, deadline: Duration) -> SearchClient {
        SearchClient::new(Arc::clone(&self.frontend), deadline)
    }

    /// Convenience: one query through the front end.
    ///
    /// # Errors
    ///
    /// Propagates RPC errors if every blender fails.
    pub fn search(&self, query: SearchQuery) -> Result<SearchResponse, RpcError> {
        self.frontend.call(query, Duration::from_secs(30))
    }

    /// Snapshot of replica `r` of partition `p`'s current index.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn index(&self, partition: usize, replica: usize) -> Arc<VisualIndex> {
        self.handles[partition][replica].get()
    }

    /// The hot-swap handle of a replica.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn handle(&self, partition: usize, replica: usize) -> &Arc<IndexHandle> {
        &self.handles[partition][replica]
    }

    /// Snapshots of all current indexes, `[partition][replica]`.
    pub fn indexes(&self) -> Vec<Vec<Arc<VisualIndex>>> {
        self.handles
            .iter()
            .map(|row| row.iter().map(|h| h.get()).collect())
            .collect()
    }

    /// Fault controls of a searcher node.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn searcher_faults(&self, partition: usize, replica: usize) -> &jdvs_net::FaultInjector {
        self.searcher_nodes[partition][replica].faults()
    }

    /// Fault controls of a broker instance.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn broker_faults(&self, group: usize, instance: usize) -> &jdvs_net::FaultInjector {
        self.broker_nodes[group][instance].faults()
    }

    /// Total images across partition replicas (each image counted once per
    /// replica; divide by the replica count for logical size).
    pub fn total_indexed_images(&self) -> usize {
        self.indexes()
            .iter()
            .flatten()
            .map(|i| i.num_images())
            .sum()
    }

    /// Number of unread events the slowest real-time indexer still has to
    /// process — 0 means every partition is fully caught up.
    pub fn max_indexer_lag(&self) -> u64 {
        let published = self.queue.len();
        self.indexer_processed
            .iter()
            .flatten()
            .map(|p| published.saturating_sub(p.load(Ordering::Acquire)))
            .max()
            .unwrap_or(0)
    }

    /// Blocks until every partition's indexer has consumed the whole queue
    /// (only meaningful while nothing is concurrently publishing), then
    /// flushes in-flight inverted-list expansions.
    ///
    /// # Panics
    ///
    /// Panics if indexers fail to catch up within `timeout`.
    pub fn wait_for_freshness(&self, timeout: Duration) {
        if !self.realtime_indexing {
            return;
        }
        let deadline = std::time::Instant::now() + timeout;
        while self.max_indexer_lag() > 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "real-time indexers failed to catch up within {timeout:?}"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        for row in &self.handles {
            for handle in row {
                handle.get().flush();
            }
        }
    }

    /// The quiesced consume positions of `partition`'s replicas. Caller
    /// must hold the maintenance mutex with the partition quiesced.
    fn quiesced_cuts(&self, partition: usize) -> Vec<u64> {
        (0..self.handles[partition].len())
            .map(|r| self.indexer_processed[partition][r].load(Ordering::Acquire))
            .collect()
    }

    /// Builds a fresh filter-scoped index covering `[0, cut)` of the
    /// logical log: seeded from the newest checkpoint at or below `cut`
    /// (replaying only the surviving suffix) when one exists, or by cold
    /// replay of the complete log otherwise. Shared by rebuild and split.
    ///
    /// The cold path asserts the log prefix is still present. That cannot
    /// fire spuriously: retention only prunes below the *minimum*
    /// checkpoint watermark across partitions, so a pruned prefix implies
    /// this partition has a checkpoint at or above the queue base — and
    /// `cut` (an applied position) is necessarily at or above that
    /// watermark, so the seeded path is taken.
    fn build_to_cut(
        &self,
        checkpoint_partition: usize,
        filter: &KeyFilter,
        cut: u64,
    ) -> (VisualIndex, u64, bool) {
        let builder = FullIndexBuilder::new(
            self.config.index.clone(),
            Arc::clone(&self.extractor),
            Arc::clone(&self.images),
            Arc::clone(&self.feature_db),
        )
        .with_filter(Arc::clone(filter));
        let seed = self
            .durable
            .as_ref()
            .and_then(|d| d.checkpoints.read()[checkpoint_partition].recover_shared_within(cut));
        let (fresh, build) = match &seed {
            Some(s) => {
                let start = s.applied_offset.max(self.queue.base());
                let suffix = self.queue.read_range(start, (cut - start) as usize);
                builder.build_seeded(&s.index, &suffix)
            }
            None => {
                assert_eq!(
                    self.queue.base(),
                    0,
                    "cold rebuild needs the complete log, but checkpoint \
                     retention already reclaimed its prefix and no usable \
                     checkpoint at or below the cut survived"
                );
                builder.build(&self.queue.read_range(0, cut as usize))
            }
        };
        // Stamp the watermark the build reached: the fresh index applied
        // everything below the cut, and post-swap checkpoints measure
        // replay exposure against this.
        fresh.stats().applied_offset.set_max(cut);
        (fresh, build.messages_replayed, seed.is_some())
    }

    /// Replays `[from, to)` of the log into `index` through the live
    /// indexing path (a replica whose quiesced cut ran past the common
    /// build cut catches its private tail up before the swap).
    fn replay_tail(
        &self,
        index: Arc<VisualIndex>,
        filter: &KeyFilter,
        from: u64,
        to: u64,
    ) -> Arc<VisualIndex> {
        let indexer = RealtimeIndexer::for_index(
            index,
            Arc::clone(&self.extractor),
            Arc::clone(&self.images),
            Arc::clone(&self.feature_db),
        )
        .with_filter(Arc::clone(filter));
        for (i, event) in self
            .queue
            .read_range(from, (to - from) as usize)
            .iter()
            .enumerate()
        {
            indexer.apply_at(from + i as u64, event);
        }
        indexer.index().flush();
        indexer.index()
    }

    /// Performs the weekly full rebuild of one partition **online**
    /// (Figure 2): real-time indexing is briefly paused at a quiesced
    /// cut point, the partition's state up to the cut is reconstructed
    /// into a fresh index (logically-deleted images are physically
    /// dropped), the index is shipped through the snapshot format and
    /// hot-swapped, and indexing resumes — all while searches keep being
    /// served (by the old index until the instant of the swap).
    ///
    /// On a durable topology the rebuild is **checkpoint-seeded**: the
    /// newest valid snapshot at or below the cut seeds the catalog state
    /// and only the surviving log suffix `[watermark, cut)` is replayed —
    /// so rebuilds keep working after checkpoint retention pruned the log
    /// prefix. One index is built at the minimum cut and decoded once per
    /// replica from the same snapshot bytes; a replica whose own cut ran
    /// further catches up through the live indexing path before its swap.
    ///
    /// A partition whose replayed state contains no valid image (empty or
    /// fully deleted) swaps in an empty index and reports
    /// `records_after: 0` — not a panic.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range, real-time indexing is
    /// disabled, or (non-durable topologies only) the log prefix was
    /// externally pruned.
    pub fn rebuild_partition(&self, partition: usize) -> RebuildReport {
        assert!(partition < self.handles.len(), "partition out of range");
        assert!(
            self.realtime_indexing,
            "online rebuild requires real-time indexing (otherwise just build a world)"
        );
        // 1. One maintenance op at a time (the pause flag is global), then
        //    pause consumption and wait for every indexer thread of this
        //    partition to positively acknowledge the pause.
        let _maintenance = self.maintenance.lock();
        self.quiesce_partition(partition);

        // 2. Build once at the minimum quiesced cut (replica cuts may
        //    differ — each indexer thread parked at its own position).
        let cuts = self.quiesced_cuts(partition);
        let cut0 = cuts.iter().copied().min().unwrap_or(0);
        let filter = partition_filter(&self.partition_map, partition);
        let (fresh, messages_replayed, _) = self.build_to_cut(partition, &filter, cut0);
        // Ship through the on-disk format, as production distributes
        // index files to searcher nodes.
        let bytes = persist::save(&fresh);

        // 3. Per replica: decode the shared snapshot, replay the replica's
        //    private tail [cut0, cut_r), swap it in.
        let mut report = RebuildReport {
            partition,
            messages_replayed,
            records_before: 0,
            records_after: 0,
            snapshot_bytes: bytes.len(),
        };
        let mut max_tail = 0u64;
        for (r, handle) in self.handles[partition].iter().enumerate() {
            let loaded = Arc::new(persist::load(&bytes).expect("snapshot round-trip cannot fail"));
            // The snapshot format does not carry the applied-offset
            // watermark (recovery re-stamps it too); without this a
            // post-rebuild checkpoint would record watermark 0.
            loaded.stats().applied_offset.set_max(cut0);
            let loaded = if cuts[r] > cut0 {
                max_tail = max_tail.max(cuts[r] - cut0);
                self.replay_tail(loaded, &filter, cut0, cuts[r])
            } else {
                loaded
            };
            report.records_after += loaded.num_images();
            let old = handle.swap(loaded);
            report.records_before += old.num_images();
        }
        report.messages_replayed += max_tail;

        // 4. Resume real-time indexing; events after each cut apply to the
        //    fresh index through the handle.
        self.resume_indexers();
        report
    }

    /// Adds one replica to a partition **online**: the replica is seeded
    /// from the newest checkpoint (or built cold from the retained log
    /// sharing the siblings' quantizers), tails the live log *without
    /// pausing ingestion* until within
    /// [`TopologyConfig::bootstrap_lag_bound`] events of the head, then —
    /// under the maintenance mutex and a brief quiesce — drains the final
    /// gap and atomically joins the serving set: its searcher node is
    /// pushed into every broker balancer that fans out to this partition,
    /// and its own indexing thread keeps it fresh from there on.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range or real-time indexing is
    /// disabled.
    pub fn bootstrap_replica(&mut self, partition: usize) -> BootstrapReport {
        assert!(partition < self.handles.len(), "partition out of range");
        assert!(
            self.realtime_indexing,
            "replica bootstrap tails the live log"
        );
        // --- Phase A: build the replica off to the side. Ingestion and
        // serving continue untouched; only the checkpoint read takes the
        // maintenance mutex (lifecycle ops serialize on it, so a snapshot
        // mid-save is never observed).
        let filter = partition_filter(&self.partition_map, partition);
        let seed = {
            let _maintenance = self.maintenance.lock();
            self.durable.as_ref().and_then(|d| {
                d.checkpoints.read()[partition].recover_shared_within(self.queue.len())
            })
        };
        let from_snapshot = seed.is_some();
        let (index, start) = match seed {
            Some(seed) => {
                let start = seed.applied_offset.max(self.queue.base());
                let index = seed.fork();
                index.stats().applied_offset.set_max(seed.applied_offset);
                (index, start)
            }
            None => {
                // Cold path: an empty index sharing the siblings' trained
                // quantizers, fed from the queue base (still unpruned by
                // the same retention argument as `build_to_cut`).
                let sibling = self.handles[partition][0].get();
                assert_eq!(
                    self.queue.base(),
                    0,
                    "cold bootstrap needs the complete log, but checkpoint \
                     retention already reclaimed its prefix and no usable \
                     checkpoint survived"
                );
                let index = VisualIndex::with_quantizers(
                    self.config.index.clone(),
                    sibling.quantizer().clone(),
                    sibling.pq_quantizer(),
                );
                (index, 0)
            }
        };
        let replica = self.handles[partition].len();
        let indexer = RealtimeIndexer::for_index(
            Arc::new(index),
            Arc::clone(&self.extractor),
            Arc::clone(&self.images),
            Arc::clone(&self.feature_db),
        )
        .with_filter(filter);
        let mut consumer = self.queue.consumer_at(start);
        let mut tailed = 0u64;
        // Tail the live log (publishers keep running) until the replica is
        // within the configured lag bound of the head.
        while self.queue.len().saturating_sub(consumer.position()) > self.config.bootstrap_lag_bound
        {
            let offset = consumer.position();
            if let Some(event) = consumer.poll_now() {
                indexer.apply_at(offset, &event);
                tailed += 1;
            }
        }

        // --- Phase B: quiesce the partition, drain the remaining gap, and
        // atomically join the serving set.
        let _maintenance = self.maintenance.lock();
        self.quiesce_partition(partition);
        loop {
            let offset = consumer.position();
            match consumer.poll_now() {
                Some(event) => {
                    indexer.apply_at(offset, &event);
                    tailed += 1;
                }
                None => break,
            }
        }
        indexer.index().flush();

        let handle = Arc::clone(indexer.handle());
        let node = Node::spawn_with(
            format!("searcher-{partition}-{replica}"),
            SearcherService::new(partition, Arc::clone(&handle)),
            self.config.searcher_workers,
            self.config.latency,
            self.config.seed ^ ((partition as u64) << 16) ^ replica as u64,
        );
        // Join the fan-out: every broker instance of the owning group gets
        // this searcher as a new balancer target (fan-outs already in
        // flight took their snapshot; the next one covers the replica).
        let (group, slot) = {
            let map = self.partition_map.read();
            let group = map.broker_group_of(partition);
            let slot = map
                .partitions_of_group(group)
                .iter()
                .position(|&q| q == partition)
                .expect("a partition appears in its own group");
            (group, slot)
        };
        for instance in &self.broker_partitions[group] {
            instance.read()[slot].push_target(node.handle());
        }
        let processed = Arc::new(AtomicU64::new(consumer.position()));
        let parked = Arc::new(AtomicU64::new(0));
        self.handles[partition].push(Arc::clone(&handle));
        self.searcher_nodes[partition].push(node);
        self.indexer_processed[partition].push(Arc::clone(&processed));
        self.indexer_parked[partition].push(Arc::clone(&parked));
        self.indexer_threads.push(spawn_indexer_thread(
            format!("rtidx-{partition}-{replica}"),
            consumer,
            indexer,
            Arc::clone(&self.indexer_stop),
            Arc::clone(&self.indexer_pause),
            Arc::clone(&self.pause_epoch),
            processed,
            parked,
        ));
        self.resume_indexers();
        BootstrapReport {
            partition,
            replica,
            from_snapshot,
            seed_offset: start,
            tailed,
        }
    }

    /// Splits one partition in two **online** with zero lost updates: under
    /// the maintenance mutex and a quiesce of the parent's indexers, the
    /// routing table doubles (the upper-half aliases of the parent's key
    /// space move to a new sibling id), both halves are rebuilt from the
    /// parent's newest checkpoint plus the surviving log suffix — each
    /// through its own partition filter — and then the sibling's replica
    /// row joins the serving set before the parent's replicas swap down to
    /// their narrowed half. Sibling indexer threads start consuming at the
    /// build cut, so events published during the split land exactly once.
    ///
    /// On a durable topology the sibling gets its own checkpoint store and
    /// the new layout is persisted (atomically, before ingestion resumes),
    /// so a restart reconstructs the split topology instead of losing the
    /// moved keys to the parent's post-split checkpoints.
    ///
    /// A fan-out racing the final swaps may briefly see a moved key in
    /// both halves (the parent still serves its pre-split index while the
    /// sibling is already live); searches never miss a key.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from opening the sibling's checkpoint store
    /// or persisting the partition map (the split is aborted, layout
    /// unchanged).
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range or real-time indexing is
    /// disabled.
    pub fn split_partition(&mut self, partition: usize) -> io::Result<SplitReport> {
        assert!(partition < self.handles.len(), "partition out of range");
        assert!(
            self.realtime_indexing,
            "online split requires real-time indexing"
        );
        let _maintenance = self.maintenance.lock();
        self.quiesce_partition(partition);
        let cuts = self.quiesced_cuts(partition);
        let cut0 = cuts.iter().copied().min().unwrap_or(0);

        let sibling = self.handles.len();
        let candidate = {
            let mut map = self.partition_map.read().clone();
            let s = map.split(partition);
            debug_assert_eq!(s, sibling, "sibling id is the next partition id");
            map
        };

        // Build both halves from the same seed + suffix, each through its
        // own filter over the *candidate* layout — the live map stays
        // untouched until the durable artifacts below are safely on disk,
        // so the abort path leaves the running layout unchanged.
        let cand_map = Arc::new(RwLock::new(candidate.clone()));
        let (parent_half, messages_replayed, from_snapshot) =
            self.build_to_cut(partition, &partition_filter(&cand_map, partition), cut0);
        let (sibling_half, _, _) =
            self.build_to_cut(partition, &partition_filter(&cand_map, sibling), cut0);
        let parent_bytes = persist::save(&parent_half);
        let sibling_bytes = persist::save(&sibling_half);

        // Durable commit (fallible). Ordering is load-bearing:
        //
        //   1. the sibling's store gets its half checkpointed at the cut —
        //      without a manifest, a restart after earlier retention
        //      pruning would cold-replay the sibling from a log whose
        //      prefix is gone, losing every moved key below the base;
        //   2. the layout file commits the split on disk (if step 1's
        //      orphan store is all that survives a crash here, the old
        //      layout simply ignores it);
        //   3. the parent's *narrowed* half lands only after the layout —
        //      a narrowed parent checkpoint under the old two-way layout
        //      would drop the moved keys on restart. Until it lands, the
        //      pre-split full checkpoint is a safe superset.
        if let Some(d) = self.durable.as_ref() {
            let committed: io::Result<()> = (|| {
                let store = CheckpointStore::open(
                    CheckpointConfig {
                        dir: d.dir.join(format!("ckpt-p{sibling}")),
                        keep: d.snapshots_keep,
                    },
                    Arc::clone(&d.metrics),
                )?;
                // Sync the log through the cut first: a crash after these
                // checkpoints could otherwise truncate the log below their
                // watermark (same hazard as checkpoint_partition).
                d.queue.sync()?;
                store.save(&sibling_half, cut0)?;
                save_partition_map(&d.dir, &candidate)?;
                d.checkpoints.read()[partition].save(&parent_half, cut0)?;
                d.checkpoints.write().push(store);
                Ok(())
            })();
            if let Err(e) = committed {
                self.resume_indexers();
                return Err(e);
            }
        }
        // Commit the routing change. The parent's indexers are parked, so
        // no event is applied under a half-updated view; other partitions'
        // ownership is untouched by construction of the table doubling.
        *self.partition_map.write() = candidate;
        let parent_filter = partition_filter(&self.partition_map, partition);
        let sibling_filter = partition_filter(&self.partition_map, sibling);

        // Stand the sibling's replica row up (same replica count as the
        // parent). Its indexer threads start at the build cut and park
        // until the resume below, then consume [cut0, …) through the
        // sibling filter — nothing published during the split is lost.
        let replicas = self.handles[partition].len();
        let mut report = SplitReport {
            partition,
            sibling,
            messages_replayed,
            parent_records: 0,
            sibling_records: 0,
            from_snapshot,
        };
        let mut sib_handles = Vec::with_capacity(replicas);
        let mut sib_nodes = Vec::with_capacity(replicas);
        let mut sib_processed = Vec::with_capacity(replicas);
        let mut sib_parked = Vec::with_capacity(replicas);
        for r in 0..replicas {
            let loaded =
                Arc::new(persist::load(&sibling_bytes).expect("snapshot round-trip cannot fail"));
            loaded.stats().applied_offset.set_max(cut0);
            report.sibling_records += loaded.num_images();
            let indexer = RealtimeIndexer::for_index(
                loaded,
                Arc::clone(&self.extractor),
                Arc::clone(&self.images),
                Arc::clone(&self.feature_db),
            )
            .with_filter(Arc::clone(&sibling_filter));
            let handle = Arc::clone(indexer.handle());
            let node = Node::spawn_with(
                format!("searcher-{sibling}-{r}"),
                SearcherService::new(sibling, Arc::clone(&handle)),
                self.config.searcher_workers,
                self.config.latency,
                self.config.seed ^ ((sibling as u64) << 16) ^ r as u64,
            );
            let processed = Arc::new(AtomicU64::new(cut0));
            let parked = Arc::new(AtomicU64::new(0));
            self.indexer_threads.push(spawn_indexer_thread(
                format!("rtidx-{sibling}-{r}"),
                self.queue.consumer_at(cut0),
                indexer,
                Arc::clone(&self.indexer_stop),
                Arc::clone(&self.indexer_pause),
                Arc::clone(&self.pause_epoch),
                Arc::clone(&processed),
                Arc::clone(&parked),
            ));
            sib_handles.push(handle);
            sib_nodes.push(node);
            sib_processed.push(processed);
            sib_parked.push(parked);
        }

        // Make the sibling serving-visible *before* narrowing the parent,
        // so no fan-out ever misses the moved keys: one balancer over the
        // sibling's replicas per broker instance of the owning group, then
        // the blenders' coverage count.
        let group = self.partition_map.read().broker_group_of(sibling);
        for (b, instance) in self.broker_partitions[group].iter().enumerate() {
            let balancer = Balancer::with_policies(
                sib_nodes.iter().map(Node::handle).collect(),
                self.config.health,
                self.config.retry,
                self.config.seed
                    ^ 0xBA1
                    ^ ((group as u64) << 24)
                    ^ ((b as u64) << 12)
                    ^ sibling as u64,
            )
            .with_metrics(Arc::clone(&self.metrics));
            instance.write().push(balancer);
        }
        self.handles.push(sib_handles);
        self.searcher_nodes.push(sib_nodes);
        self.indexer_processed.push(sib_processed);
        self.indexer_parked.push(sib_parked);
        self.group_partition_counts[group].fetch_add(1, Ordering::Release);

        // Swap the parent's replicas down to their narrowed half, catching
        // up any replica whose quiesced cut ran past the build cut.
        for (r, handle) in self.handles[partition].iter().enumerate() {
            let loaded =
                Arc::new(persist::load(&parent_bytes).expect("snapshot round-trip cannot fail"));
            loaded.stats().applied_offset.set_max(cut0);
            let loaded = if cuts[r] > cut0 {
                self.replay_tail(loaded, &parent_filter, cut0, cuts[r])
            } else {
                loaded
            };
            report.parent_records += loaded.num_images();
            handle.swap(loaded);
        }
        self.resume_indexers();
        Ok(report)
    }

    /// Stops real-time indexers (draining the queue), then shuts every node
    /// down, top of the stack first. Idempotent.
    pub fn shutdown(&mut self) {
        self.indexer_stop.store(true, Ordering::SeqCst);
        // Stop the checkpoint scheduler before the indexers: a checkpoint
        // cut mid-teardown would race the drain below (quiesce bails on
        // the stop flag, so this join is prompt).
        if let Some(t) = self.checkpoint_scheduler.take() {
            let _ = t.join();
        }
        // A paused indexer would never reach the drain loop.
        self.indexer_pause.store(false, Ordering::SeqCst);
        for t in self.indexer_threads.drain(..) {
            let _ = t.join();
        }
        // Push any unsynced log tail to stable storage before the nodes
        // go away (clean shutdowns lose nothing even under FsyncPolicy::Os).
        if let Some(d) = &self.durable {
            let _ = d.queue.sync();
        }
        for b in &self.blender_nodes {
            b.shutdown();
        }
        for g in &self.broker_nodes {
            for b in g {
                b.shutdown();
            }
        }
        for p in &self.searcher_nodes {
            for s in p {
                s.shutdown();
            }
        }
    }
}

impl Drop for SearchTopology {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jdvs_features::cost::CostModel;
    use jdvs_features::{ExtractorConfig, FeatureExtractor};
    use jdvs_storage::model::{ImageKey, ProductAttributes, ProductId};
    use jdvs_vector::rng::Xoshiro256;

    const DIM: usize = 8;

    struct World {
        topology: SearchTopology,
        images: Arc<ImageStore>,
    }

    fn world(realtime: bool) -> World {
        let images = Arc::new(ImageStore::with_blob_len(64));
        let feature_db = Arc::new(FeatureDb::new());
        let extractor = Arc::new(CachingExtractor::new(
            FeatureExtractor::new(ExtractorConfig {
                dim: DIM,
                ..Default::default()
            }),
            CostModel::free(),
        ));
        let mut rng = Xoshiro256::seed_from(2);
        let training: Vec<Vector> = (0..64)
            .map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let config = TopologyConfig {
            index: IndexConfig {
                dim: DIM,
                num_lists: 4,
                nprobe: 4,
                ..Default::default()
            },
            num_partitions: 4,
            replicas_per_partition: 2,
            num_broker_groups: 2,
            broker_replicas: 2,
            num_blenders: 2,
            realtime_indexing: realtime,
            ranking: RankingPolicy::similarity_only(),
            ..Default::default()
        };
        let topology = SearchTopology::build(
            config,
            extractor,
            Arc::clone(&images),
            feature_db,
            &training,
            MessageQueue::new(),
        );
        World { topology, images }
    }

    fn add_event(w: &World, product: u64) -> ProductEvent {
        let url = format!("u{product}");
        w.images.put_synthetic(&url, product % 5);
        ProductEvent::AddProduct {
            product_id: ProductId(product),
            images: vec![ProductAttributes::new(ProductId(product), 1, 100, 1, url)],
        }
    }

    #[test]
    fn events_flow_to_partitions_and_become_searchable() {
        let w = world(true);
        for i in 0..40u64 {
            w.topology.publish(add_event(&w, i));
        }
        w.topology.wait_for_freshness(Duration::from_secs(30));
        // Every partition replica pair must agree, and the logical total
        // must be 40.
        let mut logical_total = 0;
        for p in 0..4 {
            let a = w.topology.index(p, 0).num_images();
            let b = w.topology.index(p, 1).num_images();
            assert_eq!(a, b, "replicas of partition {p} must converge");
            logical_total += a;
        }
        assert_eq!(logical_total, 40);

        // A query for an indexed image's features must find it.
        let map = w.topology.partition_map();
        let p = map.partition_of_url("u7");
        let index = w.topology.index(p, 0);
        let id = index.lookup(ImageKey::from_url("u7")).unwrap();
        let feats = index.features(id).unwrap();
        let resp = w
            .topology
            .search(SearchQuery::by_features(feats.into_inner(), 3))
            .unwrap();
        assert_eq!(resp.results[0].hit.url, "u7");
        assert_eq!(resp.groups_answered, 2, "both broker groups answered");
        assert!(resp.is_complete(), "all 4 partitions covered");
        assert_eq!((resp.partitions_ok, resp.partitions_total), (4, 4));
    }

    #[test]
    fn searcher_replica_failure_is_transparent() {
        let w = world(true);
        for i in 0..20u64 {
            w.topology.publish(add_event(&w, i));
        }
        w.topology.wait_for_freshness(Duration::from_secs(30));
        for p in 0..4 {
            w.topology.searcher_faults(p, 0).set_down(true);
        }
        let map = w.topology.partition_map();
        let p = map.partition_of_url("u3");
        let index = w.topology.index(p, 1);
        let id = index.lookup(ImageKey::from_url("u3")).unwrap();
        let feats = index.features(id).unwrap();
        let resp = w
            .topology
            .search(SearchQuery::by_features(feats.into_inner(), 1))
            .unwrap();
        assert_eq!(
            resp.results[0].hit.url, "u3",
            "replica 1 serves after replica 0 died"
        );
    }

    #[test]
    fn broker_instance_failure_is_transparent() {
        let w = world(true);
        for i in 0..20u64 {
            w.topology.publish(add_event(&w, i));
        }
        w.topology.wait_for_freshness(Duration::from_secs(30));
        w.topology.broker_faults(0, 0).set_down(true);
        w.topology.broker_faults(1, 0).set_down(true);
        let resp = w
            .topology
            .search(SearchQuery::by_image_url("u3", 3))
            .unwrap();
        assert!(!resp.results.is_empty(), "second broker instances answer");
    }

    #[test]
    fn without_realtime_indexing_queue_is_ignored() {
        let w = world(false);
        for i in 0..10u64 {
            w.topology.publish(add_event(&w, i));
        }
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(w.topology.total_indexed_images(), 0);
        w.topology.wait_for_freshness(Duration::from_secs(1)); // no-op
    }

    #[test]
    fn shutdown_is_idempotent_and_stops_queries() {
        let mut w = world(true);
        w.topology.publish(add_event(&w, 0));
        w.topology.wait_for_freshness(Duration::from_secs(30));
        let client = w.topology.client(Duration::from_secs(5));
        w.topology.shutdown();
        w.topology.shutdown();
        let err = client
            .search(SearchQuery::by_image_url("u0", 1))
            .unwrap_err();
        assert_eq!(err, RpcError::NodeDown);
    }

    #[test]
    fn online_rebuild_drops_deleted_records_and_keeps_serving() {
        let w = world(true);
        // 30 products; delete 10 of them.
        for i in 0..30u64 {
            w.topology.publish(add_event(&w, i));
        }
        for i in 0..10u64 {
            w.topology.publish(ProductEvent::RemoveProduct {
                product_id: ProductId(i),
                urls: vec![format!("u{i}")],
            });
        }
        w.topology.wait_for_freshness(Duration::from_secs(30));
        let valid_before: usize = w
            .topology
            .indexes()
            .iter()
            .map(|row| row[0].valid_images())
            .sum();
        assert_eq!(valid_before, 20);

        // Rebuild every partition online.
        let mut records_before = 0;
        let mut records_after = 0;
        for p in 0..4 {
            let report = w.topology.rebuild_partition(p);
            assert!(report.snapshot_bytes > 0);
            records_before += report.records_before;
            records_after += report.records_after;
        }
        // Each count is doubled (2 replicas). Before: 30 records per
        // logical copy (deleted kept); after: only the 20 valid.
        assert_eq!(records_before, 30 * 2);
        assert_eq!(records_after, 20 * 2);

        // Queries still answer from the fresh indexes.
        let resp = w
            .topology
            .search(SearchQuery::by_image_url("u15", 1))
            .unwrap();
        assert_eq!(resp.results[0].hit.url, "u15");
        // Deleted products stay gone.
        let resp = w
            .topology
            .search(SearchQuery::by_image_url("u3", 5))
            .unwrap();
        assert!(resp.results.iter().all(|h| h.hit.url != "u3"));

        // Real-time indexing still works after the swap.
        w.topology.publish(add_event(&w, 999));
        w.topology.wait_for_freshness(Duration::from_secs(30));
        let resp = w
            .topology
            .search(SearchQuery::by_image_url("u999", 1))
            .unwrap();
        assert_eq!(resp.results[0].hit.url, "u999");
    }

    #[test]
    fn rebuild_bumps_handle_generation() {
        let w = world(true);
        for i in 0..8u64 {
            w.topology.publish(add_event(&w, i));
        }
        w.topology.wait_for_freshness(Duration::from_secs(30));
        assert_eq!(w.topology.handle(0, 0).generation(), 0);
        w.topology.rebuild_partition(0);
        assert_eq!(w.topology.handle(0, 0).generation(), 1);
        assert_eq!(
            w.topology.handle(1, 0).generation(),
            0,
            "other partitions untouched"
        );
    }

    #[test]
    fn ops_report_reflects_activity() {
        let w = world(true);
        for i in 0..12u64 {
            w.topology.publish(add_event(&w, i));
        }
        w.topology.wait_for_freshness(Duration::from_secs(30));
        let report = w.topology.ops_report();
        assert_eq!(report.queue_length, 12);
        assert_eq!(report.max_indexer_lag, 0);
        assert_eq!(report.partitions.len(), 8, "4 partitions x 2 replicas");
        assert_eq!(report.logical_valid_images(), 12);
        let total_inserts: u64 = report
            .partitions
            .iter()
            .filter(|p| p.replica == 0)
            .map(|p| p.inserts)
            .sum();
        assert_eq!(total_inserts, 12);
        assert!(report.partitions.iter().all(|p| p.generation == 0));
    }

    #[test]
    fn compressed_mode_works_end_to_end() {
        let images = Arc::new(ImageStore::with_blob_len(64));
        let feature_db = Arc::new(FeatureDb::new());
        let extractor = Arc::new(CachingExtractor::new(
            FeatureExtractor::new(ExtractorConfig {
                dim: DIM,
                ..Default::default()
            }),
            CostModel::free(),
        ));
        let mut rng = Xoshiro256::seed_from(6);
        let training: Vec<Vector> = (0..128)
            .map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let topology = SearchTopology::build(
            TopologyConfig {
                index: IndexConfig {
                    dim: DIM,
                    num_lists: 4,
                    nprobe: 4,
                    pq_subspaces: Some(4),
                    ..Default::default()
                },
                num_partitions: 2,
                num_broker_groups: 1,
                ranking: RankingPolicy::similarity_only(),
                ..Default::default()
            },
            extractor,
            Arc::clone(&images),
            feature_db,
            &training,
            MessageQueue::new(),
        );
        for i in 0..30u64 {
            let url = format!("u{i}");
            images.put_synthetic(&url, i % 4);
            topology.publish(ProductEvent::AddProduct {
                product_id: ProductId(i),
                images: vec![ProductAttributes::new(ProductId(i), 1, 1, 1, url)],
            });
        }
        topology.wait_for_freshness(Duration::from_secs(30));
        assert!(topology.index(0, 0).has_pq());
        // Exact-image query through the compressed path still self-matches
        // (the rerank stage restores exact distances).
        let resp = topology
            .search(SearchQuery::by_image_url("u7", 1).with_compressed())
            .unwrap();
        assert_eq!(resp.results[0].hit.url, "u7");
        assert!(resp.results[0].hit.distance < 1e-6);
        // A compressed-mode rebuild round-trips the PQ config too.
        let report = topology.rebuild_partition(0);
        assert!(report.snapshot_bytes > 0);
        assert!(topology.index(0, 0).has_pq(), "PQ survives the hot swap");
        let resp = topology
            .search(SearchQuery::by_image_url("u7", 1).with_compressed())
            .unwrap();
        assert_eq!(resp.results[0].hit.url, "u7");
    }

    #[test]
    fn shared_query_cache_serves_repeat_queries() {
        let images = Arc::new(ImageStore::with_blob_len(64));
        let feature_db = Arc::new(FeatureDb::new());
        let extractor = Arc::new(CachingExtractor::new(
            FeatureExtractor::new(ExtractorConfig {
                dim: DIM,
                ..Default::default()
            }),
            CostModel::free(),
        ));
        let mut rng = Xoshiro256::seed_from(4);
        let training: Vec<Vector> = (0..32)
            .map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let topology = SearchTopology::build(
            TopologyConfig {
                index: IndexConfig {
                    dim: DIM,
                    num_lists: 2,
                    ..Default::default()
                },
                num_partitions: 2,
                num_broker_groups: 1,
                query_cache_capacity: Some(8),
                ..Default::default()
            },
            extractor,
            Arc::clone(&images),
            feature_db,
            &training,
            MessageQueue::new(),
        );
        images.put_synthetic("popular", 3);
        for _ in 0..5 {
            let _ = topology
                .search(SearchQuery::by_image_url("popular", 1))
                .unwrap();
        }
        let stats = topology.query_cache_stats().expect("cache enabled");
        assert_eq!(stats.misses, 1, "first query extracts");
        assert_eq!(stats.hits, 4, "repeats hit the cache");
    }

    fn durable_world(dir: &std::path::Path, images: &Arc<ImageStore>) -> SearchTopology {
        durable_world_with(dir, images, |_| {})
    }

    fn durable_world_with(
        dir: &std::path::Path,
        images: &Arc<ImageStore>,
        tweak: impl FnOnce(&mut DurabilityOptions),
    ) -> SearchTopology {
        let feature_db = Arc::new(FeatureDb::new());
        let extractor = Arc::new(CachingExtractor::new(
            FeatureExtractor::new(ExtractorConfig {
                dim: DIM,
                ..Default::default()
            }),
            CostModel::free(),
        ));
        let mut rng = Xoshiro256::seed_from(2);
        let training: Vec<Vector> = (0..64)
            .map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let config = TopologyConfig {
            index: IndexConfig {
                dim: DIM,
                num_lists: 4,
                nprobe: 4,
                ..Default::default()
            },
            num_partitions: 2,
            replicas_per_partition: 1,
            num_broker_groups: 1,
            ranking: RankingPolicy::similarity_only(),
            ..Default::default()
        };
        let mut options = DurabilityOptions::new(dir);
        options.segment_max_bytes = 512; // force rotations in tests
        tweak(&mut options);
        SearchTopology::build_durable(
            config,
            extractor,
            Arc::clone(images),
            feature_db,
            &training,
            options,
        )
        .unwrap()
    }

    fn durable_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("jdvs-topo-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_topology_survives_restart_without_checkpoint() {
        let dir = durable_dir("restart");
        let images = Arc::new(ImageStore::with_blob_len(64));
        {
            let mut t = durable_world(&dir, &images);
            for i in 0..25u64 {
                t.publish(add_event_for(&images, i));
            }
            t.wait_for_freshness(Duration::from_secs(30));
            assert_eq!(t.ops_report().logical_valid_images(), 25);
            t.shutdown();
        }
        // Second life: cold recovery replays the whole log.
        let mut t = durable_world(&dir, &images);
        let reports = t.recovery_reports().unwrap();
        assert_eq!(reports.len(), 2, "one per partition replica");
        assert!(reports.iter().all(|r| !r.from_snapshot));
        assert_eq!(
            reports.iter().map(|r| r.replayed).sum::<u64>(),
            50,
            "each replica replays all 25 events (partition filter applies)"
        );
        assert_eq!(t.ops_report().logical_valid_images(), 25);
        let resp = t.search(SearchQuery::by_image_url("u7", 1)).unwrap();
        assert_eq!(resp.results[0].hit.url, "u7");
        t.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_recovery_replays_only_the_suffix_and_prunes() {
        let dir = durable_dir("ckpt");
        let images = Arc::new(ImageStore::with_blob_len(64));
        {
            let mut t = durable_world(&dir, &images);
            for i in 0..30u64 {
                t.publish(add_event_for(&images, i));
            }
            t.wait_for_freshness(Duration::from_secs(30));
            let r0 = t.checkpoint_partition(0).unwrap();
            let r1 = t.checkpoint_partition(1).unwrap();
            assert_eq!(r0.applied_offset, 30);
            assert_eq!(r1.applied_offset, 30);
            assert!(r1.snapshot_bytes > 0);
            assert!(
                r1.segments_pruned > 0,
                "both partitions checkpointed at 30; prefix reclaimable"
            );
            // 10 more events after the checkpoints.
            for i in 30..40u64 {
                t.publish(add_event_for(&images, i));
            }
            t.wait_for_freshness(Duration::from_secs(30));
            t.shutdown();
        }
        let mut t = durable_world(&dir, &images);
        let reports = t.recovery_reports().unwrap().to_vec();
        assert!(reports.iter().all(|r| r.from_snapshot));
        for r in &reports {
            assert_eq!(r.start_offset, 30, "replay starts at the watermark");
            assert_eq!(r.replayed, 10, "only the suffix replays");
        }
        assert_eq!(t.ops_report().logical_valid_images(), 40);
        let resp = t.search(SearchQuery::by_image_url("u35", 1)).unwrap();
        assert_eq!(resp.results[0].hit.url, "u35");
        // Watermarks surface in the ops report.
        let ops = t.ops_report();
        assert!(ops.partitions.iter().all(|p| p.applied_offset == 40));
        assert!(ops.durability.is_some());
        t.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn background_scheduler_checkpoints_on_exposure() {
        let dir = durable_dir("sched");
        let images = Arc::new(ImageStore::with_blob_len(64));
        {
            let mut t = durable_world_with(&dir, &images, |o| {
                *o = o.clone().with_checkpoint_exposure(5);
            });
            assert_eq!(t.checkpoint_watermark(0), None, "no checkpoint yet");
            for i in 0..30u64 {
                t.publish(add_event_for(&images, i));
            }
            t.wait_for_freshness(Duration::from_secs(30));
            // Both partitions' applied watermarks are at 30 with no
            // checkpoint — replay exposure 30 > 5 — so the scheduler must
            // checkpoint each down to exposure ≤ 5 without any
            // checkpoint_partition call from us.
            let deadline = std::time::Instant::now() + Duration::from_secs(20);
            loop {
                let caught_up = (0..2).all(|p| t.checkpoint_watermark(p).is_some_and(|w| w >= 25));
                if caught_up {
                    break;
                }
                assert!(
                    std::time::Instant::now() < deadline,
                    "scheduler never brought exposure under the bound: {:?}",
                    (t.checkpoint_watermark(0), t.checkpoint_watermark(1))
                );
                std::thread::sleep(Duration::from_millis(5));
            }
            t.shutdown();
        }
        // Recovery starts from the scheduled checkpoints, not offset 0.
        let mut t = durable_world(&dir, &images);
        let reports = t.recovery_reports().unwrap();
        assert!(reports.iter().all(|r| r.from_snapshot));
        assert!(reports.iter().all(|r| r.start_offset >= 25));
        assert_eq!(t.ops_report().logical_valid_images(), 30);
        t.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn background_scheduler_compacts_hot_key_churn() {
        let dir = durable_dir("compact");
        let images = Arc::new(ImageStore::with_blob_len(64));
        {
            let mut t = durable_world_with(&dir, &images, |o| {
                *o = o.clone().with_log_compaction(0.5);
            });
            // Re-add the same 3 products over and over: most log frames
            // are superseded, pushing the blanked-frame estimate over the
            // threshold — the scheduler must compact without any operator
            // call.
            for i in 0..40u64 {
                t.publish(add_event_for(&images, i % 3));
            }
            t.wait_for_freshness(Duration::from_secs(30));
            let metrics = Arc::clone(t.durability_metrics().unwrap());
            let deadline = std::time::Instant::now() + Duration::from_secs(20);
            while metrics.compaction_events_dropped.get() == 0 {
                assert!(
                    std::time::Instant::now() < deadline,
                    "scheduler never compacted the hot-key churn"
                );
                std::thread::sleep(Duration::from_millis(5));
            }
            assert!(metrics.log_compactions.get() >= 1);
            // Serving is unaffected: the catalog still has 3 live images.
            assert_eq!(t.ops_report().logical_valid_images(), 3);
            t.shutdown();
        }
        // Restart: replay over the tombstoned log reproduces the same
        // catalog (offsets preserved, superseded frames apply as no-ops).
        let mut t = durable_world(&dir, &images);
        assert_eq!(t.ops_report().logical_valid_images(), 3);
        let resp = t.search(SearchQuery::by_image_url("u1", 1)).unwrap();
        assert_eq!(resp.results[0].hit.url, "u1");
        t.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_checkpoints_under_load_stay_consistent() {
        let dir = durable_dir("conc");
        let images = Arc::new(ImageStore::with_blob_len(64));
        {
            let mut t = durable_world(&dir, &images);
            for i in 0..10u64 {
                t.publish(add_event_for(&images, i));
            }
            t.wait_for_freshness(Duration::from_secs(30));
            // Checkpoint both partitions from racing threads while a third
            // keeps publishing: the maintenance mutex must serialize them,
            // so neither resumes indexing under the other's snapshot.
            std::thread::scope(|s| {
                let topo = &t;
                let imgs = &images;
                s.spawn(move || {
                    for i in 10..40u64 {
                        topo.publish(add_event_for(imgs, i));
                    }
                });
                let c0 = s.spawn(move || topo.checkpoint_partition(0).unwrap());
                let c1 = s.spawn(move || topo.checkpoint_partition(1).unwrap());
                let r0 = c0.join().unwrap();
                let r1 = c1.join().unwrap();
                assert!(r0.applied_offset >= 10);
                assert!(r1.applied_offset >= 10);
            });
            t.wait_for_freshness(Duration::from_secs(30));
            t.shutdown();
        }
        // Restart: recovery from the racing checkpoints must reproduce the
        // full 40-event corpus exactly.
        let mut t = durable_world(&dir, &images);
        assert_eq!(t.ops_report().logical_valid_images(), 40);
        let resp = t.search(SearchQuery::by_image_url("u33", 1)).unwrap();
        assert_eq!(resp.results[0].hit.url, "u33");
        t.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn add_event_for(images: &Arc<ImageStore>, product: u64) -> ProductEvent {
        let url = format!("u{product}");
        images.put_synthetic(&url, product % 5);
        ProductEvent::AddProduct {
            product_id: ProductId(product),
            images: vec![ProductAttributes::new(ProductId(product), 1, 100, 1, url)],
        }
    }

    #[test]
    #[should_panic(expected = "more broker groups")]
    fn invalid_config_panics() {
        TopologyConfig {
            num_partitions: 1,
            num_broker_groups: 2,
            ..Default::default()
        }
        .validate();
    }

    /// Top-1 probe over a url set: (query url, hit url, exact distance
    /// bits) — bit-comparable across rebuilds.
    fn probe(t: &SearchTopology, urls: impl Iterator<Item = u64>) -> Vec<(String, String, u32)> {
        urls.map(|i| {
            let url = format!("u{i}");
            let resp = t.search(SearchQuery::by_image_url(&url, 1)).unwrap();
            let top = &resp.results[0].hit;
            (url, top.url.clone(), top.distance.to_bits())
        })
        .collect()
    }

    #[test]
    fn rebuild_after_checkpoint_prune_seeds_from_snapshot() {
        let dir = durable_dir("prune-rebuild");
        let images = Arc::new(ImageStore::with_blob_len(64));
        {
            let mut t = durable_world(&dir, &images);
            for i in 0..30u64 {
                t.publish(add_event_for(&images, i));
            }
            t.wait_for_freshness(Duration::from_secs(30));
            t.checkpoint_partition(0).unwrap();
            let r = t.checkpoint_partition(1).unwrap();
            assert!(r.segments_pruned > 0, "retention must reclaim the prefix");
            for i in 30..40u64 {
                t.publish(add_event_for(&images, i));
            }
            t.wait_for_freshness(Duration::from_secs(30));
            t.shutdown();
        }
        // Pruning reclaims disk segments; the surviving log only *starts*
        // above zero once the queue is rebuilt from them. Reopen to get a
        // life where the prefix is genuinely gone.
        let mut t = durable_world(&dir, &images);
        assert!(
            t.queue().base() > 0,
            "the log prefix is gone; a full-log rebuild would be impossible"
        );

        // The regression: rebuilding on a pruned log used to panic. Now it
        // seeds from the checkpoint and replays only the suffix — and the
        // search results afterwards are bit-identical.
        let before = probe(&t, 0..40);
        for p in 0..2 {
            let report = t.rebuild_partition(p);
            assert_eq!(
                report.messages_replayed, 10,
                "only the surviving suffix replays"
            );
            assert!(report.snapshot_bytes > 0);
        }
        assert_eq!(probe(&t, 0..40), before, "rebuild is bit-identical");
        // The seeded rebuild stamped the cut as the applied watermark, so a
        // follow-up checkpoint sees no phantom exposure.
        let r = t.checkpoint_partition(0).unwrap();
        assert_eq!(r.applied_offset, 40);
        t.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rebuild_of_a_fully_deleted_partition_swaps_in_an_empty_index() {
        let w = world(true);
        for i in 0..12u64 {
            w.topology.publish(add_event(&w, i));
        }
        // Fully delete one partition's key set.
        let map = w.topology.partition_map();
        let target = map.partition_of_url("u0");
        let mut deleted = Vec::new();
        for i in 0..12u64 {
            if map.partition_of_url(&format!("u{i}")) == target {
                deleted.push(i);
                w.topology.publish(ProductEvent::RemoveProduct {
                    product_id: ProductId(i),
                    urls: vec![format!("u{i}")],
                });
            }
        }
        w.topology.wait_for_freshness(Duration::from_secs(30));

        // The satellite regression: this used to panic ("no valid image
        // for this partition"); now it swaps in an empty index.
        let report = w.topology.rebuild_partition(target);
        assert_eq!(report.records_after, 0, "both replicas empty");
        assert!(report.records_before > 0, "tombstones were present before");
        let resp = w
            .topology
            .search(SearchQuery::by_image_url(format!("u{}", deleted[0]), 5))
            .unwrap();
        assert!(resp
            .results
            .iter()
            .all(|h| !deleted.contains(&h.hit.url[1..].parse().unwrap())));
        // Other partitions keep serving.
        let survivor = (0..12u64).find(|i| !deleted.contains(i)).unwrap();
        let resp = w
            .topology
            .search(SearchQuery::by_image_url(format!("u{survivor}"), 1))
            .unwrap();
        assert_eq!(resp.results[0].hit.url, format!("u{survivor}"));
    }

    #[test]
    fn bootstrap_replica_converges_and_serves() {
        let mut w = world(true);
        for i in 0..20u64 {
            w.topology.publish(add_event(&w, i));
        }
        w.topology.wait_for_freshness(Duration::from_secs(30));
        let report = w.topology.bootstrap_replica(0);
        assert_eq!(report.replica, 2, "joins after the two built-in replicas");
        assert!(!report.from_snapshot, "non-durable topologies seed cold");
        w.topology.wait_for_freshness(Duration::from_secs(30));
        // The new replica converged to the same corpus slice…
        assert_eq!(
            w.topology.index(0, 2).num_images(),
            w.topology.index(0, 0).num_images(),
            "bootstrapped replica owns the same records"
        );
        // …and actually serves once the original replicas die.
        w.topology.searcher_faults(0, 0).set_down(true);
        w.topology.searcher_faults(0, 1).set_down(true);
        let map = w.topology.partition_map();
        let owned = (0..20u64)
            .find(|i| map.partition_of_url(&format!("u{i}")) == 0)
            .expect("some url lands in partition 0");
        let resp = w
            .topology
            .search(SearchQuery::by_image_url(format!("u{owned}"), 1))
            .unwrap();
        assert_eq!(resp.results[0].hit.url, format!("u{owned}"));
        assert_eq!(
            (resp.partitions_ok, resp.partitions_total),
            (4, 4),
            "coverage identity holds with the bootstrapped replica serving"
        );
        // Live ingestion reaches the new replica too.
        w.topology.publish(add_event(&w, 777));
        w.topology.wait_for_freshness(Duration::from_secs(30));
        let resp = w
            .topology
            .search(SearchQuery::by_image_url("u777", 1))
            .unwrap();
        assert_eq!(resp.results[0].hit.url, "u777");
    }

    #[test]
    fn bootstrap_replica_seeds_from_checkpoint() {
        let dir = durable_dir("boot-seed");
        let images = Arc::new(ImageStore::with_blob_len(64));
        let mut t = durable_world(&dir, &images);
        for i in 0..30u64 {
            t.publish(add_event_for(&images, i));
        }
        t.wait_for_freshness(Duration::from_secs(30));
        t.checkpoint_partition(0).unwrap();
        for i in 30..40u64 {
            t.publish(add_event_for(&images, i));
        }
        t.wait_for_freshness(Duration::from_secs(30));
        let report = t.bootstrap_replica(0);
        assert!(report.from_snapshot);
        assert_eq!(report.seed_offset, 30, "tails from the watermark");
        assert_eq!(report.tailed, 10, "only the suffix applies");
        t.searcher_faults(0, 0).set_down(true);
        let map = t.partition_map();
        let owned = (0..40u64)
            .find(|i| map.partition_of_url(&format!("u{i}")) == 0)
            .unwrap();
        let resp = t
            .search(SearchQuery::by_image_url(format!("u{owned}"), 1))
            .unwrap();
        assert_eq!(resp.results[0].hit.url, format!("u{owned}"));
        // Checkpointing after the bootstrap still works (store state is
        // consistent under the serialized lifecycle ops).
        let r = t.checkpoint_partition(0).unwrap();
        assert_eq!(r.applied_offset, 40);
        t.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn split_partition_under_ingestion_loses_nothing() {
        let mut w = world(true);
        for i in 0..30u64 {
            w.topology.publish(add_event(&w, i));
        }
        w.topology.wait_for_freshness(Duration::from_secs(30));
        // Publish 30 more from another thread while the split runs: the
        // moved keys and the in-flight events must all survive.
        for i in 30..60u64 {
            w.images.put_synthetic(&format!("u{i}"), i % 5);
        }
        let queue = w.topology.queue().clone();
        let report = std::thread::scope(|s| {
            s.spawn(move || {
                for i in 30..60u64 {
                    let url = format!("u{i}");
                    queue.publish(ProductEvent::AddProduct {
                        product_id: ProductId(i),
                        images: vec![ProductAttributes::new(ProductId(i), 1, 100, 1, url)],
                    });
                }
            });
            w.topology.split_partition(0).unwrap()
        });
        assert_eq!(report.sibling, 4);
        assert!(!report.from_snapshot);
        w.topology.wait_for_freshness(Duration::from_secs(30));
        let map = w.topology.partition_map();
        assert_eq!(map.num_partitions(), 5);
        assert_eq!(map.broker_group_of(4), map.broker_group_of(0));
        // Zero lost updates: every one of the 60 urls is searchable, and
        // fan-outs cover all five partitions.
        for i in 0..60u64 {
            let url = format!("u{i}");
            let resp = w
                .topology
                .search(SearchQuery::by_image_url(&url, 1))
                .unwrap();
            assert_eq!(resp.results[0].hit.url, url, "u{i} lost by the split");
            assert_eq!(
                (resp.partitions_ok, resp.partitions_total),
                (5, 5),
                "coverage identity after the split"
            );
        }
        assert_eq!(w.topology.ops_report().logical_valid_images(), 60);
        // The parent really shed its upper half.
        let moved: Vec<u64> = (0..60)
            .filter(|&i| map.partition_of_url(&format!("u{i}")) == 4)
            .collect();
        assert!(!moved.is_empty(), "the split must move some keys");
        let parent = w.topology.index(0, 0);
        assert!(moved.iter().all(|i| parent
            .lookup(ImageKey::from_url(&format!("u{i}")))
            .is_none()));
    }

    #[test]
    fn split_survives_restart_with_post_split_checkpoints() {
        let dir = durable_dir("split-restart");
        let images = Arc::new(ImageStore::with_blob_len(64));
        {
            let mut t = durable_world(&dir, &images);
            for i in 0..30u64 {
                t.publish(add_event_for(&images, i));
            }
            t.wait_for_freshness(Duration::from_secs(30));
            t.checkpoint_partition(0).unwrap();
            t.checkpoint_partition(1).unwrap();
            for i in 30..40u64 {
                t.publish(add_event_for(&images, i));
            }
            t.wait_for_freshness(Duration::from_secs(30));
            let report = t.split_partition(0).unwrap();
            assert!(report.from_snapshot, "halves seed from the checkpoint");
            let sibling = report.sibling;
            t.wait_for_freshness(Duration::from_secs(30));
            // Satellite regression: checkpoint-during-split lifecycle — the
            // sibling's store was opened by the split and checkpoints work
            // immediately, as does re-checkpointing the narrowed parent.
            let rs = t.checkpoint_partition(sibling).unwrap();
            assert_eq!(rs.applied_offset, 40);
            assert!(t.checkpoint_watermark(sibling).is_some());
            let rp = t.checkpoint_partition(0).unwrap();
            assert_eq!(rp.applied_offset, 40);
            t.shutdown();
        }
        // Restart: the persisted partition map reconstructs the split
        // layout, so the narrowed post-split checkpoints are safe — no
        // moved key is lost.
        let mut t = durable_world(&dir, &images);
        assert_eq!(t.partition_map().num_partitions(), 3);
        assert_eq!(t.recovery_reports().unwrap().len(), 3);
        assert_eq!(t.ops_report().logical_valid_images(), 40);
        for i in 0..40u64 {
            let url = format!("u{i}");
            let resp = t.search(SearchQuery::by_image_url(&url, 1)).unwrap();
            assert_eq!(resp.results[0].hit.url, url, "u{i} lost across restart");
        }
        t.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scheduler_checkpoints_race_lifecycle_ops() {
        let dir = durable_dir("sched-race");
        let images = Arc::new(ImageStore::with_blob_len(64));
        {
            // A background scheduler with a tiny exposure bound checkpoints
            // continuously while bootstrap and split run — everything
            // serializes on the maintenance mutex.
            let mut t = durable_world_with(&dir, &images, |o| {
                *o = o.clone().with_checkpoint_exposure(5);
            });
            for i in 0..30u64 {
                t.publish(add_event_for(&images, i));
            }
            t.wait_for_freshness(Duration::from_secs(30));
            let boot = t.bootstrap_replica(0);
            assert_eq!(boot.replica, 1);
            for i in 30..50u64 {
                t.publish(add_event_for(&images, i));
            }
            t.split_partition(0).unwrap();
            for i in 50..60u64 {
                t.publish(add_event_for(&images, i));
            }
            t.wait_for_freshness(Duration::from_secs(30));
            assert_eq!(t.ops_report().logical_valid_images(), 60);
            t.shutdown();
        }
        let mut t = durable_world(&dir, &images);
        assert_eq!(t.ops_report().logical_valid_images(), 60);
        for i in 0..60u64 {
            let url = format!("u{i}");
            let resp = t.search(SearchQuery::by_image_url(&url, 1)).unwrap();
            assert_eq!(resp.results[0].hit.url, url);
        }
        t.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
