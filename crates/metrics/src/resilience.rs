//! Counters for the serving path's resilience layer.
//!
//! One [`ResilienceMetrics`] instance is shared (via `Arc`) by every
//! balancer, broker and blender of a serving stack, so a single snapshot
//! answers the operational questions degraded-mode serving raises: how
//! many queries were degraded, where the time went (timeouts vs. hard
//! failures), and how hard the failover machinery is working (retries,
//! hedges, breaker trips).

use crate::counter::Counter;

/// Shared error/degradation counters; all fields are thread-safe
/// monotonic [`Counter`]s.
#[derive(Debug, Default)]
pub struct ResilienceMetrics {
    /// User queries executed by blenders.
    pub queries_total: Counter,
    /// Queries whose response covered fewer partitions than the total
    /// (`partitions_ok < partitions_total`).
    pub queries_degraded: Counter,
    /// Queries whose deadline budget was exhausted before fan-out.
    pub queries_budget_exhausted: Counter,
    /// Partition fan-out calls that timed out.
    pub partitions_timed_out: Counter,
    /// Partition fan-out calls that failed for a non-timeout reason.
    pub partitions_failed: Counter,
    /// Partition fan-out calls rejected by a downstream admission
    /// controller (`Overloaded`) — deliberate load shedding, counted
    /// apart from failures so availability math never conflates "we chose
    /// to reject fast" with "a partition died".
    pub partitions_shed: Counter,
    /// Individual replica calls rejected with `Overloaded` as observed by
    /// balancers (also included in `call_failures`).
    pub calls_overloaded: Counter,
    /// Individual replica call failures observed by balancers.
    pub call_failures: Counter,
    /// Extra failover rotations taken after a fully-failed pass.
    pub retries: Counter,
    /// Hedged (second) attempts launched for straggling calls.
    pub hedges_launched: Counter,
    /// Calls won by a result arriving after the hedge was launched.
    pub hedges_won: Counter,
    /// Circuit-breaker closed→open transitions.
    pub breaker_opens: Counter,
}

impl ResilienceMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Plain-value snapshot of every counter.
    pub fn snapshot(&self) -> ResilienceSnapshot {
        ResilienceSnapshot {
            queries_total: self.queries_total.get(),
            queries_degraded: self.queries_degraded.get(),
            queries_budget_exhausted: self.queries_budget_exhausted.get(),
            partitions_timed_out: self.partitions_timed_out.get(),
            partitions_failed: self.partitions_failed.get(),
            partitions_shed: self.partitions_shed.get(),
            calls_overloaded: self.calls_overloaded.get(),
            call_failures: self.call_failures.get(),
            retries: self.retries.get(),
            hedges_launched: self.hedges_launched.get(),
            hedges_won: self.hedges_won.get(),
            breaker_opens: self.breaker_opens.get(),
        }
    }
}

/// Point-in-time values of a [`ResilienceMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResilienceSnapshot {
    /// See [`ResilienceMetrics::queries_total`].
    pub queries_total: u64,
    /// See [`ResilienceMetrics::queries_degraded`].
    pub queries_degraded: u64,
    /// See [`ResilienceMetrics::queries_budget_exhausted`].
    pub queries_budget_exhausted: u64,
    /// See [`ResilienceMetrics::partitions_timed_out`].
    pub partitions_timed_out: u64,
    /// See [`ResilienceMetrics::partitions_failed`].
    pub partitions_failed: u64,
    /// See [`ResilienceMetrics::partitions_shed`].
    pub partitions_shed: u64,
    /// See [`ResilienceMetrics::calls_overloaded`].
    pub calls_overloaded: u64,
    /// See [`ResilienceMetrics::call_failures`].
    pub call_failures: u64,
    /// See [`ResilienceMetrics::retries`].
    pub retries: u64,
    /// See [`ResilienceMetrics::hedges_launched`].
    pub hedges_launched: u64,
    /// See [`ResilienceMetrics::hedges_won`].
    pub hedges_won: u64,
    /// See [`ResilienceMetrics::breaker_opens`].
    pub breaker_opens: u64,
}

impl ResilienceSnapshot {
    /// Fraction of queries that were degraded (`0.0` when none ran).
    pub fn degraded_ratio(&self) -> f64 {
        if self.queries_total == 0 {
            0.0
        } else {
            self.queries_degraded as f64 / self.queries_total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let m = ResilienceMetrics::new();
        m.queries_total.add(10);
        m.queries_degraded.add(2);
        m.retries.incr();
        m.breaker_opens.incr();
        let s = m.snapshot();
        assert_eq!(s.queries_total, 10);
        assert_eq!(s.queries_degraded, 2);
        assert_eq!(s.retries, 1);
        assert_eq!(s.breaker_opens, 1);
        assert_eq!(s.hedges_launched, 0);
        assert!((s.degraded_ratio() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn degraded_ratio_handles_zero_queries() {
        assert_eq!(ResilienceSnapshot::default().degraded_ratio(), 0.0);
    }

    #[test]
    fn metrics_are_shareable_across_threads() {
        use std::sync::Arc;
        let m = Arc::new(ResilienceMetrics::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        m.queries_total.incr();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(m.snapshot().queries_total, 400);
    }
}
