//! Hourly time series.
//!
//! Figure 11 plots per-hour data over one day: update/add/delete counts in
//! 11(a) and per-hour latency statistics in 11(b). [`HourlySeries`] buckets
//! samples by simulated hour-of-day and exposes exactly those views.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::histogram::Histogram;

/// Hours in a simulated day.
pub const HOURS_PER_DAY: usize = 24;

/// Per-hour sample accumulator: a count and a latency histogram per hour.
///
/// # Example
///
/// ```
/// use jdvs_metrics::HourlySeries;
///
/// let s = HourlySeries::new();
/// s.record(11, 132_000); // hour 11, 132 ms
/// s.record(11, 90_000);
/// assert_eq!(s.counts()[11], 2);
/// ```
#[derive(Debug, Default)]
pub struct HourlySeries {
    hours: [Mutex<Histogram>; HOURS_PER_DAY],
}

impl HourlySeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one event at `hour` (0–23) with latency `latency_us`.
    ///
    /// # Panics
    ///
    /// Panics if `hour >= 24`.
    pub fn record(&self, hour: usize, latency_us: u64) {
        assert!(hour < HOURS_PER_DAY, "hour out of range: {hour}");
        self.hours[hour].lock().record_us(latency_us);
    }

    /// Event count per hour — the bars of Figure 11(a).
    pub fn counts(&self) -> [u64; HOURS_PER_DAY] {
        let mut out = [0u64; HOURS_PER_DAY];
        for (o, h) in out.iter_mut().zip(&self.hours) {
            *o = h.lock().count();
        }
        out
    }

    /// `(mean, p90, p99)` latency in µs per hour — the lines of Fig. 11(b).
    /// Hours with no samples report zeros.
    pub fn latency_stats(&self) -> [(f64, u64, u64); HOURS_PER_DAY] {
        let mut out = [(0.0, 0, 0); HOURS_PER_DAY];
        for (o, h) in out.iter_mut().zip(&self.hours) {
            let hist = h.lock();
            *o = (
                hist.mean_us(),
                hist.percentile_us(0.90),
                hist.percentile_us(0.99),
            );
        }
        out
    }

    /// Snapshot of one hour's full histogram.
    ///
    /// # Panics
    ///
    /// Panics if `hour >= 24`.
    pub fn hour_histogram(&self, hour: usize) -> Histogram {
        assert!(hour < HOURS_PER_DAY, "hour out of range: {hour}");
        self.hours[hour].lock().clone()
    }

    /// Merges all hours into a single whole-day histogram (the paper's
    /// "average over 24 hours" figures).
    pub fn day_histogram(&self) -> Histogram {
        let mut total = Histogram::new();
        for h in &self.hours {
            total.merge(&h.lock());
        }
        total
    }

    /// Total events across the whole day.
    pub fn total(&self) -> u64 {
        self.hours.iter().map(|h| h.lock().count()).sum()
    }

    /// Hour with the most events (ties break to the earliest hour) — used to
    /// verify the peak placement of Figure 11(a).
    pub fn peak_hour(&self) -> usize {
        let counts = self.counts();
        let mut best = 0usize;
        for (h, &c) in counts.iter().enumerate() {
            if c > counts[best] {
                best = h;
            }
        }
        best
    }
}

/// A plain, serializable per-hour breakdown for experiment reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HourlyReport {
    /// Event count per hour.
    pub counts: Vec<u64>,
    /// Mean latency (µs) per hour.
    pub mean_us: Vec<f64>,
    /// 90th percentile latency (µs) per hour.
    pub p90_us: Vec<u64>,
    /// 99th percentile latency (µs) per hour.
    pub p99_us: Vec<u64>,
}

impl From<&HourlySeries> for HourlyReport {
    fn from(s: &HourlySeries) -> Self {
        let stats = s.latency_stats();
        Self {
            counts: s.counts().to_vec(),
            mean_us: stats.iter().map(|t| t.0).collect(),
            p90_us: stats.iter().map(|t| t.1).collect(),
            p99_us: stats.iter().map(|t| t.2).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_their_hour() {
        let s = HourlySeries::new();
        s.record(0, 10);
        s.record(23, 20);
        s.record(23, 30);
        let counts = s.counts();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[23], 2);
        assert_eq!(s.total(), 3);
    }

    #[test]
    #[should_panic(expected = "hour out of range")]
    fn hour_24_panics() {
        HourlySeries::new().record(24, 1);
    }

    #[test]
    fn peak_hour_finds_maximum() {
        let s = HourlySeries::new();
        for _ in 0..5 {
            s.record(11, 1);
        }
        for _ in 0..3 {
            s.record(4, 1);
        }
        assert_eq!(s.peak_hour(), 11);
    }

    #[test]
    fn peak_hour_of_empty_series_is_zero() {
        assert_eq!(HourlySeries::new().peak_hour(), 0);
    }

    #[test]
    fn day_histogram_merges_all_hours() {
        let s = HourlySeries::new();
        s.record(1, 100);
        s.record(2, 200);
        s.record(3, 300);
        let day = s.day_histogram();
        assert_eq!(day.count(), 3);
        assert_eq!(day.min_us(), 100);
        assert_eq!(day.max_us(), 300);
    }

    #[test]
    fn latency_stats_shape() {
        let s = HourlySeries::new();
        for v in [100u64, 200, 300, 400] {
            s.record(7, v);
        }
        let stats = s.latency_stats();
        let (mean, p90, p99) = stats[7];
        assert!((mean - 250.0).abs() < 1e-9);
        assert!(p90 >= 300);
        assert!(p99 >= p90);
        assert_eq!(stats[8], (0.0, 0, 0));
    }

    #[test]
    fn report_conversion_round_trips_counts() {
        let s = HourlySeries::new();
        s.record(5, 50);
        let report = HourlyReport::from(&s);
        assert_eq!(report.counts.len(), HOURS_PER_DAY);
        assert_eq!(report.counts[5], 1);
        assert_eq!(report.mean_us[5], 50.0);
    }

    #[test]
    fn concurrent_recording() {
        use std::sync::Arc;
        let s = Arc::new(HourlySeries::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        s.record((t * 6 + (i % 6) as usize) % 24, i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.total(), 4_000);
    }
}
