//! Property-based tests for jdvs-core: snapshot persistence, the PQ code
//! store, the swap handle and whole-index invariants under random event
//! sequences.

// These tests drive real OS threads; skip them under `--cfg loom`
// model builds (crates/core/tests/loom.rs owns that configuration).
#![cfg(not(loom))]

use std::sync::Arc;

use proptest::prelude::*;

use jdvs_core::ids::ImageId;
use jdvs_core::search;
use jdvs_core::swap::IndexHandle;
use jdvs_core::{persist, FilterSpec, IndexConfig, VisualIndex};
use jdvs_storage::model::{ImageKey, ProductAttributes, ProductId};
use jdvs_vector::rng::Xoshiro256;
use jdvs_vector::{Kmeans, KmeansConfig, Vector};

const DIM: usize = 6;

fn base_index() -> VisualIndex {
    VisualIndex::bootstrap(
        IndexConfig {
            dim: DIM,
            num_lists: 3,
            initial_list_capacity: 2,
            nprobe: 3,
            ..Default::default()
        },
        &[
            Vector::from(vec![0.0; DIM]),
            Vector::from(vec![1.0; DIM]),
            Vector::from(vec![-1.0; DIM]),
        ],
    )
}

/// A random mutation against a pool of `n` potential products.
#[derive(Debug, Clone)]
enum Op {
    Insert(u8, [i8; DIM]),
    Delete(u8),
    Update(u8, u32),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<[i8; DIM]>()).prop_map(|(p, v)| Op::Insert(p, v)),
        any::<u8>().prop_map(Op::Delete),
        (any::<u8>(), any::<u32>()).prop_map(|(p, s)| Op::Update(p, s)),
    ]
}

fn url_of(p: u8) -> String {
    format!("prop/u{p}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the mutation sequence, the index agrees with a trivial
    /// model: valid set, attributes, and searchability of valid images.
    #[test]
    fn index_matches_model_under_random_ops(ops in prop::collection::vec(op(), 1..60)) {
        let index = base_index();
        // model: product -> (sales, valid)
        let mut model: std::collections::HashMap<u8, (u64, bool)> =
            std::collections::HashMap::new();
        for op in &ops {
            match op {
                Op::Insert(p, v) => {
                    let attrs =
                        ProductAttributes::new(ProductId(u64::from(*p)), 1, 2, 3, url_of(*p));
                    let vector =
                        Vector::from(v.iter().map(|&x| f32::from(x)).collect::<Vec<_>>());
                    let outcome = index.upsert(attrs, || Some(vector)).unwrap();
                    let entry = model.entry(*p).or_insert((1, true));
                    entry.1 = true;
                    if outcome.reused() {
                        entry.0 = 1; // upsert refreshes attrs to sales=1
                    } else {
                        *entry = (1, true);
                    }
                }
                Op::Delete(p) => {
                    let key = ImageKey::from_url(&url_of(*p));
                    let result = index.invalidate(key, &url_of(*p));
                    prop_assert_eq!(result.is_ok(), model.contains_key(p));
                    if let Some(e) = model.get_mut(p) {
                        e.1 = false;
                    }
                }
                Op::Update(p, sales) => {
                    let key = ImageKey::from_url(&url_of(*p));
                    let result =
                        index.update_numeric(key, &url_of(*p), Some(u64::from(*sales)), None, None);
                    prop_assert_eq!(result.is_ok(), model.contains_key(p));
                    if let Some(e) = model.get_mut(p) {
                        e.0 = u64::from(*sales);
                    }
                }
            }
        }
        index.flush();
        let valid_expected = model.values().filter(|(_, v)| *v).count();
        prop_assert_eq!(index.valid_images(), valid_expected);
        prop_assert_eq!(index.num_images(), model.len());
        for (p, (sales, valid)) in &model {
            let id = index.lookup(ImageKey::from_url(&url_of(*p))).expect("inserted");
            prop_assert_eq!(index.is_valid(id), *valid);
            prop_assert_eq!(&index.attributes(id).unwrap().sales, sales);
        }
    }

    /// Snapshot round trip preserves the whole observable state for any
    /// mutation sequence.
    #[test]
    fn persist_round_trip_under_random_ops(ops in prop::collection::vec(op(), 1..40)) {
        let index = base_index();
        for op in &ops {
            match op {
                Op::Insert(p, v) => {
                    let attrs =
                        ProductAttributes::new(ProductId(u64::from(*p)), 1, 2, 3, url_of(*p));
                    let vector =
                        Vector::from(v.iter().map(|&x| f32::from(x)).collect::<Vec<_>>());
                    let _ = index.upsert(attrs, || Some(vector));
                }
                Op::Delete(p) => {
                    let _ = index.invalidate(ImageKey::from_url(&url_of(*p)), &url_of(*p));
                }
                Op::Update(p, sales) => {
                    let _ = index.update_numeric(
                        ImageKey::from_url(&url_of(*p)),
                        &url_of(*p),
                        Some(u64::from(*sales)),
                        None,
                        None,
                    );
                }
            }
        }
        index.flush();
        let restored = persist::load(&persist::save(&index)).expect("round trip");
        prop_assert_eq!(restored.num_images(), index.num_images());
        prop_assert_eq!(restored.valid_images(), index.valid_images());
        for raw in 0..index.num_images() {
            let id = ImageId(raw as u32);
            prop_assert_eq!(restored.attributes(id).unwrap(), index.attributes(id).unwrap());
            prop_assert_eq!(restored.is_valid(id), index.is_valid(id));
            prop_assert_eq!(restored.features(id), index.features(id));
        }
    }

    /// Swapping through an IndexHandle never tears: a reader sees either
    /// the full old state or the full new state.
    #[test]
    fn handle_swaps_are_atomic(n_swaps in 1usize..10) {
        let handle = IndexHandle::new(Arc::new(base_index()));
        for gen in 0..n_swaps {
            let fresh = base_index();
            for i in 0..=gen {
                fresh
                    .insert(
                        Vector::from(vec![i as f32; DIM]),
                        ProductAttributes::new(
                            ProductId(i as u64),
                            gen as u64,
                            0,
                            0,
                            format!("g{gen}/u{i}"),
                        ),
                    )
                    .unwrap();
            }
            fresh.flush();
            handle.swap(Arc::new(fresh));
            let snapshot = handle.get();
            // A snapshot is internally consistent: all its records belong
            // to the same generation.
            prop_assert_eq!(snapshot.num_images(), gen + 1);
            for raw in 0..snapshot.num_images() {
                let attrs = snapshot.attributes(ImageId(raw as u32)).unwrap();
                prop_assert_eq!(attrs.sales, gen as u64);
            }
        }
        prop_assert_eq!(handle.generation(), n_swaps as u64);
    }

    /// The block/parallel execution engine returns *exactly* the reference
    /// scan's results — same ids, same distances, same order — on random
    /// indexes with random deletions, for every nprobe and thread budget.
    /// Both paths use the same dispatched kernel, so equality is bit-exact
    /// rather than within-tolerance.
    #[test]
    fn engine_matches_reference_on_random_indexes(
        seed in any::<u64>(),
        n in 50usize..400,
        num_lists in 2usize..9,
        nprobe in 1usize..9,
        delete_every in 2usize..10,
        threads in 1usize..5,
    ) {
        let mut rng = Xoshiro256::seed_from(seed);
        let data: Vec<Vector> = (0..n)
            .map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let index = VisualIndex::bootstrap(
            IndexConfig {
                dim: DIM,
                num_lists,
                initial_list_capacity: 4,
                ..Default::default()
            },
            &data,
        );
        for (i, v) in data.iter().enumerate() {
            index
                .insert(
                    v.clone(),
                    ProductAttributes::new(ProductId(i as u64), 0, 0, 0, format!("diff/u{i}")),
                )
                .unwrap();
        }
        index.flush();
        for i in (0..n).step_by(delete_every) {
            let url = format!("diff/u{i}");
            index.invalidate(ImageKey::from_url(&url), &url).unwrap();
        }
        for q in data.iter().take(5) {
            let engine =
                search::ann_search_with_threads(&index, q.as_slice(), 10, nprobe, threads);
            let reference = search::ann_search_reference(&index, q.as_slice(), 10, nprobe);
            prop_assert_eq!(&engine, &reference, "ann nprobe={} threads={}", nprobe, threads);
            let exhaustive = search::brute_force(&index, q.as_slice(), 10);
            let exhaustive_ref = search::brute_force_reference(&index, q.as_slice(), 10);
            prop_assert_eq!(&exhaustive, &exhaustive_ref);
            // Deleted ids never appear in either path.
            for hit in engine.iter().chain(exhaustive.iter()) {
                prop_assert!(index.is_valid(ImageId(hit.id as u32)));
            }
        }
    }

    /// The batched `MultiQuery` engine returns, for every member of a
    /// random batch (random sizes, mixed per-member k/nprobe, random
    /// deletions), the *exact* result of the sequential per-id reference —
    /// on both the 4-bit fast-scan and the raw path. Runs on the native
    /// and (in CI) the forced-scalar kernel set.
    #[test]
    fn multi_query_batch_matches_reference_per_member(
        seed in any::<u64>(),
        n in 80usize..400,
        num_lists in 2usize..9,
        batch in 1usize..13,
        delete_every in 2usize..10,
    ) {
        let mut rng = Xoshiro256::seed_from(seed);
        let data: Vec<Vector> = (0..n)
            .map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let index = VisualIndex::bootstrap(
            IndexConfig {
                dim: DIM,
                num_lists,
                initial_list_capacity: 4,
                pq_subspaces: Some(DIM),
                pq_bits: 4,
                ..Default::default()
            },
            &data,
        );
        for (i, v) in data.iter().enumerate() {
            index
                .insert(
                    v.clone(),
                    ProductAttributes::new(ProductId(i as u64), 0, 0, 0, format!("mq/u{i}")),
                )
                .unwrap();
        }
        index.flush();
        for i in (0..n).step_by(delete_every) {
            let url = format!("mq/u{i}");
            index.invalidate(ImageKey::from_url(&url), &url).unwrap();
        }
        let queries: Vec<search::MultiQuery<'_>> = data
            .iter()
            .take(batch)
            .enumerate()
            .map(|(i, q)| search::MultiQuery {
                features: q.as_slice(),
                k: 1 + i % 10,
                nprobe: 1 + (seed as usize + i) % num_lists,
                filter: None,
            })
            .collect();
        let compressed = search::multi_compressed_search(&index, &queries, 3);
        let raw = search::multi_ann_search(&index, &queries);
        for (q, (got_c, got_r)) in queries.iter().zip(compressed.iter().zip(raw.iter())) {
            let want_c =
                search::compressed_search_reference(&index, q.features, q.k, q.nprobe, 3);
            prop_assert_eq!(got_c, &want_c, "compressed k={} nprobe={}", q.k, q.nprobe);
            let want_r = search::ann_search_reference(&index, q.features, q.k, q.nprobe);
            prop_assert_eq!(got_r, &want_r, "raw k={} nprobe={}", q.k, q.nprobe);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The hierarchical coarse quantizer at an **exhaustive** beam
    /// (`beam ≥ k`, so the graph search drains its whole frontier) returns
    /// *exactly* the flat centroid scan's probe order — same lists, same
    /// order — across random dims, list counts, nprobe, and training
    /// balance factors. Both paths score with the same dispatched kernel,
    /// so equality is bit-exact. Runs on the native and (in CI) the
    /// forced-scalar kernel set.
    #[test]
    fn coarse_exhaustive_beam_matches_flat_assignment(
        seed in any::<u64>(),
        dim in 2usize..12,
        k in 2usize..48,
        nprobe in 1usize..10,
        n in 60usize..220,
        balance in prop_oneof![Just(0.0f64), Just(1.5f64), Just(3.0f64)],
    ) {
        let mut rng = Xoshiro256::seed_from(seed);
        let data: Vec<Vector> = (0..n)
            .map(|_| (0..dim).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let flat = Kmeans::train(&data, &KmeansConfig {
            k,
            max_iters: 6,
            tolerance: 1e-4,
            seed,
            balance_factor: balance,
        });
        // beam ≥ trained k makes the graph search exhaustive regardless
        // of nprobe; trained k may be below the requested k on tiny data.
        let graphed = flat.clone().with_coarse_graph(flat.k());
        let nprobe = nprobe.min(flat.k());
        for q in data.iter().take(6) {
            prop_assert_eq!(
                graphed.assign_multi(q.as_slice(), nprobe),
                flat.assign_multi(q.as_slice(), nprobe),
                "dim={} k={} nprobe={}", dim, flat.k(), nprobe
            );
            prop_assert_eq!(graphed.assign(q.as_slice()), flat.assign(q.as_slice()));
        }
    }
}

/// At a realistic **bounded** beam (the serving configuration, where the
/// graph search visits a fraction of the centroids), probe sets are no
/// longer guaranteed identical — but end-to-end search recall against the
/// flat-scan index must stay at parity. Deterministic seed; runs on the
/// native and (in CI) the forced-scalar kernel set.
#[test]
fn coarse_default_beam_recall_parity() {
    const N: usize = 2000;
    const K: usize = 10;
    let mut rng = Xoshiro256::seed_from(41);
    let data: Vec<Vector> = (0..N)
        .map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect())
        .collect();
    let build = |beam: usize| {
        let index = VisualIndex::bootstrap(
            IndexConfig {
                dim: DIM,
                num_lists: 64,
                initial_list_capacity: 8,
                nprobe: 16,
                coarse_beam_width: beam,
                ..Default::default()
            },
            &data,
        );
        for (i, v) in data.iter().enumerate() {
            index
                .insert(
                    v.clone(),
                    ProductAttributes::new(ProductId(i as u64), 0, 0, 0, format!("cr/u{i}")),
                )
                .unwrap();
        }
        index.flush();
        index
    };
    let flat = build(0);
    let graphed = build(16); // bounded: beam 16 over 64 lists
    let queries = 50;
    let mut overlap = 0usize;
    for q in data.iter().take(queries) {
        let want = search::ann_search(&flat, q.as_slice(), K, 16);
        let got = search::ann_search(&graphed, q.as_slice(), K, 16);
        let want_ids: std::collections::HashSet<u64> = want.iter().map(|h| h.id).collect();
        overlap += got.iter().filter(|h| want_ids.contains(&h.id)).count();
    }
    let recall = overlap as f64 / (queries * K) as f64;
    assert!(
        recall >= 0.95,
        "bounded-beam recall@{K} fell to {recall:.3} against the flat scan"
    );
}

/// The numeric-attribute view [`FilterSpec::matches`] checks, read back
/// through the public attributes API.
fn numeric_of(index: &VisualIndex, id: ImageId) -> jdvs_core::forward::NumericAttributes {
    let a = index.attributes(id).unwrap();
    jdvs_core::forward::NumericAttributes {
        product_id: a.product_id,
        sales: a.sales,
        price: a.price,
        praise: a.praise,
        category: a.category,
        in_stock: a.in_stock,
    }
}

/// A random filter over the attribute pattern laid down by
/// [`attr_index`]: categories 0..5, ~2/3 in stock, price/sales growing
/// with the insertion index — so generated specs span the whole
/// selectivity range from "admits everything" down to "admits nothing".
fn filter_spec() -> impl Strategy<Value = FilterSpec> {
    (
        prop_oneof![Just(None), (0u32..6).prop_map(Some)],
        any::<bool>(),
        prop_oneof![Just(None), (0u64..5_000).prop_map(Some)],
        prop_oneof![Just(None), (0u64..5_000).prop_map(Some)],
        prop_oneof![Just(None), (0u64..1_200).prop_map(Some)],
    )
        .prop_map(
            |(category, in_stock_only, price_min, price_max, min_sales)| FilterSpec {
                category,
                in_stock_only,
                price_min,
                price_max,
                min_sales,
            },
        )
}

/// Builds a random index whose products carry varied attributes, with
/// every `delete_every`-th image invalidated after insertion.
fn attr_index(
    data: &[Vector],
    num_lists: usize,
    delete_every: usize,
    pq_bits: Option<u8>,
    nprobe_escalation: usize,
) -> VisualIndex {
    let index = VisualIndex::bootstrap(
        IndexConfig {
            dim: DIM,
            num_lists,
            initial_list_capacity: 4,
            pq_subspaces: pq_bits.map(|_| DIM),
            pq_bits: pq_bits.unwrap_or(8),
            nprobe_escalation,
            ..Default::default()
        },
        data,
    );
    for (i, v) in data.iter().enumerate() {
        index
            .insert(
                v.clone(),
                ProductAttributes::new(
                    ProductId(i as u64),
                    (i * 3) as u64,
                    ((i % 100) * 50) as u64,
                    (i % 7) as u64,
                    format!("fp/u{i}"),
                )
                .with_category((i % 5) as u32)
                .with_stock(i % 3 != 0),
            )
            .unwrap();
    }
    index.flush();
    for i in (0..data.len()).step_by(delete_every) {
        let url = format!("fp/u{i}");
        index.invalidate(ImageKey::from_url(&url), &url).unwrap();
    }
    index
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Filter pushdown returns *exactly* the post-filter reference's
    /// results — same ids, distances, order — for random filters across
    /// the whole selectivity range, random deletions, every thread
    /// budget, with and without probe escalation. Runs on the native and
    /// (in CI) the forced-scalar kernel set.
    #[test]
    fn filtered_search_matches_post_filter_reference(
        seed in any::<u64>(),
        n in 80usize..400,
        num_lists in 2usize..9,
        nprobe in 1usize..9,
        delete_every in 2usize..10,
        threads in 1usize..5,
        escalation in prop_oneof![Just(0usize), 4usize..32],
        spec in filter_spec(),
    ) {
        let mut rng = Xoshiro256::seed_from(seed);
        let data: Vec<Vector> = (0..n)
            .map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let index = attr_index(&data, num_lists, delete_every, None, escalation);
        for q in data.iter().take(4) {
            let engine = search::filtered_ann_search_with_threads(
                &index, q.as_slice(), 10, nprobe, &spec, threads,
            );
            let reference =
                search::filtered_ann_search_reference(&index, q.as_slice(), 10, nprobe, &spec);
            prop_assert_eq!(
                &engine, &reference,
                "filtered nprobe={} threads={} esc={} spec={:?}",
                nprobe, threads, escalation, spec
            );
            for hit in &engine {
                let id = ImageId(hit.id as u32);
                prop_assert!(index.is_valid(id));
                prop_assert!(spec.matches(&numeric_of(&index, id)));
            }
        }
    }

    /// The compressed filtered paths (4-bit fast-scan mask pushdown and
    /// 8-bit per-code admission) match their post-filter reference
    /// bit-exactly, including the escalation schedule and exact rerank.
    #[test]
    fn filtered_compressed_matches_post_filter_reference(
        seed in any::<u64>(),
        n in 80usize..400,
        num_lists in 2usize..9,
        nprobe in 1usize..9,
        delete_every in 2usize..10,
        pq_bits in prop_oneof![Just(4u8), Just(8u8)],
        escalation in prop_oneof![Just(0usize), 4usize..32],
        spec in filter_spec(),
    ) {
        let mut rng = Xoshiro256::seed_from(seed);
        let data: Vec<Vector> = (0..n)
            .map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let index = attr_index(&data, num_lists, delete_every, Some(pq_bits), escalation);
        for q in data.iter().take(4) {
            let engine =
                search::filtered_compressed_search(&index, q.as_slice(), 10, nprobe, 3, &spec);
            let reference = search::filtered_compressed_search_reference(
                &index, q.as_slice(), 10, nprobe, 3, &spec,
            );
            prop_assert_eq!(
                &engine, &reference,
                "pq_bits={} nprobe={} esc={} spec={:?}",
                pq_bits, nprobe, escalation, spec
            );
            for hit in &engine {
                let id = ImageId(hit.id as u32);
                prop_assert!(index.is_valid(id));
                prop_assert!(spec.matches(&numeric_of(&index, id)));
            }
        }
    }

    /// The batched engine with *distinct per-member filters* (including
    /// unfiltered members in the same batch) returns each member's exact
    /// sequential filtered result — on both the 4-bit fast-scan and raw
    /// legs.
    #[test]
    fn multi_filtered_batch_matches_reference_per_member(
        seed in any::<u64>(),
        n in 80usize..400,
        num_lists in 2usize..9,
        batch in 1usize..10,
        delete_every in 2usize..10,
        escalation in prop_oneof![Just(0usize), 4usize..32],
        specs in prop::collection::vec(prop_oneof![Just(None), filter_spec().prop_map(Some)], 10),
    ) {
        let mut rng = Xoshiro256::seed_from(seed);
        let data: Vec<Vector> = (0..n)
            .map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let index = attr_index(&data, num_lists, delete_every, Some(4), escalation);
        let queries: Vec<search::MultiQuery<'_>> = data
            .iter()
            .take(batch)
            .enumerate()
            .map(|(i, q)| search::MultiQuery {
                features: q.as_slice(),
                k: 1 + i % 10,
                nprobe: 1 + (seed as usize + i) % num_lists,
                filter: specs[i].as_ref(),
            })
            .collect();
        let compressed = search::multi_compressed_search(&index, &queries, 3);
        let raw = search::multi_ann_search(&index, &queries);
        for (q, (got_c, got_r)) in queries.iter().zip(compressed.iter().zip(raw.iter())) {
            let (want_c, want_r) = match q.filter {
                Some(spec) => (
                    search::filtered_compressed_search_reference(
                        &index, q.features, q.k, q.nprobe, 3, spec,
                    ),
                    search::filtered_ann_search_reference(
                        &index, q.features, q.k, q.nprobe, spec,
                    ),
                ),
                None => (
                    search::compressed_search_reference(&index, q.features, q.k, q.nprobe, 3),
                    search::ann_search_reference(&index, q.features, q.k, q.nprobe),
                ),
            };
            prop_assert_eq!(got_c, &want_c, "compressed k={} filter={:?}", q.k, q.filter);
            prop_assert_eq!(got_r, &want_r, "raw k={} filter={:?}", q.k, q.filter);
        }
    }
}
