//! The PQ fast-scan experiment: 4-bit interleaved blocks with
//! register-resident SIMD lookup tables vs the classic 8-bit ADC scan.
//!
//! Both variants spend the same 8 bytes per code over the same data
//! (8-bit × 8 subspaces vs 4-bit × 16 subspaces at dim 64) and run the
//! same two-stage pipeline: quantized shortlist of `k · rerank_factor`
//! candidates, then an exact f32 re-rank. What differs is stage 1's inner
//! loop — m table lookups per candidate vs one `fastscan16` kernel call
//! per 32-code block — so the latency gap is the fast-scan win and the
//! recall columns show the re-rank absorbing the coarser 4-bit codes.
//!
//! Every variant is differentially checked against its per-id reference
//! twin before timing starts; a mismatch fails the experiment.

use std::time::Instant;

use jdvs_core::search;
use jdvs_core::{IndexConfig, VisualIndex};
use jdvs_storage::model::{ImageKey, ProductAttributes, ProductId};
use jdvs_vector::rng::Xoshiro256;
use jdvs_vector::simd;
use jdvs_vector::Vector;

use crate::report::ExperimentResult;
use crate::row;

use super::Ctx;

const DIM: usize = 64;
const NUM_LISTS: usize = 128;
const K: usize = 10;
const NPROBE: usize = 16;
const RERANK: usize = 8;

/// Builds a populated index over `data` with the given PQ shape.
fn build(data: &[Vector], pq_bits: u8, pq_subspaces: usize) -> VisualIndex {
    let index = VisualIndex::bootstrap(
        IndexConfig {
            dim: DIM,
            num_lists: NUM_LISTS,
            initial_list_capacity: 64,
            kmeans_iters: 6,
            pq_subspaces: Some(pq_subspaces),
            pq_bits,
            rerank_factor: RERANK,
            ..Default::default()
        },
        data,
    );
    for (i, v) in data.iter().enumerate() {
        index
            .insert(
                v.clone(),
                ProductAttributes::new(ProductId(i as u64), 0, 0, 0, format!("fs/u{i}")),
            )
            .expect("insert");
    }
    index.flush();
    // 5% logical deletions so the validity filter is on the measured path.
    for i in (0..data.len()).step_by(20) {
        let url = format!("fs/u{i}");
        index
            .invalidate(ImageKey::from_url(&url), &url)
            .expect("invalidate");
    }
    index
}

/// Mean recall@K of single-thread compressed search against brute force.
fn recall(index: &VisualIndex, queries: &[Vector]) -> f64 {
    let mut hit = 0usize;
    for q in queries {
        let truth: Vec<u64> = search::brute_force(index, q.as_slice(), K)
            .into_iter()
            .map(|n| n.id)
            .collect();
        let got = search::compressed_search_with_threads(index, q.as_slice(), K, NPROBE, RERANK, 1);
        hit += got.iter().filter(|n| truth.contains(&n.id)).count();
    }
    hit as f64 / (queries.len() * K) as f64
}

/// Per-query mean latency in µs of `f` over `queries`, `repeats` times.
fn measure(queries: &[Vector], repeats: usize, mut f: impl FnMut(&[f32]) -> usize) -> f64 {
    let mut sink = 0usize;
    let t0 = Instant::now();
    for _ in 0..repeats {
        for q in queries {
            sink = sink.wrapping_add(f(q.as_slice()));
        }
    }
    let elapsed = t0.elapsed();
    assert!(sink > 0, "scan returned no results");
    elapsed.as_secs_f64() * 1e6 / (repeats * queries.len()) as f64
}

/// `pq-fastscan`: 4-bit interleaved fast-scan vs 8-bit ADC at equal
/// bytes per code.
pub fn pq_fastscan(ctx: &Ctx) -> ExperimentResult {
    let n_images = ctx.scaled(30_000, 3_000);
    let mut rng = Xoshiro256::seed_from(0xFA57);
    let data: Vec<Vector> = (0..n_images)
        .map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect())
        .collect();
    let queries: Vec<Vector> = (0..50)
        .map(|i| data[(i * 131) % n_images].clone())
        .collect();

    let adc8 = build(&data, 8, 8);
    let fs4 = build(&data, 4, 16);
    for index in [&adc8, &fs4] {
        let c = index.config();
        let bytes = c.pq_subspaces.unwrap() * c.pq_bits as usize / 8;
        assert_eq!(bytes, 8, "variants must spend equal bytes per code");
    }

    // Differential check before timing: the engine (fast-scan kernels,
    // block layout, threshold-pruned top-k) must return exactly what the
    // per-id reference twin returns, for both code widths.
    for q in &queries {
        for index in [&adc8, &fs4] {
            let reference =
                search::compressed_search_reference(index, q.as_slice(), K, NPROBE, RERANK);
            let engine =
                search::compressed_search_with_threads(index, q.as_slice(), K, NPROBE, RERANK, 1);
            assert_eq!(engine, reference, "engine diverged from reference");
        }
    }

    let recall8 = recall(&adc8, &queries);
    let recall4 = recall(&fs4, &queries);

    let repeats = if ctx.quick { 10 } else { 40 };
    let adc8_us = measure(&queries, repeats, |q| {
        search::compressed_search_with_threads(&adc8, q, K, NPROBE, RERANK, 1).len()
    });
    let fs4_us = measure(&queries, repeats, |q| {
        search::compressed_search_with_threads(&fs4, q, K, NPROBE, RERANK, 1).len()
    });

    let mut r = ExperimentResult::new(
        "pq-fastscan",
        "PQ scan latency: 4-bit fast-scan blocks vs 8-bit ADC at equal bytes per code",
        "Section 2.4: searchers rank PQ-compressed candidates; fast-scan is the Andre et al. SIMD layout",
    );
    for (variant, us, recall) in [
        ("adc-8bit-m8", adc8_us, recall8),
        ("fastscan-4bit-m16", fs4_us, recall4),
    ] {
        r.push_row(row![
            "variant" => variant,
            "mean_us_per_query" => format!("{us:.1}"),
            "speedup_vs_adc8" => format!("{:.2}", adc8_us / us),
            "recall_at_10" => format!("{recall:.3}"),
        ]);
    }
    r.note(format!(
        "{n_images} images, dim {DIM}, {NUM_LISTS} lists, nprobe {NPROBE}, k {K}, rerank {RERANK}, 5% deleted, 8 bytes/code both; active kernel: {}",
        simd::active().name()
    ));
    r.note(format!(
        "single-thread fast-scan speedup over 8-bit ADC: {:.2}x (acceptance bar: >= 2x at equal recall)",
        adc8_us / fs4_us
    ));
    r.note("both variants differentially checked against per-id references before timing");
    r
}
