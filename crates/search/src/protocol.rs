//! Wire messages of the search hierarchy.

use std::time::Duration;

use jdvs_core::FilterSpec;
use jdvs_storage::model::ProductId;
use serde::{Deserialize, Serialize};

/// What the user hands the blender.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueryInput {
    /// Pre-extracted feature vector (client-side extraction, or replay of a
    /// stored query).
    Features(Vec<f32>),
    /// A raw query image identified by URL; the blender pulls the blob and
    /// extracts features (charging the extraction cost model) — the paper's
    /// "extracts the features" step.
    ImageUrl(String),
}

/// A user-level query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchQuery {
    /// The query image or features.
    pub input: QueryInput,
    /// Results wanted.
    pub k: usize,
    /// Inverted lists probed per partition (`None` = partition default).
    pub nprobe: Option<usize>,
    /// Request the compressed (PQ) scan path on searchers whose index has
    /// it enabled (`IndexConfig::pq_subspaces`); searchers without PQ fall
    /// back to the raw scan.
    pub compressed: bool,
    /// End-to-end deadline budget for the whole query. Stamped by
    /// [`crate::client::SearchClient`] (or manually); each hop deducts its
    /// own elapsed time and forwards only the remainder downstream. `None`
    /// means "use the topology's configured per-hop deadlines".
    pub budget: Option<Duration>,
    /// Attribute constraints (category, stock, price/sales ranges),
    /// carried unchanged through every hop and pushed down into each
    /// searcher's block scan. `None` is unconstrained.
    pub filter: Option<FilterSpec>,
}

impl SearchQuery {
    /// Query by pre-extracted features.
    pub fn by_features(features: Vec<f32>, k: usize) -> Self {
        Self {
            input: QueryInput::Features(features),
            k,
            nprobe: None,
            compressed: false,
            budget: None,
            filter: None,
        }
    }

    /// Query by image URL.
    pub fn by_image_url(url: impl Into<String>, k: usize) -> Self {
        Self {
            input: QueryInput::ImageUrl(url.into()),
            k,
            nprobe: None,
            compressed: false,
            budget: None,
            filter: None,
        }
    }

    /// Overrides the per-partition probe count.
    pub fn with_nprobe(mut self, nprobe: usize) -> Self {
        self.nprobe = Some(nprobe);
        self
    }

    /// Requests the compressed (PQ) scan path.
    pub fn with_compressed(mut self) -> Self {
        self.compressed = true;
        self
    }

    /// Sets the end-to-end deadline budget.
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Attaches attribute constraints.
    pub fn with_filter(mut self, filter: FilterSpec) -> Self {
        self.filter = Some(filter);
        self
    }
}

/// Internal query fanned from blenders to brokers to searchers: features
/// are always resolved by the blender before fan-out.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FanoutQuery {
    /// Resolved query features.
    pub features: Vec<f32>,
    /// Results wanted per level.
    pub k: usize,
    /// Probe count (`None` = partition default).
    pub nprobe: Option<usize>,
    /// Use the compressed scan where available.
    pub compressed: bool,
    /// Remaining deadline budget granted by the hop above. Each hop stamps
    /// the remainder of its own budget (minus a safety margin) before
    /// fanning out, so a straggling upstream cannot grant downstream work
    /// more time than the user call has left.
    pub budget: Option<Duration>,
    /// Attribute constraints forwarded from the user query; searchers push
    /// them down into the block scan. `None` is unconstrained.
    pub filter: Option<FilterSpec>,
}

/// One partial hit, as returned by a searcher: everything the blender needs
/// to rank without a second round-trip (the searcher owns the forward index
/// with the attributes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartialHit {
    /// Partition the hit came from.
    pub partition: usize,
    /// Partition-local image id.
    pub local_id: u32,
    /// Squared Euclidean distance to the query.
    pub distance: f32,
    /// Owning product.
    pub product_id: ProductId,
    /// Sales count at response time.
    pub sales: u64,
    /// Price at response time.
    pub price: u64,
    /// Praise count at response time.
    pub praise: u64,
    /// The image URL (what the app displays).
    pub url: String,
}

/// A searcher's (or broker's) reply: the local top-k plus partition-level
/// coverage accounting, so every intermediate merge can say exactly how
/// much of the index the hits represent.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PartialResponse {
    /// Hits, nearest first.
    pub hits: Vec<PartialHit>,
    /// Partitions that contributed hits to this reply.
    pub partitions_ok: usize,
    /// Partitions this reply *should* have covered.
    pub partitions_total: usize,
    /// Partitions lost to deadline timeouts.
    pub partitions_timed_out: usize,
    /// Partitions lost to non-timeout failures (node down, dropped).
    pub partitions_failed: usize,
    /// Partitions deliberately shed by a downstream admission controller
    /// (`Overloaded` rejections). Counted apart from failures: shedding is
    /// the system protecting itself, not a fault, and the distinction
    /// matters when reading overload experiments. The coverage identity is
    /// `ok + timed_out + failed + shed == total`.
    pub partitions_shed: usize,
}

impl PartialResponse {
    /// Whether every partition answered.
    pub fn is_complete(&self) -> bool {
        self.partitions_ok == self.partitions_total
    }
}

/// A fully-ranked user-facing result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedHit {
    /// The matched image and its attributes.
    pub hit: PartialHit,
    /// Final blended score (higher is better).
    pub score: f64,
}

/// The blender's reply to the user.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SearchResponse {
    /// Ranked results, best first.
    pub results: Vec<RankedHit>,
    /// Broker groups that answered in time (fan-out health indicator).
    pub groups_answered: usize,
    /// Broker groups that failed or timed out entirely.
    pub groups_failed: usize,
    /// Partitions whose local top-k made it into `results`.
    pub partitions_ok: usize,
    /// Partitions the query should have covered (the whole index).
    pub partitions_total: usize,
    /// Partitions lost to deadline timeouts.
    pub partitions_timed_out: usize,
    /// Partitions lost to non-timeout failures.
    pub partitions_failed: usize,
    /// Partitions deliberately shed by admission control (see
    /// [`PartialResponse::partitions_shed`]).
    pub partitions_shed: usize,
    /// Product category detected for the query image (Section 2.4: "the
    /// product category of the item is identified"); `None` when the
    /// blender has no category detector attached.
    pub detected_category: Option<u32>,
}

impl SearchResponse {
    /// Whether the results cover every partition (nothing was silently
    /// dropped).
    pub fn is_complete(&self) -> bool {
        self.partitions_ok == self.partitions_total
    }

    /// Fraction of partitions covered, in `[0, 1]` (`1.0` for an empty
    /// topology).
    pub fn coverage(&self) -> f64 {
        if self.partitions_total == 0 {
            1.0
        } else {
            self.partitions_ok as f64 / self.partitions_total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_constructors() {
        let q = SearchQuery::by_features(vec![1.0, 2.0], 5);
        assert_eq!(q.k, 5);
        assert!(matches!(q.input, QueryInput::Features(_)));
        assert_eq!(q.nprobe, None);
        assert_eq!(q.budget, None);

        let q = SearchQuery::by_image_url("u1", 3).with_nprobe(7);
        assert_eq!(q.nprobe, Some(7));
        assert!(matches!(q.input, QueryInput::ImageUrl(ref u) if u == "u1"));

        let q = SearchQuery::by_features(vec![], 1).with_budget(Duration::from_millis(250));
        assert_eq!(q.budget, Some(Duration::from_millis(250)));
    }

    #[test]
    fn partial_response_default_is_empty() {
        let p = PartialResponse::default();
        assert!(p.hits.is_empty());
        assert!(p.is_complete(), "0 of 0 partitions is complete");
        let r = SearchResponse::default();
        assert_eq!(r.groups_answered, 0);
        assert!(r.results.is_empty());
        assert!(r.is_complete());
        assert_eq!(r.coverage(), 1.0);
    }

    #[test]
    fn coverage_reflects_lost_partitions() {
        let r = SearchResponse {
            partitions_ok: 3,
            partitions_total: 4,
            partitions_timed_out: 1,
            ..SearchResponse::default()
        };
        assert!(!r.is_complete());
        assert!((r.coverage() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn messages_clone_and_compare() {
        let hit = PartialHit {
            partition: 1,
            local_id: 2,
            distance: 0.5,
            product_id: ProductId(3),
            sales: 4,
            price: 5,
            praise: 6,
            url: "u".into(),
        };
        assert_eq!(hit.clone(), hit);
        let q = FanoutQuery {
            features: vec![0.0],
            k: 1,
            nprobe: Some(2),
            compressed: false,
            budget: None,
            filter: Some(FilterSpec::by_category(3).in_stock()),
        };
        assert_eq!(q.clone(), q);
        assert!(
            SearchQuery::by_features(vec![], 1)
                .with_compressed()
                .compressed
        );
    }
}
