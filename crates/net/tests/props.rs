//! Property-based tests for the cluster runtime.

use std::time::Duration;

use proptest::prelude::*;

use jdvs_net::balancer::Balancer;
use jdvs_net::latency::{LatencyModel, LatencySampler};
use jdvs_net::node::Node;
use jdvs_net::rpc::Service;

struct Identity;
impl Service for Identity {
    type Request = u64;
    type Response = u64;
    fn handle(&self, r: u64) -> u64 {
        r
    }
}

struct Tagged(u64);
impl Service for Tagged {
    type Request = ();
    type Response = u64;
    fn handle(&self, _: ()) -> u64 {
        self.0
    }
}

const DL: Duration = Duration::from_secs(5);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every request through a healthy node returns its own payload, for
    /// any worker count.
    #[test]
    fn node_is_lossless(workers in 1usize..6, payloads in prop::collection::vec(any::<u64>(), 1..40)) {
        let node = Node::spawn("id", Identity, workers);
        let handle = node.handle();
        for p in payloads {
            prop_assert_eq!(handle.call(p, DL), Ok(p));
        }
        node.shutdown();
    }

    /// Round-robin over N healthy nodes serves each node once per window
    /// of N consecutive calls.
    #[test]
    fn balancer_distributes_evenly(n in 1usize..6, rounds in 1usize..5) {
        let nodes: Vec<_> =
            (0..n as u64).map(|i| Node::spawn(format!("n{i}"), Tagged(i), 1)).collect();
        let lb = Balancer::new(nodes.iter().map(Node::handle).collect());
        let mut counts = vec![0usize; n];
        for _ in 0..n * rounds {
            let got = lb.call((), DL).unwrap();
            counts[got as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            prop_assert_eq!(c, rounds, "node {} served {} times", i, c);
        }
    }

    /// Failover: with any non-empty subset of nodes down, every call is
    /// served by some healthy node (or errors when all are down).
    #[test]
    fn balancer_failover_always_finds_a_healthy_node(
        n in 2usize..6,
        down_mask in prop::collection::vec(any::<bool>(), 2..6),
    ) {
        let n = n.min(down_mask.len());
        let nodes: Vec<_> =
            (0..n as u64).map(|i| Node::spawn(format!("n{i}"), Tagged(i), 1)).collect();
        let lb = Balancer::new(nodes.iter().map(Node::handle).collect());
        let mut any_up = false;
        for (node, &down) in nodes.iter().zip(&down_mask) {
            node.faults().set_down(down);
            any_up |= !down;
        }
        for _ in 0..2 * n {
            match lb.call((), DL) {
                Ok(tag) => {
                    prop_assert!(any_up);
                    prop_assert!(!down_mask[tag as usize], "served by a downed node");
                }
                Err(_) => prop_assert!(!any_up, "error only when all nodes are down"),
            }
        }
    }

    /// Latency samples respect distribution bounds for any seed.
    #[test]
    fn latency_samples_respect_bounds(seed in any::<u64>(), lo_us in 0u64..500, span_us in 0u64..500) {
        let model = LatencyModel::Uniform {
            min: Duration::from_micros(lo_us),
            max: Duration::from_micros(lo_us + span_us),
        };
        let sampler = LatencySampler::new(model, seed);
        for _ in 0..100 {
            let d = sampler.sample();
            prop_assert!(d >= Duration::from_micros(lo_us));
            prop_assert!(d <= Duration::from_micros(lo_us + span_us));
        }
    }

    /// Log-normal latencies are clamped at 10x the median for any seed.
    #[test]
    fn lognormal_latency_is_clamped(seed in any::<u64>(), median_us in 1u64..1_000) {
        let sampler = LatencySampler::new(
            LatencyModel::LogNormal { median: Duration::from_micros(median_us), sigma: 1.5 },
            seed,
        );
        for _ in 0..200 {
            prop_assert!(sampler.sample() <= Duration::from_micros(median_us * 10));
        }
    }
}
