//! Log-linear latency histograms.
//!
//! The evaluation reports average / p90 / p99 latencies (Fig. 11(b)), mean
//! response times (Fig. 12(b)) and a full response-time CDF (Fig. 13(b)).
//! [`Histogram`] supports all three from one compact structure: values are
//! recorded in microseconds into buckets that are exact up to
//! [`LINEAR_LIMIT`] µs and grow geometrically (64 sub-buckets per octave)
//! beyond it, giving ≤ ~1.6 % relative quantization error — more than enough
//! to reproduce the paper's curves.

use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Values up to this many microseconds land in exact 1 µs buckets.
pub const LINEAR_LIMIT: u64 = 1024;

/// Sub-buckets per power-of-two octave above the linear range.
const SUBBUCKETS: u64 = 64;

/// Total number of buckets (linear range + 52 octaves of 64 sub-buckets
/// covers every representable u64 microsecond value).
const NUM_BUCKETS: usize = LINEAR_LIMIT as usize + 64 * SUBBUCKETS as usize;

fn bucket_index(value_us: u64) -> usize {
    if value_us < LINEAR_LIMIT {
        value_us as usize
    } else {
        // The octave of `value_us` is floor(log2(v)); within the octave we
        // keep SUBBUCKETS evenly spaced slots.
        let octave = 63 - value_us.leading_zeros() as u64; // >= 10
        let base = 1u64 << octave;
        // (value - base) * SUBBUCKETS >> octave, shifted to avoid overflow
        // near u64::MAX (SUBBUCKETS = 2^6, octave >= 10, so octave - 6 > 0).
        let sub = (value_us - base) >> (octave - 6);
        (LINEAR_LIMIT + (octave - 10) * SUBBUCKETS + sub) as usize
    }
}

/// Representative (midpoint) value of a bucket in microseconds.
fn bucket_value(index: usize) -> u64 {
    if (index as u64) < LINEAR_LIMIT {
        index as u64
    } else {
        let rel = index as u64 - LINEAR_LIMIT;
        let octave = rel / SUBBUCKETS + 10;
        let sub = rel % SUBBUCKETS;
        let base = 1u64 << octave;
        let width = base / SUBBUCKETS;
        base + sub * width + width / 2
    }
}

/// A single-threaded latency histogram; wrap in [`SharedHistogram`] for
/// concurrent recording.
///
/// # Example
///
/// ```
/// use jdvs_metrics::Histogram;
/// use std::time::Duration;
///
/// let mut h = Histogram::new();
/// h.record(Duration::from_micros(250));
/// h.record_us(750);
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.min_us(), 250);
/// assert_eq!(h.max_us(), 750);
/// ```
#[derive(Clone, Serialize, Deserialize)]
pub struct Histogram {
    // Sparse would save memory, but a dense Vec keeps `record` branch-free;
    // one histogram is ~37 KB which is irrelevant at our scale.
    buckets: Vec<u64>,
    count: u64,
    sum_us: u64,
    min_us: u64,
    max_us: u64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("mean_us", &self.mean_us())
            .field("p50_us", &self.percentile_us(0.5))
            .field("p99_us", &self.percentile_us(0.99))
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum_us: 0,
            min_us: u64::MAX,
            max_us: 0,
        }
    }

    /// Records a duration.
    pub fn record(&mut self, d: Duration) {
        self.record_us(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Records a raw microsecond value.
    pub fn record_us(&mut self, us: u64) {
        self.buckets[bucket_index(us)] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded value in µs (0 when empty).
    pub fn min_us(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_us
        }
    }

    /// Largest recorded value in µs (0 when empty).
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Mean in µs (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Mean as a [`Duration`].
    pub fn mean(&self) -> Duration {
        Duration::from_micros(self.mean_us() as u64)
    }

    /// Approximate `q`-quantile in µs, with `q` in `[0, 1]`.
    /// Exact `min`/`max` are substituted at the extremes so the reported
    /// range never exceeds observed values.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    pub fn percentile_us(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min_us();
        }
        if q >= 1.0 {
            return self.max_us();
        }
        let rank = (q * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_value(i).clamp(self.min_us(), self.max_us());
            }
        }
        self.max_us()
    }

    /// Approximate `q`-quantile as a [`Duration`].
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    pub fn percentile(&self, q: f64) -> Duration {
        Duration::from_micros(self.percentile_us(q))
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        if other.count > 0 {
            self.min_us = self.min_us.min(other.min_us);
            self.max_us = self.max_us.max(other.max_us);
        }
    }

    /// Emits `(latency_us, cumulative_fraction)` points — the response-time
    /// CDF of Figure 13(b). Only non-empty buckets contribute, so the series
    /// is compact and strictly increasing in both coordinates.
    pub fn cdf_points(&self) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        if self.count == 0 {
            return out;
        }
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            let v = bucket_value(i).clamp(self.min_us(), self.max_us());
            out.push((v, seen as f64 / self.count as f64));
        }
        out
    }

    /// One-line human summary (used by the repro harness output).
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={:.2}ms p50={:.2}ms p90={:.2}ms p99={:.2}ms max={:.2}ms",
            self.count,
            self.mean_us() / 1e3,
            self.percentile_us(0.50) as f64 / 1e3,
            self.percentile_us(0.90) as f64 / 1e3,
            self.percentile_us(0.99) as f64 / 1e3,
            self.max_us() as f64 / 1e3,
        )
    }
}

/// A mutex-guarded histogram shared across recording threads.
///
/// Recording takes an uncontended `parking_lot` lock (tens of nanoseconds),
/// which is negligible next to the millisecond-scale operations measured.
#[derive(Debug, Default)]
pub struct SharedHistogram {
    inner: Mutex<Histogram>,
}

impl SharedHistogram {
    /// Creates an empty shared histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a duration.
    pub fn record(&self, d: Duration) {
        self.inner.lock().record(d);
    }

    /// Records a raw microsecond value.
    pub fn record_us(&self, us: u64) {
        self.inner.lock().record_us(us);
    }

    /// Returns a snapshot copy of the current state.
    pub fn snapshot(&self) -> Histogram {
        self.inner.lock().clone()
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> u64 {
        self.inner.lock().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.is_empty());
        assert_eq!(h.mean_us(), 0.0);
        assert_eq!(h.percentile_us(0.99), 0);
        assert!(h.cdf_points().is_empty());
    }

    #[test]
    fn linear_range_is_exact() {
        let mut h = Histogram::new();
        for v in 0..LINEAR_LIMIT {
            h.record_us(v);
        }
        assert_eq!(h.count(), LINEAR_LIMIT);
        assert_eq!(h.min_us(), 0);
        assert_eq!(h.max_us(), LINEAR_LIMIT - 1);
        // Exact buckets: the median of 0..1024 is ~512.
        assert_eq!(h.percentile_us(0.5), 511);
    }

    #[test]
    fn geometric_range_error_is_bounded() {
        let mut h = Histogram::new();
        let value = 1_000_000u64; // 1 s
        h.record_us(value);
        let p = h.percentile_us(0.5);
        let rel_err = (p as f64 - value as f64).abs() / value as f64;
        assert!(rel_err < 0.02, "relative error {rel_err} too large");
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = Histogram::new();
        let mut x = 7u64;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            h.record_us(x % 2_000_000);
        }
        let mut prev = 0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            let p = h.percentile_us(q);
            assert!(p >= prev, "p({q}) = {p} < {prev}");
            prev = p;
        }
    }

    #[test]
    fn mean_matches_arithmetic_mean() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record_us(v);
        }
        assert!((h.mean_us() - 20.0).abs() < 1e-9);
        assert_eq!(h.mean(), Duration::from_micros(20));
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in 0..500u64 {
            a.record_us(v * 3);
            all.record_us(v * 3);
        }
        for v in 0..500u64 {
            b.record_us(v * 7 + 1);
            all.record_us(v * 7 + 1);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min_us(), all.min_us());
        assert_eq!(a.max_us(), all.max_us());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.percentile_us(q), all.percentile_us(q));
        }
    }

    #[test]
    fn merge_with_empty_preserves_min_max() {
        let mut a = Histogram::new();
        a.record_us(42);
        let b = Histogram::new();
        a.merge(&b);
        assert_eq!(a.min_us(), 42);
        assert_eq!(a.max_us(), 42);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut h = Histogram::new();
        for v in [5u64, 5, 100, 2_000, 50_000, 50_000, 1_000_000] {
            h.record_us(v);
        }
        let cdf = h.cdf_points();
        assert!(!cdf.is_empty());
        let mut prev_v = 0;
        let mut prev_f = 0.0;
        for &(v, f) in &cdf {
            assert!(v >= prev_v);
            assert!(f > prev_f);
            prev_v = v;
            prev_f = f;
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn extreme_quantiles_hit_exact_min_max() {
        let mut h = Histogram::new();
        h.record_us(123);
        h.record_us(456_789);
        assert_eq!(h.percentile_us(0.0), 123);
        assert_eq!(h.percentile_us(1.0), 456_789);
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0, 1]")]
    fn out_of_range_quantile_panics() {
        Histogram::new().percentile_us(1.5);
    }

    #[test]
    fn shared_histogram_accumulates_across_threads() {
        use std::sync::Arc;
        let shared = Arc::new(SharedHistogram::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let s = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        s.record_us(t * 1_000 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.count(), 8_000);
        let snap = shared.snapshot();
        assert_eq!(snap.count(), 8_000);
        assert_eq!(snap.min_us(), 0);
    }

    #[test]
    fn duration_overflow_is_clamped() {
        let mut h = Histogram::new();
        h.record(Duration::from_secs(u64::MAX / 1_000_000 + 1));
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn bucket_round_trip_is_close() {
        for v in [0u64, 1, 1023, 1024, 1025, 4096, 1_000_000, u64::MAX / 2] {
            let idx = bucket_index(v);
            let rep = bucket_value(idx);
            if v < LINEAR_LIMIT {
                assert_eq!(rep, v);
            } else {
                let rel = (rep as f64 - v as f64).abs() / v as f64;
                assert!(rel < 0.02, "v={v} rep={rep} rel={rel}");
            }
        }
    }
}
