//! Deterministic test runner state: config + RNG.

/// Subset of proptest's config: number of cases per property.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Self { cases }
    }
}

/// SplitMix64 over an FNV-1a seed of the test's qualified name, re-mixed per
/// case index. Fully deterministic: the same test generates the same inputs
/// on every run and machine.
#[derive(Clone, Debug)]
pub struct TestRng {
    base: u64,
    state: u64,
}

impl TestRng {
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { base: h, state: h }
    }

    pub fn reseed_case(&mut self, case: u32) {
        self.state = self.base ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi]` (inclusive).
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        let mut a = TestRng::deterministic("x::y");
        let mut b = TestRng::deterministic("x::y");
        a.reseed_case(3);
        b.reseed_case(3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("x::z");
        c.reseed_case(3);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = TestRng::deterministic("f");
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
