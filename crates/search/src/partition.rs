//! Index partitioning (Section 2.4).
//!
//! *"The entire image index data is divided into multiple partitions by
//! hashing the image's URL. Each partition can have multiple copies for
//! availability. A partition is handled by a single searcher node. A broker
//! connects to a subset of searchers."*
//!
//! [`PartitionMap`] owns those assignments: URL → partition (via a routing
//! table indexed by [`ImageKey::partition`]), and partition → broker group,
//! so every layer agrees on who owns what.
//!
//! The map is no longer a pure modulus: to support **online splits** it
//! routes through an extendible-hashing style table whose length doubles on
//! every [`PartitionMap::split`]. A key that hashed to cell `c` under a
//! table of length `m` hashes to `c` or `c + m` under length `2m` (both
//! aliases of the same cell before the doubling), so doubling the table and
//! redirecting only the upper-half aliases of the split partition moves
//! exactly half of that partition's key space to the new partition and
//! leaves every other partition's ownership untouched.

use jdvs_storage::model::ImageKey;
use serde::{Deserialize, Serialize};

/// The cluster-wide partition layout.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionMap {
    num_broker_groups: usize,
    /// `groups[p]` is the broker group owning partition `p`. Grows by one
    /// on every split (the new half joins its parent's group, so each
    /// group's partition list stays stable-ordered).
    groups: Vec<usize>,
    /// Routing table: `table[key.partition(table.len())]` is the owning
    /// partition. Starts as the identity over the configured partitions
    /// and doubles on every split.
    table: Vec<usize>,
}

impl PartitionMap {
    /// Creates a layout.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero or there are more broker groups than
    /// partitions (a group with nothing to own is a configuration bug).
    pub fn new(num_partitions: usize, num_broker_groups: usize) -> Self {
        assert!(num_partitions > 0, "num_partitions must be positive");
        assert!(num_broker_groups > 0, "num_broker_groups must be positive");
        assert!(
            num_broker_groups <= num_partitions,
            "more broker groups ({num_broker_groups}) than partitions ({num_partitions})"
        );
        Self {
            num_broker_groups,
            groups: (0..num_partitions).map(|p| p % num_broker_groups).collect(),
            table: (0..num_partitions).collect(),
        }
    }

    /// Reassembles a layout from its serialized parts (the inverse of
    /// [`PartitionMap::groups`] + [`PartitionMap::table`]; used by the
    /// durable topology's partition-map file so splits survive restarts).
    ///
    /// # Panics
    ///
    /// Panics on structurally invalid parts: empty vectors or entries out
    /// of range.
    pub fn from_parts(num_broker_groups: usize, groups: Vec<usize>, table: Vec<usize>) -> Self {
        assert!(num_broker_groups > 0, "num_broker_groups must be positive");
        assert!(!groups.is_empty(), "a layout needs at least one partition");
        assert!(
            groups.iter().all(|&g| g < num_broker_groups),
            "group assignment out of range"
        );
        assert!(
            !table.is_empty() && table.iter().all(|&p| p < groups.len()),
            "routing table entry out of range"
        );
        Self {
            num_broker_groups,
            groups,
            table,
        }
    }

    /// Total partitions.
    pub fn num_partitions(&self) -> usize {
        self.groups.len()
    }

    /// The per-partition broker-group assignment (`groups()[p]` owns `p`).
    pub fn groups(&self) -> &[usize] {
        &self.groups
    }

    /// The routing table (slot → owning partition).
    pub fn table(&self) -> &[usize] {
        &self.table
    }

    /// Total broker groups.
    pub fn num_broker_groups(&self) -> usize {
        self.num_broker_groups
    }

    /// The partition an image belongs to.
    pub fn partition_of(&self, key: ImageKey) -> usize {
        self.table[key.partition(self.table.len())]
    }

    /// The partition an image URL belongs to.
    pub fn partition_of_url(&self, url: &str) -> usize {
        self.partition_of(ImageKey::from_url(url))
    }

    /// The broker group that owns a partition.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range.
    pub fn broker_group_of(&self, partition: usize) -> usize {
        assert!(partition < self.groups.len(), "partition out of range");
        self.groups[partition]
    }

    /// The partitions owned by a broker group, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn partitions_of_group(&self, group: usize) -> Vec<usize> {
        assert!(group < self.num_broker_groups, "broker group out of range");
        (0..self.groups.len())
            .filter(|&p| self.groups[p] == group)
            .collect()
    }

    /// Splits `partition` in two: the routing table doubles, the upper-half
    /// aliases of the split partition's cells are redirected to a new
    /// partition id (returned), and the new half joins its parent's broker
    /// group. Every key either keeps its old owner or moves from `partition`
    /// to the new id — no other partition's key space is disturbed.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range.
    pub fn split(&mut self, partition: usize) -> usize {
        assert!(partition < self.groups.len(), "partition out of range");
        let sibling = self.groups.len();
        let m = self.table.len();
        let mut doubled = Vec::with_capacity(2 * m);
        doubled.extend_from_slice(&self.table);
        doubled.extend(
            self.table
                .iter()
                .map(|&p| if p == partition { sibling } else { p }),
        );
        self.table = doubled;
        self.groups.push(self.groups[partition]);
        sibling
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_partition_has_exactly_one_group() {
        let map = PartitionMap::new(10, 3);
        let mut owned = vec![0usize; 10];
        for g in 0..3 {
            for p in map.partitions_of_group(g) {
                owned[p] += 1;
                assert_eq!(map.broker_group_of(p), g, "assignment must be consistent");
            }
        }
        assert!(
            owned.iter().all(|&c| c == 1),
            "each partition owned once: {owned:?}"
        );
    }

    #[test]
    fn url_routing_is_stable_and_in_range() {
        let map = PartitionMap::new(8, 2);
        for i in 0..100 {
            let url = format!("https://img.jd.com/{i}.jpg");
            let p = map.partition_of_url(&url);
            assert!(p < 8);
            assert_eq!(p, map.partition_of_url(&url), "stable routing");
            assert_eq!(p, map.partition_of(ImageKey::from_url(&url)));
        }
    }

    #[test]
    fn groups_get_balanced_partition_counts() {
        let map = PartitionMap::new(20, 6);
        let sizes: Vec<usize> = (0..6).map(|g| map.partitions_of_group(g).len()).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max - min <= 1, "round-robin is balanced: {sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), 20);
    }

    #[test]
    fn single_group_owns_everything() {
        let map = PartitionMap::new(5, 1);
        assert_eq!(map.partitions_of_group(0), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "more broker groups")]
    fn more_groups_than_partitions_panics() {
        PartitionMap::new(2, 3);
    }

    #[test]
    #[should_panic(expected = "partition out of range")]
    fn out_of_range_partition_panics() {
        PartitionMap::new(2, 1).broker_group_of(2);
    }

    #[test]
    fn split_moves_keys_only_between_parent_and_sibling() {
        let before = PartitionMap::new(4, 2);
        let mut after = before.clone();
        let sibling = after.split(1);
        assert_eq!(sibling, 4);
        assert_eq!(after.num_partitions(), 5);
        assert_eq!(after.broker_group_of(sibling), after.broker_group_of(1));
        let mut moved = 0;
        for i in 0..2000 {
            let key = ImageKey::from_url(&format!("img/{i}.jpg"));
            let was = before.partition_of(key);
            let now = after.partition_of(key);
            if was == now {
                continue;
            }
            assert_eq!(was, 1, "only the split partition loses keys");
            assert_eq!(now, sibling, "lost keys land on the sibling");
            moved += 1;
        }
        assert!(moved > 0, "the split must actually move keys");
    }

    #[test]
    fn repeated_splits_keep_routing_total() {
        let mut map = PartitionMap::new(3, 1);
        let a = map.split(0);
        let b = map.split(0);
        let c = map.split(a);
        assert_eq!(map.num_partitions(), 6);
        for i in 0..500 {
            let p = map.partition_of_url(&format!("u/{i}.png"));
            assert!(p < map.num_partitions());
        }
        // All splits joined group 0 (the only group).
        assert_eq!(map.partitions_of_group(0), vec![0, 1, 2, a, b, c]);
    }

    #[test]
    fn sibling_appends_to_the_parent_groups_list() {
        let mut map = PartitionMap::new(4, 2);
        // Partition 1 lives in group 1; its sibling must join group 1 and
        // append after the existing members (stable order for brokers).
        let sibling = map.split(1);
        assert_eq!(map.partitions_of_group(1), vec![1, 3, sibling]);
        assert_eq!(map.partitions_of_group(0), vec![0, 2]);
    }
}
