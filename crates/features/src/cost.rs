//! Extraction cost model.
//!
//! Feature extraction dominates real-time indexing latency for novel images
//! (the paper's Fig. 11(b) hourly latencies — avg 132 ms, p99 816 ms — are
//! dominated by extraction, which is why reusing previously extracted
//! features "significantly improved the response time"). The synthetic
//! extractor computes in microseconds, so experiments that reproduce the
//! paper's latency shape charge an explicit cost per extraction.
//!
//! Two modes:
//! - [`CostModel::sleep`] — really sleep, for wall-clock experiments;
//! - [`CostModel::virtual_time`] — account the cost without sleeping, for
//!   fast tests (the charged nanoseconds are returned to the caller).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use jdvs_vector::rng::Xoshiro256;
use parking_lot::Mutex;

/// Distribution of a single extraction's cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostDistribution {
    /// Fixed cost per extraction.
    Constant(Duration),
    /// Uniform in `[min, max]`.
    Uniform {
        /// Lower bound (inclusive).
        min: Duration,
        /// Upper bound (inclusive).
        max: Duration,
    },
    /// Log-normal-ish: `median * exp(sigma * N(0,1))`, clamped to
    /// `10 * median`. Heavy right tail, like real GPU batch queues.
    LogNormal {
        /// Median cost.
        median: Duration,
        /// Dimensionless spread (0.3–0.8 is realistic).
        sigma: f64,
    },
    /// No cost at all.
    Free,
}

/// How the cost is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Sleep,
    Virtual,
}

/// A thread-safe extraction cost model.
///
/// # Example
///
/// ```
/// use jdvs_features::CostModel;
/// use std::time::Duration;
///
/// let model = CostModel::virtual_time(
///     jdvs_features::cost::CostDistribution::Constant(Duration::from_millis(50)), 1);
/// let charged = model.charge();
/// assert_eq!(charged, Duration::from_millis(50));
/// assert_eq!(model.total_charged(), Duration::from_millis(50));
/// ```
#[derive(Debug)]
pub struct CostModel {
    distribution: CostDistribution,
    mode: Mode,
    rng: Mutex<Xoshiro256>,
    total_ns: AtomicU64,
    charges: AtomicU64,
}

impl CostModel {
    /// A model that really sleeps for the sampled cost.
    pub fn sleep(distribution: CostDistribution, seed: u64) -> Self {
        Self::new(distribution, Mode::Sleep, seed)
    }

    /// A model that only accounts the sampled cost.
    pub fn virtual_time(distribution: CostDistribution, seed: u64) -> Self {
        Self::new(distribution, Mode::Virtual, seed)
    }

    /// A zero-cost model (unit tests).
    pub fn free() -> Self {
        Self::new(CostDistribution::Free, Mode::Virtual, 0)
    }

    fn new(distribution: CostDistribution, mode: Mode, seed: u64) -> Self {
        Self {
            distribution,
            mode,
            rng: Mutex::new(Xoshiro256::seed_from(seed)),
            total_ns: AtomicU64::new(0),
            charges: AtomicU64::new(0),
        }
    }

    /// Samples one extraction's cost, applies it (sleeping if configured),
    /// and returns it.
    pub fn charge(&self) -> Duration {
        let cost = self.sample();
        self.total_ns.fetch_add(
            cost.as_nanos().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
        self.charges.fetch_add(1, Ordering::Relaxed);
        if self.mode == Mode::Sleep && !cost.is_zero() {
            std::thread::sleep(cost);
        }
        cost
    }

    /// Samples a cost without applying it.
    pub fn sample(&self) -> Duration {
        match self.distribution {
            CostDistribution::Free => Duration::ZERO,
            CostDistribution::Constant(d) => d,
            CostDistribution::Uniform { min, max } => {
                let (lo, hi) = (min.min(max), max.max(min));
                let span = (hi - lo).as_nanos() as u64;
                let mut rng = self.rng.lock();
                let off = if span == 0 {
                    0
                } else {
                    rng.next_bounded(span + 1)
                };
                lo + Duration::from_nanos(off)
            }
            CostDistribution::LogNormal { median, sigma } => {
                let g = self.rng.lock().next_gaussian();
                let factor = (sigma * g).exp().min(10.0);
                Duration::from_nanos((median.as_nanos() as f64 * factor) as u64)
            }
        }
    }

    /// Total cost charged so far (virtual or real).
    pub fn total_charged(&self) -> Duration {
        Duration::from_nanos(self.total_ns.load(Ordering::Relaxed))
    }

    /// Number of extractions charged so far.
    pub fn charge_count(&self) -> u64 {
        self.charges.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_model_charges_nothing() {
        let m = CostModel::free();
        assert_eq!(m.charge(), Duration::ZERO);
        assert_eq!(m.total_charged(), Duration::ZERO);
        assert_eq!(m.charge_count(), 1);
    }

    #[test]
    fn constant_virtual_accumulates() {
        let m = CostModel::virtual_time(CostDistribution::Constant(Duration::from_millis(10)), 1);
        for _ in 0..5 {
            m.charge();
        }
        assert_eq!(m.total_charged(), Duration::from_millis(50));
        assert_eq!(m.charge_count(), 5);
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let m = CostModel::virtual_time(
            CostDistribution::Uniform {
                min: Duration::from_micros(10),
                max: Duration::from_micros(20),
            },
            2,
        );
        for _ in 0..1_000 {
            let c = m.sample();
            assert!(
                c >= Duration::from_micros(10) && c <= Duration::from_micros(20),
                "{c:?}"
            );
        }
    }

    #[test]
    fn lognormal_median_is_plausible_and_clamped() {
        let m = CostModel::virtual_time(
            CostDistribution::LogNormal {
                median: Duration::from_millis(100),
                sigma: 0.5,
            },
            3,
        );
        let mut samples: Vec<Duration> = (0..2_001).map(|_| m.sample()).collect();
        samples.sort();
        let med = samples[1000];
        assert!(
            med > Duration::from_millis(70) && med < Duration::from_millis(140),
            "{med:?}"
        );
        assert!(
            *samples.last().unwrap() <= Duration::from_millis(1000),
            "clamped at 10x median"
        );
    }

    #[test]
    fn sleep_mode_really_sleeps() {
        let m = CostModel::sleep(CostDistribution::Constant(Duration::from_millis(5)), 4);
        let start = std::time::Instant::now();
        m.charge();
        assert!(start.elapsed() >= Duration::from_millis(4));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let dist = CostDistribution::Uniform {
            min: Duration::from_nanos(0),
            max: Duration::from_micros(100),
        };
        let a = CostModel::virtual_time(dist, 42);
        let b = CostModel::virtual_time(dist, 42);
        for _ in 0..100 {
            assert_eq!(a.sample(), b.sample());
        }
    }
}
