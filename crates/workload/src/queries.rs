//! Query-image generation.
//!
//! Section 3.2's client machine "emulates a different number of concurrent
//! users by sending image query requests". A realistic query is a *fresh
//! photo* of some product family — near an indexed cluster but not a stored
//! image. [`QueryGenerator`] mints such photos: a new synthetic blob whose
//! `visual_seed` is one of the catalog's clusters, registered in the image
//! store so blenders can pull and extract it (charging the query-time
//! extraction cost, as in production).

use std::sync::atomic::{AtomicU64, Ordering};

use jdvs_core::FilterSpec;
use jdvs_search::protocol::SearchQuery;
use jdvs_storage::ImageStore;
use jdvs_vector::rng::Xoshiro256;
use parking_lot::Mutex;

use crate::catalog::Catalog;

/// Mints query images over a catalog's visual clusters.
///
/// Real query traffic is heavy-tailed: a small set of *viral* images
/// (shared screenshots, trending products) repeats. With
/// [`QueryGenerator::with_viral`], each draw returns one of a fixed pool
/// of popular images with probability `p`, and a fresh unique photo
/// otherwise — the workload the blender's query cache exists for.
#[derive(Debug)]
pub struct QueryGenerator {
    clusters: Vec<u64>,
    rng: Mutex<Xoshiro256>,
    next_id: AtomicU64,
    /// `(pool of viral image urls+clusters, probability of drawing one)`.
    viral: Option<(Vec<(String, u64)>, f64)>,
}

impl QueryGenerator {
    /// Creates a generator over the clusters present in `catalog`.
    ///
    /// # Panics
    ///
    /// Panics if the catalog is empty.
    pub fn new(catalog: &Catalog, seed: u64) -> Self {
        assert!(!catalog.is_empty(), "catalog cannot be empty");
        let mut clusters: Vec<u64> = catalog.products().iter().map(|p| p.cluster).collect();
        clusters.sort_unstable();
        clusters.dedup();
        Self {
            clusters,
            rng: Mutex::new(Xoshiro256::seed_from(seed)),
            next_id: AtomicU64::new(0),
            viral: None,
        }
    }

    /// Makes a fraction `probability` of queries re-use one of `pool_size`
    /// fixed viral images (registered in `store` up front).
    ///
    /// # Panics
    ///
    /// Panics if `pool_size == 0` or `probability` is outside `[0, 1]`.
    pub fn with_viral(mut self, store: &ImageStore, pool_size: usize, probability: f64) -> Self {
        assert!(pool_size > 0, "viral pool must be non-empty");
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability must be in [0,1]"
        );
        let mut rng = self.rng.lock();
        let pool = (0..pool_size)
            .map(|i| {
                let cluster = self.clusters[rng.next_index(self.clusters.len())];
                let url = format!("https://img.jd.test/viral/{i}.jpg");
                store.put_synthetic(&url, cluster);
                (url, cluster)
            })
            .collect();
        drop(rng);
        self.viral = Some((pool, probability));
        self
    }

    /// Number of distinct clusters queries can target.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Mints a query: a viral repeat (when configured and the dice say so)
    /// or a fresh photo from a random cluster, registered in `store`.
    /// Returns `(query, cluster)` — the cluster is the ground truth for
    /// hit-rate checks.
    pub fn next_query(&self, store: &ImageStore, k: usize) -> (SearchQuery, u64) {
        if let Some((pool, p)) = &self.viral {
            let mut rng = self.rng.lock();
            if rng.next_bool(*p) {
                let (url, cluster) = &pool[rng.next_index(pool.len())];
                return (SearchQuery::by_image_url(url.clone(), k), *cluster);
            }
        }
        let cluster = {
            let mut rng = self.rng.lock();
            self.clusters[rng.next_index(self.clusters.len())]
        };
        let n = self.next_id.fetch_add(1, Ordering::Relaxed);
        let url = format!("https://img.jd.test/query/{n}.jpg");
        store.put_synthetic(&url, cluster);
        (SearchQuery::by_image_url(url, k), cluster)
    }

    /// Mints a query targeting a specific cluster.
    pub fn query_for_cluster(&self, store: &ImageStore, cluster: u64, k: usize) -> SearchQuery {
        let n = self.next_id.fetch_add(1, Ordering::Relaxed);
        let url = format!("https://img.jd.test/query/{n}.jpg");
        store.put_synthetic(&url, cluster);
        SearchQuery::by_image_url(url, k)
    }
}

/// Mints *attribute-filtered* queries with controllable selectivity.
///
/// Filter thresholds are derived from the catalog's own per-image sales
/// distribution, so a requested selectivity is hit exactly on the indexed
/// corpus rather than assumed from a synthetic distribution: asking for
/// 1% yields a [`FilterSpec`] whose `min_sales` admits the top 1% of the
/// catalog's images by sales.
#[derive(Debug)]
pub struct FilteredQueryGenerator {
    inner: QueryGenerator,
    /// Per-image sales values, ascending (one entry per catalog image).
    sales: Vec<u64>,
}

impl FilteredQueryGenerator {
    /// Creates a generator over `catalog`'s clusters and sales histogram.
    ///
    /// # Panics
    ///
    /// Panics if the catalog is empty.
    pub fn new(catalog: &Catalog, seed: u64) -> Self {
        let mut sales: Vec<u64> = catalog
            .products()
            .iter()
            .flat_map(|p| p.urls.iter().map(move |_| p.sales))
            .collect();
        sales.sort_unstable();
        Self {
            inner: QueryGenerator::new(catalog, seed),
            sales,
        }
    }

    /// The `min_sales` threshold admitting ~`selectivity` of the
    /// catalog's images (at least one image is always admitted).
    ///
    /// # Panics
    ///
    /// Panics if `selectivity` is outside `(0, 1]`.
    pub fn min_sales_for_selectivity(&self, selectivity: f64) -> u64 {
        assert!(
            selectivity > 0.0 && selectivity <= 1.0,
            "selectivity must be in (0, 1]"
        );
        let admit =
            ((self.sales.len() as f64 * selectivity).round() as usize).clamp(1, self.sales.len());
        self.sales[self.sales.len() - admit]
    }

    /// The fraction of catalog images a `min_sales` threshold actually
    /// admits (ground truth for selectivity-sweep experiments).
    pub fn achieved_selectivity(&self, min_sales: u64) -> f64 {
        let admitted = self.sales.len() - self.sales.partition_point(|&s| s < min_sales);
        admitted as f64 / self.sales.len() as f64
    }

    /// Mints a filtered query targeting ~`selectivity`: a fresh photo
    /// from a random cluster (see [`QueryGenerator::next_query`])
    /// carrying a `min_sales` [`FilterSpec`]. Returns the query, its
    /// ground-truth cluster, and the spec it carries.
    ///
    /// # Panics
    ///
    /// Panics if `selectivity` is outside `(0, 1]`.
    pub fn next_filtered_query(
        &self,
        store: &ImageStore,
        k: usize,
        selectivity: f64,
    ) -> (SearchQuery, u64, FilterSpec) {
        let spec = FilterSpec::none().with_min_sales(self.min_sales_for_selectivity(selectivity));
        let (query, cluster) = self.inner.next_query(store, k);
        (query.with_filter(spec.clone()), cluster, spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogConfig;
    use jdvs_search::protocol::QueryInput;

    fn catalog() -> Catalog {
        Catalog::generate(&CatalogConfig {
            num_products: 100,
            num_clusters: 8,
            ..Default::default()
        })
    }

    #[test]
    fn queries_reference_registered_images() {
        let cat = catalog();
        let store = ImageStore::with_blob_len(32);
        let generator = QueryGenerator::new(&cat, 1);
        let (q, cluster) = generator.next_query(&store, 5);
        assert_eq!(q.k, 5);
        match &q.input {
            QueryInput::ImageUrl(url) => {
                let blob = store.get_by_url(url).expect("query image registered");
                assert_eq!(blob.visual_seed, cluster);
            }
            _ => panic!("queries are by image URL"),
        }
    }

    #[test]
    fn query_urls_are_unique() {
        let cat = catalog();
        let store = ImageStore::with_blob_len(32);
        let generator = QueryGenerator::new(&cat, 2);
        let mut urls = std::collections::HashSet::new();
        for _ in 0..100 {
            let (q, _) = generator.next_query(&store, 1);
            if let QueryInput::ImageUrl(u) = q.input {
                assert!(urls.insert(u), "duplicate query url");
            }
        }
    }

    #[test]
    fn clusters_are_covered() {
        let cat = catalog();
        let store = ImageStore::with_blob_len(32);
        let generator = QueryGenerator::new(&cat, 3);
        assert_eq!(generator.num_clusters(), 8);
        let clusters: std::collections::HashSet<u64> = (0..200)
            .map(|_| generator.next_query(&store, 1).1)
            .collect();
        assert_eq!(clusters.len(), 8, "all clusters should appear in 200 draws");
    }

    #[test]
    fn viral_queries_repeat_urls() {
        let cat = catalog();
        let store = ImageStore::with_blob_len(32);
        let generator = QueryGenerator::new(&cat, 6).with_viral(&store, 3, 0.5);
        let mut urls = std::collections::HashMap::new();
        for _ in 0..400 {
            let (q, cluster) = generator.next_query(&store, 1);
            if let QueryInput::ImageUrl(u) = q.input {
                assert_eq!(store.get_by_url(&u).unwrap().visual_seed, cluster);
                *urls.entry(u).or_insert(0u32) += 1;
            }
        }
        let repeats: u32 = urls
            .iter()
            .filter(|(u, _)| u.contains("viral"))
            .map(|(_, c)| *c)
            .sum();
        assert!(
            (120..280).contains(&repeats),
            "~50% viral expected, got {repeats}/400"
        );
        assert!(
            urls.keys().filter(|u| u.contains("viral")).count() <= 3,
            "viral pool is fixed"
        );
    }

    #[test]
    fn filtered_queries_hit_requested_selectivity() {
        let cat = catalog();
        let store = ImageStore::with_blob_len(32);
        let generator = FilteredQueryGenerator::new(&cat, 5);
        for s in [1.0, 0.5, 0.1, 0.01] {
            let threshold = generator.min_sales_for_selectivity(s);
            let achieved = generator.achieved_selectivity(threshold);
            // Ties in the sales histogram can only widen the admitted set,
            // never shrink it below the request (modulo the >=1 floor).
            assert!(
                achieved >= s || threshold == generator.min_sales_for_selectivity(1.0),
                "selectivity {s}: achieved {achieved} below request"
            );
            assert!(
                achieved <= s * 3.0 + 0.02,
                "selectivity {s}: achieved {achieved} far above request"
            );
        }
        let (q, cluster, spec) = generator.next_filtered_query(&store, 7, 0.1);
        assert_eq!(q.k, 7);
        assert_eq!(
            q.filter.as_ref(),
            Some(&spec),
            "query carries the returned spec"
        );
        assert!(!spec.is_unconstrained(), "min_sales spec must constrain");
        if let QueryInput::ImageUrl(url) = &q.input {
            assert_eq!(store.get_by_url(url).unwrap().visual_seed, cluster);
        } else {
            panic!("expected image url query");
        }
    }

    #[test]
    fn targeted_query_uses_requested_cluster() {
        let cat = catalog();
        let store = ImageStore::with_blob_len(32);
        let generator = QueryGenerator::new(&cat, 4);
        let q = generator.query_for_cluster(&store, 5, 3);
        if let QueryInput::ImageUrl(url) = &q.input {
            assert_eq!(store.get_by_url(url).unwrap().visual_seed, 5);
        } else {
            panic!("expected image url query");
        }
    }
}
