//! Network-native serving: the three tiers as independent TCP services.
//!
//! [`NetServing::over`] stands the Blender → Broker → Searcher hierarchy
//! up as real socket listeners ([`jdvs_net::tcp::TcpTier`]) sharing an
//! existing [`SearchTopology`]'s hot-swappable partition indexes, image
//! store and extractor — so real-time indexing, checkpointing and rebuild
//! keep operating on the same data the network tiers serve.
//!
//! Every tier sits behind its own admission controller (token-bucket rate
//! limit, bounded queue with deadline-aware shedding, concurrency cap):
//! under overload the tier answers a fast `Overloaded` rejection instead
//! of queueing into collapse, and the PR 1 resilience machinery — retries
//! with jittered backoff, per-target circuit breakers, hedged broker
//! calls, degraded-result accounting — runs unchanged over the sockets
//! because [`jdvs_net::tcp::TcpChannel`] implements the same
//! [`jdvs_net::rpc::CallTarget`] contract as in-process node handles.
//!
//! Tiers are independent: each can be drained (graceful: in-flight work
//! answered, new work shed, then the listener closes) or crashed
//! (connections severed mid-frame, connects refused) without touching the
//! others — the integration tests drive exactly those scenarios.

use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use jdvs_metrics::{ResilienceMetrics, ServingMetrics, ServingSnapshot};
use jdvs_net::admission::AdmissionConfig;
use jdvs_net::balancer::Balancer;
use jdvs_net::tcp::{TcpChannel, TcpTier};

use crate::batch::{BatchConfig, BatchingSearcher};
use crate::blender::BlenderService;
use crate::broker::BrokerService;
use crate::client::SearchClient;
use crate::protocol::{FanoutQuery, PartialResponse, SearchQuery, SearchResponse};
use crate::searcher::SearcherService;
use crate::topology::SearchTopology;
use crate::wire;

/// A broker whose searcher calls travel over TCP.
pub type NetBroker = BrokerService<TcpChannel<FanoutQuery, PartialResponse>>;
/// A blender whose broker calls travel over TCP.
pub type NetBlender = BlenderService<TcpChannel<FanoutQuery, PartialResponse>>;
/// A user client whose blender calls travel over TCP.
pub type NetClient = SearchClient<TcpChannel<SearchQuery, SearchResponse>>;

/// Admission tuning for the three tiers plus the client deadline.
#[derive(Debug, Clone)]
pub struct NetServingConfig {
    /// Front door of every blender listener (the user-facing tier — this
    /// is where offered load first meets admission control).
    pub blender_admission: AdmissionConfig,
    /// Front door of every broker listener.
    pub broker_admission: AdmissionConfig,
    /// Front door of every searcher listener.
    pub searcher_admission: AdmissionConfig,
    /// Micro-batching policy at the searcher input (behind admission, in
    /// front of the engine). Disabled by default — see
    /// [`BatchConfig::disabled`].
    pub searcher_batch: BatchConfig,
    /// End-to-end deadline stamped by [`NetServing::client`].
    pub client_deadline: Duration,
    /// Hedge brokers' slow searcher calls: when a partition's first call
    /// has not answered after this long, a second call races it on
    /// another replica and the first answer wins. `None` disables
    /// hedging. Falls back to the wrapped topology's
    /// [`TopologyConfig::hedge_after`](crate::topology::TopologyConfig)
    /// when unset there too.
    ///
    /// Defaults to 150ms — comfortably above the healthy searcher tail in
    /// the simulated latency model, so hedges fire only on genuine
    /// stragglers and the duplicate-call rate stays near zero in the
    /// steady state.
    pub hedge_after: Option<Duration>,
}

impl Default for NetServingConfig {
    fn default() -> Self {
        Self {
            blender_admission: AdmissionConfig {
                max_concurrency: 8,
                queue_capacity: 64,
                ..AdmissionConfig::default()
            },
            broker_admission: AdmissionConfig {
                max_concurrency: 16,
                queue_capacity: 128,
                ..AdmissionConfig::default()
            },
            searcher_admission: AdmissionConfig {
                max_concurrency: 16,
                queue_capacity: 128,
                ..AdmissionConfig::default()
            },
            searcher_batch: BatchConfig::disabled(),
            client_deadline: Duration::from_secs(5),
            hedge_after: Some(Duration::from_millis(150)),
        }
    }
}

// Wire-codec adapters with the exact fn-pointer shapes the TCP layer
// takes. Decode failures surface as `None` → an error envelope (server) or
// a failed call (client), never a panic.

fn decode_fanout(b: &[u8]) -> Option<FanoutQuery> {
    wire::decode_fanout_query(b).ok()
}
fn encode_fanout(q: &FanoutQuery) -> Vec<u8> {
    wire::encode_fanout_query(q)
}
fn decode_partial(b: &[u8]) -> Option<PartialResponse> {
    wire::decode_partial_response(b).ok()
}
fn encode_partial(p: &PartialResponse) -> Vec<u8> {
    wire::encode_partial_response(p)
}
fn decode_query(b: &[u8]) -> Option<SearchQuery> {
    wire::decode_search_query(b).ok()
}
fn encode_query(q: &SearchQuery) -> Vec<u8> {
    wire::encode_search_query(q)
}
fn decode_search_resp(b: &[u8]) -> Option<SearchResponse> {
    wire::decode_search_response(b).ok()
}
fn encode_search_resp(s: &SearchResponse) -> Vec<u8> {
    wire::encode_search_response(s)
}

/// The three tiers running as TCP services over a topology's indexes.
pub struct NetServing {
    /// `[partition][replica]` searcher listeners (micro-batching front
    /// included — a no-op pass-through when batching is disabled).
    searchers: Vec<Vec<TcpTier<Arc<BatchingSearcher>>>>,
    /// `[partition][replica]` handles to the batchers behind the searcher
    /// listeners, kept so a drain can flush forming batches immediately.
    batchers: Vec<Vec<Arc<BatchingSearcher>>>,
    /// `[group][instance]` broker listeners.
    brokers: Vec<Vec<TcpTier<NetBroker>>>,
    /// Blender listeners.
    blenders: Vec<TcpTier<NetBlender>>,
    /// Resilience counters shared by every balancer in the network stack
    /// (separate from the wrapped topology's in-process counters).
    resilience: Arc<ResilienceMetrics>,
    client_deadline: Duration,
}

impl std::fmt::Debug for NetServing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServing")
            .field("searcher_tiers", &self.searchers.len())
            .field("broker_tiers", &self.brokers.len())
            .field("blender_tiers", &self.blenders.len())
            .finish()
    }
}

impl NetServing {
    /// Stands the three TCP tiers up over `topology`'s partition indexes.
    ///
    /// The topology keeps running as built (its own in-process nodes,
    /// real-time indexers, durability); the network tiers serve the *same*
    /// hot-swappable index handles, so events published to the topology's
    /// queue become visible to network queries at indexing speed.
    ///
    /// # Errors
    ///
    /// Propagates listener bind errors.
    pub fn over(topology: &SearchTopology, config: NetServingConfig) -> io::Result<Self> {
        let tc = topology.config();
        let pmap = topology.partition_map();
        let resilience = Arc::new(ResilienceMetrics::new());

        // --- Searcher tier: one listener per (partition, replica), each
        // fronted by a micro-batcher sharing the tier's metrics so batch
        // depth/wait histograms land in the serving snapshot. ------------
        let mut searchers: Vec<Vec<TcpTier<Arc<BatchingSearcher>>>> = Vec::new();
        let mut batchers: Vec<Vec<Arc<BatchingSearcher>>> = Vec::new();
        for p in 0..tc.num_partitions {
            let mut row = Vec::new();
            let mut batcher_row = Vec::new();
            for r in 0..tc.replicas_per_partition {
                let metrics = Arc::new(ServingMetrics::new());
                let batcher = Arc::new(BatchingSearcher::new(
                    SearcherService::new(p, Arc::clone(topology.handle(p, r))),
                    config.searcher_batch,
                    Arc::clone(&metrics),
                ));
                row.push(TcpTier::spawn_with_metrics(
                    &format!("net-searcher-{p}-{r}"),
                    Arc::clone(&batcher),
                    decode_fanout,
                    encode_partial,
                    config.searcher_admission.clone(),
                    metrics,
                )?);
                batcher_row.push(batcher);
            }
            searchers.push(row);
            batchers.push(batcher_row);
        }

        // --- Broker tier: instances fan out to searchers over TCP. ------
        let mut brokers: Vec<Vec<TcpTier<NetBroker>>> = Vec::new();
        for g in 0..tc.num_broker_groups {
            let mut instances = Vec::new();
            for b in 0..tc.broker_replicas {
                let balancers: Vec<Balancer<TcpChannel<FanoutQuery, PartialResponse>>> = pmap
                    .partitions_of_group(g)
                    .into_iter()
                    .map(|p| {
                        let channels = searchers[p]
                            .iter()
                            .map(|tier| {
                                TcpChannel::new(
                                    format!("{}-ch", tier.name()),
                                    tier.local_addr(),
                                    encode_fanout,
                                    decode_partial,
                                )
                            })
                            .collect();
                        Balancer::with_policies(
                            channels,
                            tc.health,
                            tc.retry,
                            tc.seed ^ 0x7C9 ^ ((g as u64) << 24) ^ ((b as u64) << 12) ^ p as u64,
                        )
                        .with_metrics(Arc::clone(&resilience))
                    })
                    .collect();
                let mut service = BrokerService::new(g, balancers, tc.searcher_deadline)
                    .with_metrics(Arc::clone(&resilience));
                // The serving config's knob wins; the topology's is the
                // fallback (it defaults to `None`, which used to leave
                // hedging silently off for every NetServing user).
                if let Some(hedge_after) = config.hedge_after.or(tc.hedge_after) {
                    service = service.with_hedging(hedge_after);
                }
                instances.push(TcpTier::spawn(
                    &format!("net-broker-{g}-{b}"),
                    service,
                    decode_fanout,
                    encode_partial,
                    config.broker_admission.clone(),
                )?);
            }
            brokers.push(instances);
        }

        // --- Blender tier. ----------------------------------------------
        let group_partitions: Vec<usize> = (0..tc.num_broker_groups)
            .map(|g| pmap.partitions_of_group(g).len())
            .collect();
        let mut blenders = Vec::new();
        for i in 0..tc.num_blenders {
            let groups: Vec<Balancer<TcpChannel<FanoutQuery, PartialResponse>>> = brokers
                .iter()
                .enumerate()
                .map(|(g, instances)| {
                    let channels = instances
                        .iter()
                        .map(|tier| {
                            TcpChannel::new(
                                format!("{}-ch", tier.name()),
                                tier.local_addr(),
                                encode_fanout,
                                decode_partial,
                            )
                        })
                        .collect();
                    Balancer::with_policies(
                        channels,
                        tc.health,
                        tc.retry,
                        tc.seed ^ 0x7CA ^ ((i as u64) << 24) ^ g as u64,
                    )
                    .with_metrics(Arc::clone(&resilience))
                })
                .collect();
            let service = BlenderService::new(
                groups,
                Arc::clone(topology.extractor()),
                Arc::clone(topology.images()),
                tc.ranking,
                tc.broker_deadline,
            )
            .with_group_partitions(group_partitions.clone())
            .with_metrics(Arc::clone(&resilience));
            blenders.push(TcpTier::spawn(
                &format!("net-blender-{i}"),
                service,
                decode_query,
                encode_search_resp,
                config.blender_admission.clone(),
            )?);
        }

        Ok(Self {
            searchers,
            batchers,
            brokers,
            blenders,
            resilience,
            client_deadline: config.client_deadline,
        })
    }

    /// A user client dialing the blender tier over TCP, with the same
    /// balancer policies (failover, breakers) the in-process front end
    /// uses.
    pub fn client(&self) -> NetClient {
        let channels = self
            .blenders
            .iter()
            .map(|tier| {
                TcpChannel::new(
                    format!("{}-ch", tier.name()),
                    tier.local_addr(),
                    encode_query,
                    decode_search_resp,
                )
            })
            .collect();
        let frontend = Arc::new(Balancer::new(channels).with_metrics(Arc::clone(&self.resilience)));
        SearchClient::new(frontend, self.client_deadline)
    }

    /// Resilience counters of the network serving path (balancer retries,
    /// breaker opens, shed/failed partition accounting).
    pub fn resilience_metrics(&self) -> &Arc<ResilienceMetrics> {
        &self.resilience
    }

    /// Addresses of the blender listeners (e.g. to aim a fault proxy at).
    pub fn blender_addrs(&self) -> Vec<SocketAddr> {
        self.blenders.iter().map(TcpTier::local_addr).collect()
    }

    /// Addresses of broker group `g`'s instances.
    pub fn broker_addrs(&self, g: usize) -> Vec<SocketAddr> {
        self.brokers[g].iter().map(TcpTier::local_addr).collect()
    }

    /// Addresses of partition `p`'s searcher replicas.
    pub fn searcher_addrs(&self, p: usize) -> Vec<SocketAddr> {
        self.searchers[p].iter().map(TcpTier::local_addr).collect()
    }

    /// Aggregated serving snapshot of the blender tier (admissions, sheds,
    /// queue/concurrency high-water marks summed over listeners).
    pub fn blender_serving(&self) -> ServingSnapshot {
        sum_snapshots(self.blenders.iter().map(|t| t.metrics().snapshot()))
    }

    /// Aggregated serving snapshot of the broker tier.
    pub fn broker_serving(&self) -> ServingSnapshot {
        sum_snapshots(
            self.brokers
                .iter()
                .flatten()
                .map(|t| t.metrics().snapshot()),
        )
    }

    /// Aggregated serving snapshot of the searcher tier.
    pub fn searcher_serving(&self) -> ServingSnapshot {
        sum_snapshots(
            self.searchers
                .iter()
                .flatten()
                .map(|t| t.metrics().snapshot()),
        )
    }

    /// Crashes one searcher replica's listener: connections severed, new
    /// connects refused. The wrapped topology (and its indexers) keep
    /// running.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn crash_searcher(&mut self, partition: usize, replica: usize) {
        self.searchers[partition][replica].crash();
    }

    /// Crashes one broker instance's listener.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn crash_broker(&mut self, group: usize, instance: usize) {
        self.brokers[group][instance].crash();
    }

    /// Gracefully drains one blender listener (in-flight answered, new
    /// requests shed with `Draining`, then the listener closes).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn drain_blender(&mut self, i: usize, timeout: Duration) -> bool {
        self.blenders[i].drain(timeout)
    }

    /// Gracefully drains the whole stack top-down: blenders first (user
    /// traffic stops being admitted), then brokers, then searchers — so a
    /// lower tier never disappears under an upper tier's in-flight work.
    ///
    /// Returns `true` if every tier went idle within its `timeout`.
    pub fn drain(&mut self, timeout: Duration) -> bool {
        let mut idle = true;
        for tier in &mut self.blenders {
            idle &= tier.drain(timeout);
        }
        for tier in self.brokers.iter_mut().flatten() {
            idle &= tier.drain(timeout);
        }
        // Flush forming batches before draining the listeners, so a drain
        // never waits out a batch window.
        for batcher in self.batchers.iter().flatten() {
            batcher.drain();
        }
        for tier in self.searchers.iter_mut().flatten() {
            idle &= tier.drain(timeout);
        }
        idle
    }
}

fn sum_snapshots(parts: impl Iterator<Item = ServingSnapshot>) -> ServingSnapshot {
    let mut out = ServingSnapshot::default();
    for s in parts {
        out.admitted += s.admitted;
        out.completed += s.completed;
        out.shed_rate_limited += s.shed_rate_limited;
        out.shed_queue_full += s.shed_queue_full;
        out.shed_deadline += s.shed_deadline;
        out.shed_draining += s.shed_draining;
        out.decode_errors += s.decode_errors;
        out.max_in_flight = out.max_in_flight.max(s.max_in_flight);
        out.max_queue_depth = out.max_queue_depth.max(s.max_queue_depth);
        out.batch_depth.merge(&s.batch_depth);
        out.batch_wait.merge(&s.batch_wait);
    }
    out
}
