//! The searcher service (bottom of Figure 10).
//!
//! One searcher owns one partition replica: it serves ANN queries over its
//! [`VisualIndex`] and returns its local top-k *with attributes attached*
//! (it owns the forward index, so no second lookup round-trip is needed).
//! The same index is concurrently maintained by the partition's real-time
//! indexing thread — the whole point of the paper's lock-free structures.

use std::sync::Arc;

use jdvs_core::ids::ImageId;
use jdvs_core::search::MultiQuery;
use jdvs_core::swap::IndexHandle;
use jdvs_core::VisualIndex;
use jdvs_net::rpc::Service;
use jdvs_vector::Neighbor;

use crate::protocol::{FanoutQuery, PartialHit, PartialResponse};

/// The per-partition query service.
///
/// The index is resolved through a hot-swappable [`IndexHandle`] per
/// query, so weekly full-index cutovers (Figure 2) are invisible to the
/// query path: a query in flight keeps its snapshot, the next query sees
/// the fresh index.
#[derive(Debug)]
pub struct SearcherService {
    partition: usize,
    handle: Arc<IndexHandle>,
}

impl SearcherService {
    /// Creates a searcher for `partition` over a swappable index handle.
    pub fn new(partition: usize, handle: Arc<IndexHandle>) -> Self {
        Self { partition, handle }
    }

    /// Convenience: a searcher over a fixed (never-swapped) index.
    pub fn for_index(partition: usize, index: Arc<VisualIndex>) -> Self {
        Self::new(partition, Arc::new(IndexHandle::new(index)))
    }

    /// This searcher's partition number.
    pub fn partition(&self) -> usize {
        self.partition
    }

    /// Snapshot of the current index (shared with the real-time indexer).
    pub fn index(&self) -> Arc<VisualIndex> {
        self.handle.get()
    }

    /// The swappable handle.
    pub fn handle(&self) -> &Arc<IndexHandle> {
        &self.handle
    }

    /// Executes a query locally (also the code path the RPC handler runs).
    ///
    /// A query carrying a [`FilterSpec`](jdvs_core::FilterSpec) takes the
    /// filtered engine paths, which push the attribute mask down into the
    /// block scan (and may escalate `nprobe` when the index allows it);
    /// unfiltered queries run the identical pre-existing paths. A query
    /// `budget` becomes a deadline on the filtered paths: probe escalation
    /// stops widening once the remaining time cannot pay for another
    /// round, returning the (possibly underfull) top-k on time.
    pub fn execute(&self, query: &FanoutQuery) -> PartialResponse {
        let index = self.handle.get();
        let nprobe = query.nprobe.unwrap_or(index.config().nprobe);
        let k = query.k.max(1);
        let deadline = query.budget.map(|b| std::time::Instant::now() + b);
        let neighbors = if query.compressed && index.has_pq() {
            // Two-stage PQ scan; the over-fetch ratio is the index's
            // configured rerank_factor knob.
            let rerank = index.config().rerank_factor;
            match &query.filter {
                Some(f) => index.search_compressed_filtered_with_budget(
                    &query.features,
                    k,
                    nprobe,
                    rerank,
                    f,
                    deadline,
                ),
                None => index.search_compressed(&query.features, k, nprobe, rerank),
            }
        } else {
            match &query.filter {
                Some(f) => {
                    index.search_filtered_with_budget(&query.features, k, nprobe, f, deadline)
                }
                None => index.search(&query.features, k, nprobe),
            }
        };
        // The records are guaranteed present (ids come from the same index
        // snapshot held across the whole query).
        self.partial_response(&index, neighbors)
    }

    /// Executes a batch of co-arriving queries against **one** index
    /// snapshot, amortizing the fast-scan block passes across the batch
    /// (see [`jdvs_core::search::multi_compressed_search`]).
    ///
    /// Results are positionally aligned with `queries` and bit-identical
    /// to calling [`SearcherService::execute`] per member on the same
    /// snapshot: the batch engine scores every query with its own LUTs and
    /// its own top-k, so coverage accounting and hit contents are
    /// unchanged — only the block walks are shared.
    pub fn execute_batch(&self, queries: &[FanoutQuery]) -> Vec<PartialResponse> {
        let index = self.handle.get();
        let default_nprobe = index.config().nprobe;
        // Split by engine path, remembering each member's slot so the
        // responses come back positionally aligned.
        let mut compressed: Vec<(usize, MultiQuery<'_>)> = Vec::new();
        let mut raw: Vec<(usize, MultiQuery<'_>)> = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            let mq = MultiQuery {
                features: &q.features,
                k: q.k.max(1),
                nprobe: q.nprobe.unwrap_or(default_nprobe),
                filter: q.filter.as_ref(),
            };
            if q.compressed && index.has_pq() {
                compressed.push((i, mq));
            } else {
                raw.push((i, mq));
            }
        }
        let mut out: Vec<PartialResponse> = vec![PartialResponse::default(); queries.len()];
        let rerank = index.config().rerank_factor;
        for (group, neighbors) in [
            {
                let members: Vec<MultiQuery<'_>> = compressed.iter().map(|(_, m)| *m).collect();
                (&compressed, index.search_compressed_multi(&members, rerank))
            },
            {
                let members: Vec<MultiQuery<'_>> = raw.iter().map(|(_, m)| *m).collect();
                (&raw, index.search_multi(&members))
            },
        ] {
            for ((slot, _), hits) in group.iter().zip(neighbors) {
                out[*slot] = self.partial_response(&index, hits);
            }
        }
        out
    }

    fn partial_response(&self, index: &VisualIndex, neighbors: Vec<Neighbor>) -> PartialResponse {
        let hits = neighbors
            .into_iter()
            .filter_map(|n| {
                let id = ImageId(n.id as u32);
                let attrs = index.attributes(id).ok()?;
                Some(PartialHit {
                    partition: self.partition,
                    local_id: id.0,
                    distance: n.distance,
                    product_id: attrs.product_id,
                    sales: attrs.sales,
                    price: attrs.price,
                    praise: attrs.praise,
                    url: attrs.url,
                })
            })
            .collect();
        PartialResponse {
            hits,
            partitions_ok: 1,
            partitions_total: 1,
            partitions_timed_out: 0,
            partitions_failed: 0,
            partitions_shed: 0,
        }
    }
}

impl Service for SearcherService {
    type Request = FanoutQuery;
    type Response = PartialResponse;

    fn handle(&self, req: FanoutQuery) -> PartialResponse {
        self.execute(&req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jdvs_core::IndexConfig;
    use jdvs_storage::model::{ProductAttributes, ProductId};
    use jdvs_vector::rng::Xoshiro256;
    use jdvs_vector::Vector;

    const DIM: usize = 8;

    fn index_with(n: usize) -> Arc<VisualIndex> {
        let mut rng = Xoshiro256::seed_from(3);
        let train: Vec<Vector> = (0..32)
            .map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let index = Arc::new(VisualIndex::bootstrap(
            IndexConfig {
                dim: DIM,
                num_lists: 4,
                nprobe: 4,
                ..Default::default()
            },
            &train,
        ));
        for i in 0..n {
            let v: Vector = (0..DIM).map(|_| rng.next_gaussian() as f32).collect();
            index
                .insert(
                    v,
                    ProductAttributes::new(ProductId(i as u64), i as u64, 100, 1, format!("u{i}"))
                        .with_category((i % 3) as u32)
                        .with_stock(i % 2 == 0),
                )
                .unwrap();
        }
        index.flush();
        index
    }

    #[test]
    fn execute_returns_hits_with_attributes() {
        let index = index_with(50);
        let searcher = SearcherService::for_index(3, Arc::clone(&index));
        assert_eq!(searcher.partition(), 3);
        let feats = index.features(jdvs_core::ids::ImageId(7)).unwrap();
        let resp = searcher.execute(&FanoutQuery {
            features: feats.into_inner(),
            k: 5,
            nprobe: Some(4),
            compressed: false,
            budget: None,
            filter: None,
        });
        assert_eq!(resp.hits.len(), 5);
        assert!(resp.is_complete());
        assert_eq!((resp.partitions_ok, resp.partitions_total), (1, 1));
        let top = &resp.hits[0];
        assert_eq!(top.local_id, 7);
        assert_eq!(top.partition, 3);
        assert_eq!(top.url, "u7");
        assert_eq!(top.product_id, ProductId(7));
        assert_eq!(top.sales, 7);
    }

    #[test]
    fn default_nprobe_comes_from_config() {
        let index = index_with(20);
        let searcher = SearcherService::for_index(0, Arc::clone(&index));
        let feats = index.features(jdvs_core::ids::ImageId(0)).unwrap();
        let resp = searcher.execute(&FanoutQuery {
            features: feats.into_inner(),
            k: 3,
            nprobe: None,
            compressed: false,
            budget: None,
            filter: None,
        });
        assert!(!resp.hits.is_empty());
    }

    #[test]
    fn execute_pushes_filter_into_scan() {
        let index = index_with(60);
        let searcher = SearcherService::for_index(0, Arc::clone(&index));
        let spec = jdvs_core::FilterSpec::by_category(1)
            .in_stock()
            .with_min_sales(10);
        let resp = searcher.execute(&FanoutQuery {
            features: vec![0.0; DIM],
            k: 8,
            nprobe: Some(4),
            compressed: false,
            budget: None,
            filter: Some(spec),
        });
        assert!(!resp.hits.is_empty());
        for hit in &resp.hits {
            let attrs = index.attributes(ImageId(hit.local_id)).unwrap();
            assert_eq!(attrs.category, 1);
            assert!(attrs.in_stock);
            assert!(attrs.sales >= 10);
        }
    }

    #[test]
    fn budget_caps_filtered_escalation() {
        fn build(escalation: usize) -> Arc<VisualIndex> {
            let mut rng = Xoshiro256::seed_from(29);
            let data: Vec<Vector> = (0..400)
                .map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect())
                .collect();
            let index = Arc::new(VisualIndex::bootstrap(
                IndexConfig {
                    dim: DIM,
                    num_lists: 8,
                    nprobe: 1,
                    nprobe_escalation: escalation,
                    ..Default::default()
                },
                &data,
            ));
            for (i, v) in data.iter().enumerate() {
                index
                    .insert(
                        v.clone(),
                        ProductAttributes::new(ProductId(i as u64), 0, 0, 0, format!("u{i}"))
                            .with_category((i % 50) as u32),
                    )
                    .unwrap();
            }
            index.flush();
            index
        }
        let escalating = SearcherService::for_index(0, build(8));
        let capped = SearcherService::for_index(0, build(0));
        let query = |budget| FanoutQuery {
            features: vec![0.0; DIM],
            k: 8,
            nprobe: Some(1),
            compressed: false,
            budget,
            filter: Some(jdvs_core::FilterSpec::by_category(7)), // ~2% of images
        };
        // An already-expired budget stops escalation before its first
        // widening round: the response is exactly what an
        // escalation-disabled index returns from the base probe.
        let hurried = escalating.execute(&query(Some(std::time::Duration::ZERO)));
        assert_eq!(hurried, capped.execute(&query(None)));
        assert!(
            hurried.hits.len() < 8,
            "a 1-list probe at ~2% selectivity should come back underfull"
        );
        // A generous budget escalates exactly like no budget at all.
        let relaxed = escalating.execute(&query(Some(std::time::Duration::from_secs(60))));
        assert_eq!(relaxed, escalating.execute(&query(None)));
        assert_eq!(relaxed.hits.len(), 8, "escalation should fill the top-k");
    }

    #[test]
    fn hits_are_sorted_by_distance() {
        let index = index_with(100);
        let searcher = SearcherService::for_index(0, index);
        let resp = searcher.execute(&FanoutQuery {
            features: vec![0.0; DIM],
            k: 10,
            nprobe: Some(4),
            compressed: false,
            budget: None,
            filter: None,
        });
        for w in resp.hits.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn execute_batch_matches_execute_per_member() {
        let mut rng = Xoshiro256::seed_from(17);
        let data: Vec<Vector> = (0..120)
            .map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let index = Arc::new(VisualIndex::bootstrap(
            IndexConfig {
                dim: DIM,
                num_lists: 4,
                nprobe: 4,
                pq_subspaces: Some(DIM / 2),
                pq_bits: 4,
                ..Default::default()
            },
            &data,
        ));
        for (i, v) in data.iter().enumerate() {
            index
                .insert(
                    v.clone(),
                    ProductAttributes::new(ProductId(i as u64), i as u64, 9, 1, format!("eb/u{i}"))
                        .with_category((i % 3) as u32)
                        .with_stock(i % 4 != 0),
                )
                .unwrap();
        }
        index.flush();
        let searcher = SearcherService::for_index(2, Arc::clone(&index));
        // A mixed batch: compressed and raw members, varying k, nprobe and
        // filters, must come back positionally aligned and bit-identical to
        // solo execution.
        let queries: Vec<FanoutQuery> = (0..7u32)
            .map(|i| FanoutQuery {
                features: index
                    .features(jdvs_core::ids::ImageId(i * 3))
                    .unwrap()
                    .into_inner(),
                k: 1 + i as usize % 5,
                nprobe: if i % 2 == 0 {
                    Some(1 + i as usize % 4)
                } else {
                    None
                },
                compressed: i % 3 != 0,
                budget: None,
                filter: match i % 3 {
                    0 => None,
                    1 => Some(jdvs_core::FilterSpec::by_category(i % 3).in_stock()),
                    _ => Some(jdvs_core::FilterSpec::none().with_min_sales(30)),
                },
            })
            .collect();
        let batched = searcher.execute_batch(&queries);
        assert_eq!(batched.len(), queries.len());
        for (q, got) in queries.iter().zip(&batched) {
            assert_eq!(
                got,
                &searcher.execute(q),
                "k={} compressed={}",
                q.k,
                q.compressed
            );
        }
        assert!(searcher.execute_batch(&[]).is_empty());
    }

    #[test]
    fn service_impl_delegates_to_execute() {
        let index = index_with(10);
        let searcher = SearcherService::for_index(0, Arc::clone(&index));
        let feats = index.features(jdvs_core::ids::ImageId(2)).unwrap();
        let q = FanoutQuery {
            features: feats.into_inner(),
            k: 1,
            nprobe: Some(4),
            compressed: false,
            budget: None,
            filter: None,
        };
        let via_service = Service::handle(&searcher, q.clone());
        let via_execute = searcher.execute(&q);
        assert_eq!(via_service, via_execute);
    }
}
