//! Scheduler-aware threads, API-compatible with `std::thread` for the
//! operations this workspace uses (`spawn`, `yield_now`, `JoinHandle`).
//!
//! Outside a [`crate::model`] run the shim degrades to plain std threads,
//! so code instrumented with these types keeps working in ordinary tests
//! and binaries compiled with `--cfg loom`.

use std::sync::{Arc, Mutex};

use crate::rt;

enum Inner<T> {
    /// Spawned inside a model: identified by its logical thread id, with
    /// the closure's outcome parked where the carrier thread left it.
    Model {
        tid: usize,
        result: Arc<Mutex<Option<std::thread::Result<T>>>>,
    },
    /// Spawned outside any model: a real std thread.
    Std(std::thread::JoinHandle<T>),
}

/// Owned permission to join a spawned thread; see [`spawn`].
pub struct JoinHandle<T>(Inner<T>);

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JoinHandle(..)")
    }
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish, yielding control to the scheduler,
    /// and returns the closure's result (`Err` if it panicked).
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Inner::Model { tid, result } => {
                rt::join_thread(tid);
                result
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take()
                    .expect("loom-shim: thread result already taken")
            }
            Inner::Std(h) => h.join(),
        }
    }
}

/// Spawns a scheduler-controlled thread (or a std thread when no model is
/// running).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match rt::current() {
        Some((exec, _)) => {
            let result = Arc::new(Mutex::new(None));
            let slot = Arc::clone(&result);
            let tid = rt::spawn_thread(&exec, move || {
                // Capture the payload for `join` exactly like std does,
                // then re-raise so the scheduler's carrier still records
                // the thread as panicked (an unjoined panicking thread
                // must fail the whole model, as in real loom).
                let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                let panicked = out.is_err();
                *slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(out);
                if panicked {
                    panic!("loom-shim: model thread panicked");
                }
            });
            // Spawning is an interleaving point: the child may run first.
            rt::schedule_point();
            JoinHandle(Inner::Model { tid, result })
        }
        None => JoinHandle(Inner::Std(std::thread::spawn(f))),
    }
}

/// Offers the scheduler a chance to run another thread.
pub fn yield_now() {
    if rt::current().is_some() {
        rt::schedule_point();
    } else {
        std::thread::yield_now();
    }
}
