//! # jdvs-vector
//!
//! Dense vector primitives for the jdvs visual search system: owned feature
//! vectors, distance kernels, bounded top-k selection, k-means clustering
//! (used to train the IVF coarse quantizer of the inverted index) and
//! product quantization (the compressed-scan mode referenced by the paper's
//! related work \[19\]).
//!
//! Everything in this crate is deterministic: all randomized routines take a
//! seed or an explicit [`rng::SplitMix64`]/[`rng::Xoshiro256`] generator, so
//! index builds and experiments are reproducible run-to-run.
//!
//! ## Example
//!
//! ```
//! use jdvs_vector::{Vector, distance, topk::TopK};
//!
//! let query = Vector::from(vec![1.0, 0.0]);
//! let candidates = [
//!     Vector::from(vec![0.9, 0.1]),
//!     Vector::from(vec![-1.0, 0.0]),
//!     Vector::from(vec![1.0, 0.05]),
//! ];
//! let mut topk = TopK::new(2);
//! for (i, c) in candidates.iter().enumerate() {
//!     topk.push(i as u64, distance::squared_l2(query.as_slice(), c.as_slice()));
//! }
//! let best: Vec<u64> = topk.into_sorted_vec().into_iter().map(|n| n.id).collect();
//! assert_eq!(best, vec![2, 0]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coarse;
pub mod distance;
pub mod kmeans;
pub mod lsh;
pub mod pq;
pub mod rng;
pub mod simd;
pub mod topk;
pub mod vector;

pub use coarse::CentroidGraph;
pub use distance::DistanceMetric;
pub use kmeans::{Kmeans, KmeansConfig};
pub use pq::ProductQuantizer;
pub use topk::{Neighbor, TopK};
pub use vector::Vector;
