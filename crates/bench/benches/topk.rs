//! Top-k selection — every merge level of the hierarchy (searcher scan,
//! broker merge, blender merge) runs one of these.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use jdvs_vector::rng::Xoshiro256;
use jdvs_vector::topk::TopK;

fn bench_topk(c: &mut Criterion) {
    let mut rng = Xoshiro256::seed_from(5);
    let stream: Vec<(u64, f32)> = (0..100_000u64)
        .map(|i| (i, rng.next_f32() * 1_000.0))
        .collect();

    let mut group = c.benchmark_group("topk");
    group.throughput(Throughput::Elements(stream.len() as u64));
    for k in [10usize, 100, 1_000] {
        group.bench_with_input(BenchmarkId::new("select_from_100k", k), &k, |b, &k| {
            b.iter(|| {
                let mut topk = TopK::new(k);
                for &(id, d) in black_box(&stream) {
                    topk.push(id, d);
                }
                topk.into_sorted_vec().len()
            })
        });
    }

    // Broker-style merge of 5 partial top-100 lists.
    let partials: Vec<Vec<(u64, f32)>> = (0..5)
        .map(|p| {
            let mut t = TopK::new(100);
            for &(id, d) in stream.iter().skip(p * 20_000).take(20_000) {
                t.push(id, d);
            }
            t.into_sorted_vec()
                .into_iter()
                .map(|n| (n.id, n.distance))
                .collect()
        })
        .collect();
    group.throughput(Throughput::Elements(500));
    group.bench_function("merge_5_partials_of_100", |b| {
        b.iter(|| {
            let mut merged = TopK::new(100);
            for partial in black_box(&partials) {
                for &(id, d) in partial {
                    merged.push(id, d);
                }
            }
            merged.into_sorted_vec().len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_topk);
criterion_main!(benches);
