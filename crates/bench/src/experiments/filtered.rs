//! The attribute-filtered search experiment: filter pushdown inside the
//! block scan vs the score-then-discard post-filter baseline, across a
//! selectivity sweep.
//!
//! Every indexed image gets `sales = i` over `i in 0..n`, so a
//! `min_sales` threshold dials the admitted fraction exactly: selectivity
//! `s` means the filter admits the top `s·n` images by sales. Both legs
//! probe the same lists and return **bit-identical** result sets (asserted
//! before timing); the only difference is *when* the filter verdict
//! lands — before the vector fetch (pushdown: a rejected candidate costs
//! bitmap word loads, and an all-rejected block skips the distance kernel
//! entirely) or after the distance kernel (post-filter baseline).
//!
//! The second half measures selectivity-aware nprobe escalation: at 0.1%
//! selectivity a fixed `nprobe` strands top-k fill far below `k`, while
//! the escalating index widens probing until the shortlist fills.

use std::time::Instant;

use jdvs_core::search;
use jdvs_core::{FilterSpec, IndexConfig, VisualIndex};
use jdvs_storage::model::{ImageKey, ProductAttributes, ProductId};
use jdvs_vector::rng::Xoshiro256;
use jdvs_vector::simd;
use jdvs_vector::Vector;

use crate::report::ExperimentResult;
use crate::row;

use super::Ctx;

const DIM: usize = 32;
const NUM_LISTS: usize = 64;
const K: usize = 10;
const NPROBE: usize = 8;

/// The selectivity sweep, highest to lowest.
const SELECTIVITIES: &[f64] = &[0.5, 0.1, 0.01, 0.001];

/// Builds a populated index whose `sales` attribute is the insertion
/// index, giving `min_sales` filters exact selectivity control.
fn build(data: &[Vector], nprobe_escalation: usize) -> VisualIndex {
    let index = VisualIndex::bootstrap(
        IndexConfig {
            dim: DIM,
            num_lists: NUM_LISTS,
            initial_list_capacity: 64,
            kmeans_iters: 6,
            nprobe_escalation,
            ..Default::default()
        },
        data,
    );
    for (i, v) in data.iter().enumerate() {
        index
            .insert(
                v.clone(),
                ProductAttributes::new(
                    ProductId(i as u64),
                    i as u64,
                    99 + (i as u64 % 1_000),
                    i as u64 % 50,
                    format!("flt/u{i}"),
                )
                .with_category((i % 7) as u32),
            )
            .expect("insert");
    }
    index.flush();
    // 5% logical deletions so the validity mask is ANDed on the measured
    // path, exactly as in production.
    for i in (0..data.len()).step_by(20) {
        let url = format!("flt/u{i}");
        index
            .invalidate(ImageKey::from_url(&url), &url)
            .expect("invalidate");
    }
    index
}

/// The `min_sales` spec admitting ~`selectivity` of `n` images.
fn spec_for(n: usize, selectivity: f64) -> FilterSpec {
    FilterSpec::none().with_min_sales((n as f64 * (1.0 - selectivity)) as u64)
}

/// Per-query mean latency in µs of `f` over `queries`, `repeats` times.
fn measure(queries: &[Vector], repeats: usize, mut f: impl FnMut(&[f32]) -> usize) -> f64 {
    let mut sink = 0usize;
    let t0 = Instant::now();
    for _ in 0..repeats {
        for q in queries {
            sink = sink.wrapping_add(f(q.as_slice()).wrapping_add(1));
        }
    }
    let elapsed = t0.elapsed();
    assert!(sink > 0, "scan ran");
    elapsed.as_secs_f64() * 1e6 / (repeats * queries.len()) as f64
}

/// `filtered`: pushdown vs post-filter latency and the escalation fill
/// frontier across the selectivity sweep.
pub fn filtered(ctx: &Ctx) -> ExperimentResult {
    let n_images = ctx.scaled(30_000, 4_000);
    let mut rng = Xoshiro256::seed_from(0xF117);
    let data: Vec<Vector> = (0..n_images)
        .map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect())
        .collect();
    let queries: Vec<Vector> = (0..40)
        .map(|i| data[(i * 131) % n_images].clone())
        .collect();

    let fixed = build(&data, 0); // fixed nprobe: no escalation
    let escalating = build(&data, NUM_LISTS); // may widen to every list

    let mut r = ExperimentResult::new(
        "filtered",
        "Attribute-filtered search: pushdown vs post-filter, with nprobe escalation fill",
        "Section 2.4: results are restricted by product attributes (category, stock, price, sales) before ranking",
    );

    let repeats = if ctx.quick { 5 } else { 20 };
    let mut speedup_at_low_selectivity = f64::INFINITY;
    for &s in SELECTIVITIES {
        let spec = spec_for(n_images, s);

        // Identity gate before timing: pushdown must return exactly the
        // post-filter reference's results, on both index configurations.
        for q in &queries {
            for index in [&fixed, &escalating] {
                let reference =
                    search::filtered_ann_search_reference(index, q.as_slice(), K, NPROBE, &spec);
                let engine = search::filtered_ann_search_with_threads(
                    index,
                    q.as_slice(),
                    K,
                    NPROBE,
                    &spec,
                    1,
                );
                assert_eq!(engine, reference, "pushdown diverged from post-filter");
            }
        }

        let pushdown_us = measure(&queries, repeats, |q| {
            search::filtered_ann_search_with_threads(&fixed, q, K, NPROBE, &spec, 1).len()
        });
        let postfilter_us = measure(&queries, repeats, |q| {
            search::filtered_ann_search_reference(&fixed, q, K, NPROBE, &spec).len()
        });
        let speedup = postfilter_us / pushdown_us;
        if s <= 0.01 {
            speedup_at_low_selectivity = speedup_at_low_selectivity.min(speedup);
        }

        // Top-k fill and recall: how much of the wanted k arrives, with
        // and without escalation, and how close the escalated shortlist
        // is to the filtered ground truth.
        let mut fill_fixed = 0usize;
        let mut fill_esc = 0usize;
        let mut recall_hits = 0usize;
        let mut truth_total = 0usize;
        for q in &queries {
            fill_fixed +=
                search::filtered_ann_search_with_threads(&fixed, q.as_slice(), K, NPROBE, &spec, 1)
                    .len();
            let esc = search::filtered_ann_search_with_threads(
                &escalating,
                q.as_slice(),
                K,
                NPROBE,
                &spec,
                1,
            );
            fill_esc += esc.len();
            let truth = search::filtered_brute_force(&escalating, q.as_slice(), K, &spec);
            truth_total += truth.len();
            recall_hits += esc
                .iter()
                .filter(|n| truth.iter().any(|t| t.id == n.id))
                .count();
        }
        let denom = (queries.len() * K) as f64;
        r.push_row(row![
            "selectivity" => format!("{s}"),
            "pushdown_us" => format!("{pushdown_us:.1}"),
            "postfilter_us" => format!("{postfilter_us:.1}"),
            "speedup" => format!("{speedup:.2}"),
            "identical_results" => "true",
            "fill_fixed_nprobe" => format!("{:.3}", fill_fixed as f64 / denom),
            "fill_escalated" => format!("{:.3}", fill_esc as f64 / denom),
            "recall_vs_filtered_truth" => format!("{:.3}", recall_hits as f64 / truth_total.max(1) as f64),
        ]);

        if s <= 0.001 {
            // Gate against the *achievable* fill (the filtered ground truth
            // may hold fewer than k admitted images on scaled-down corpora);
            // at full scale truth fills every slot and this is fill >= 0.99.
            assert!(
                fill_esc as f64 >= 0.99 * truth_total as f64,
                "escalation must recover >= 99% of the achievable filtered top-k \
                 at 0.1% selectivity (got {fill_esc}/{truth_total})"
            );
        }
    }

    // Quick runs exist for correctness CI on shared VMs; the timing bar is
    // enforced on full runs, which write the bench_results artifact.
    assert!(
        ctx.quick || speedup_at_low_selectivity >= 2.0,
        "pushdown must be >= 2x the post-filter scan at <= 1% selectivity (got {speedup_at_low_selectivity:.2}x)"
    );
    r.note(format!(
        "{n_images} images, dim {DIM}, {NUM_LISTS} lists, nprobe {NPROBE}, k {K}, 5% deleted, min_sales filter over sales=i; active kernel: {}",
        simd::active().name()
    ));
    r.note(format!(
        "pushdown speedup at <= 1% selectivity: {speedup_at_low_selectivity:.2}x (acceptance bar: >= 2x, identical result sets)"
    ));
    r.note(format!(
        "escalation cap {NUM_LISTS} lists vs fixed nprobe {NPROBE}; both legs bit-identical to the post-filter reference before timing"
    ));
    r
}
