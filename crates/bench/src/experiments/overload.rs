//! The serving-tier overload experiment: the three tiers on real TCP
//! sockets, driven open-loop past saturation.
//!
//! Not a paper figure: the paper reports steady-state QPS and latency
//! (Figures 12–13) but never publishes overload behavior. This experiment
//! prices the admission-control front door the reproduction adds: when
//! offered load is ~3x sustained capacity, goodput must hold (>= 80% of
//! capacity) and the excess must be answered by fast `Overloaded` sheds at
//! admission instead of queueing into collapse.
//!
//! Protocol:
//!
//! 1. **Capacity probe** — drive the blender tier open-loop at 2x its
//!    configured token rate. Admission clips the excess, so the accepted
//!    rate *is* the sustained capacity `C`.
//! 2. **Overload run** — drive at 3x `C`. Record goodput, the
//!    goodput/capacity ratio, shed latency (p50/p99) and the coverage
//!    identity (`ok + timed_out + failed + shed == total`) on every
//!    accepted response.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use jdvs_net::admission::AdmissionConfig;
use jdvs_net::rpc::RpcError;
use jdvs_search::{NetServing, NetServingConfig};
use jdvs_workload::openloop::{
    OpenLoopConfig, OpenLoopDriver, OpenLoopOutcome, OpenLoopReport, RateSweepPoint,
};
use jdvs_workload::queries::QueryGenerator;
use jdvs_workload::scenario::{World, WorldConfig};

use crate::report::ExperimentResult;
use crate::row;

use super::Ctx;

/// Token rate configured at the blender front door: the deliberate
/// bottleneck, set well below what the fan-out path can serve so the
/// capacity probe measures admission, not the host's CPU of the day.
const BLENDER_RATE: f64 = 300.0;

fn overload_world(ctx: &Ctx) -> WorldConfig {
    let mut config = WorldConfig::default();
    config.catalog.num_products = ctx.scaled(400, 60);
    config.catalog.num_clusters = 8;
    config.topology.index.dim = 16;
    config.topology.index.num_lists = 8;
    config.topology.index.nprobe = 4;
    config.topology.num_partitions = 4;
    config.topology.replicas_per_partition = 1;
    config.topology.num_broker_groups = 2;
    config.topology.broker_replicas = 1;
    // One blender so capacity has one front door to meter.
    config.topology.num_blenders = 1;
    config.topology.ranking = jdvs_search::RankingPolicy::similarity_only();
    config.seed = 0x0_5EED_10AD;
    config
}

fn drive(
    serving: &NetServing,
    world: &World,
    generator: &QueryGenerator,
    rate: f64,
    window: Duration,
    workers: usize,
    violations: &AtomicU64,
) -> OpenLoopReport {
    let client = serving.client();
    OpenLoopDriver::run(
        OpenLoopConfig {
            rate,
            duration: window,
            workers,
        },
        || {
            let (query, _) = generator.next_query(world.images(), 5);
            match client.search(query) {
                Ok(resp) => {
                    if resp.partitions_ok
                        + resp.partitions_timed_out
                        + resp.partitions_failed
                        + resp.partitions_shed
                        != resp.partitions_total
                    {
                        violations.fetch_add(1, Ordering::Relaxed);
                    }
                    OpenLoopOutcome::Accepted
                }
                Err(RpcError::Overloaded) => OpenLoopOutcome::Shed,
                Err(_) => OpenLoopOutcome::Failed,
            }
        },
    )
}

fn push_phase(result: &mut ExperimentResult, phase: &str, report: &OpenLoopReport) {
    result.push_row(row![
        "phase" => phase,
        "offered_per_sec" => format!("{:.0}", report.offered_rate()),
        "goodput_per_sec" => format!("{:.0}", report.goodput()),
        "accepted" => report.accepted,
        "shed" => report.shed,
        "failed" => report.failed,
        "late_arrivals" => report.late,
        "accepted_p50_ms" => format!("{:.1}", report.accepted_latency.percentile(0.50).as_secs_f64() * 1e3),
        "accepted_p99_ms" => format!("{:.1}", report.accepted_latency.percentile(0.99).as_secs_f64() * 1e3),
        "shed_p50_ms" => format!("{:.1}", report.shed_latency.percentile(0.50).as_secs_f64() * 1e3),
        "shed_p99_ms" => format!("{:.1}", report.shed_latency.percentile(0.99).as_secs_f64() * 1e3),
    ]);
}

/// `serving`: goodput under ~3x overload through the TCP serving tier.
pub fn serving_overload(ctx: &Ctx) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "serving",
        "Serving tier under overload: admission control and graceful degradation",
        "not in paper — overload behavior of the Section 3.2 serving path",
    );

    let world = World::build(overload_world(ctx));
    let serving = NetServing::over(
        world.topology(),
        NetServingConfig {
            blender_admission: AdmissionConfig {
                rate_limit: Some(BLENDER_RATE),
                burst: 32,
                max_concurrency: 8,
                queue_capacity: 64,
                ..AdmissionConfig::default()
            },
            // Hedging on (the documented default): under overload, hedged
            // broker calls must not double-count partitions — the verdict
            // row asserts the coverage identity held on every response.
            hedge_after: Some(Duration::from_millis(150)),
            ..NetServingConfig::default()
        },
    )
    .expect("bind serving tiers");
    let generator = QueryGenerator::new(world.catalog(), 31);
    let violations = AtomicU64::new(0);

    // Phase 1: capacity probe at 2x the configured token rate.
    let probe = drive(
        &serving,
        &world,
        &generator,
        BLENDER_RATE * 2.0,
        ctx.window(Duration::from_secs(3)),
        16,
        &violations,
    );
    let capacity = probe.goodput();
    push_phase(&mut result, "capacity-probe", &probe);

    // Phase 1b: goodput-vs-offered curve. Sweep the offered rate from
    // well under capacity to deep overload; the curve should track the
    // offered rate up to capacity and plateau there while the shed ratio
    // climbs — the signature of graceful (not collapsing) degradation.
    let sweep_rates: Vec<f64> = [0.5, 0.8, 1.0, 1.5, 2.0, 3.0]
        .iter()
        .map(|f| (capacity * f).max(10.0))
        .collect();
    let sweep_client = serving.client();
    let sweep: Vec<RateSweepPoint> = OpenLoopDriver::sweep(
        &sweep_rates,
        OpenLoopConfig {
            rate: 1.0, // overridden per point
            duration: ctx.window(Duration::from_millis(1500)),
            workers: 24,
        },
        || {
            let (query, _) = generator.next_query(world.images(), 5);
            match sweep_client.search(query) {
                Ok(resp) => {
                    if resp.partitions_ok
                        + resp.partitions_timed_out
                        + resp.partitions_failed
                        + resp.partitions_shed
                        != resp.partitions_total
                    {
                        violations.fetch_add(1, Ordering::Relaxed);
                    }
                    OpenLoopOutcome::Accepted
                }
                Err(RpcError::Overloaded) => OpenLoopOutcome::Shed,
                Err(_) => OpenLoopOutcome::Failed,
            }
        },
    );
    for point in &sweep {
        result.push_row(row![
            "phase" => "rate-sweep",
            "offered_per_sec" => format!("{:.0}", point.report.offered_rate()),
            "offered_over_capacity" => format!("{:.2}", point.rate / capacity.max(1e-9)),
            "goodput_per_sec" => format!("{:.0}", point.report.goodput()),
            "shed_ratio" => format!("{:.2}", point.report.shed_ratio()),
            "failed" => point.report.failed,
            "accepted_p50_ms" => format!("{:.1}", point.report.accepted_latency.percentile(0.50).as_secs_f64() * 1e3),
            "accepted_p99_ms" => format!("{:.1}", point.report.accepted_latency.percentile(0.99).as_secs_f64() * 1e3),
        ]);
    }

    // Phase 2: sustained ~3x overload.
    let overload = drive(
        &serving,
        &world,
        &generator,
        capacity * 3.0,
        ctx.window(Duration::from_secs(4)),
        24,
        &violations,
    );
    push_phase(&mut result, "overload-3x", &overload);

    // With hedging enabled, a late primary racing its hedge must still
    // account each partition exactly once. This is a correctness property,
    // not a measurement — fail loudly rather than record a bad row.
    assert_eq!(
        violations.load(Ordering::Relaxed),
        0,
        "hedged serving violated partitions_ok + timed_out + failed + shed == total"
    );

    let ratio = if capacity > 0.0 {
        overload.goodput() / capacity
    } else {
        0.0
    };
    result.push_row(row![
        "phase" => "verdict",
        "capacity_per_sec" => format!("{:.0}", capacity),
        "goodput_ratio" => format!("{:.2}", ratio),
        "goodput_holds_80pct" => (ratio >= 0.8).to_string(),
        "shed_ratio_at_3x" => format!("{:.2}", overload.shed_ratio()),
        "accounting_violations" => violations.load(Ordering::Relaxed),
    ]);
    result.note(format!(
        "capacity probed at 2x the {BLENDER_RATE:.0}/s token rate (admission clips, so accepted \
         rate = sustained capacity); the rate-sweep rows trace the goodput-vs-offered curve from \
         0.5x to 3x capacity; the overload phase offers 3x capacity open-loop. Goodput held \
         {:.0}% of capacity; every shed was answered at admission (p99 {:.1} ms) and {} accepted \
         responses violated the coverage identity.",
        ratio * 100.0,
        overload.shed_latency.percentile(0.99).as_secs_f64() * 1e3,
        violations.load(Ordering::Relaxed),
    ));
    result
}
