//! String-literal "regex" strategies. The test suite only uses the shapes
//! `.{m,n}` and `.{n}` (arbitrary strings with bounded length); anything else
//! falls back to a printable string of length 0..=32.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    match rest.split_once(',') {
        Some((lo, hi)) => Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?)),
        None => {
            let n = rest.trim().parse().ok()?;
            Some((n, n))
        }
    }
}

fn printable_char(rng: &mut TestRng) -> char {
    (0x20u8 + (rng.next_u64() % 95) as u8) as char
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 32));
        let len = rng.usize_inclusive(lo, hi);
        (0..len).map(|_| printable_char(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_repeat_respects_bounds() {
        let mut rng = TestRng::deterministic("str");
        for _ in 0..200 {
            let s = ".{1,40}".generate(&mut rng);
            assert!((1..=40).contains(&s.chars().count()), "len {}", s.len());
            let e = ".{0,64}".generate(&mut rng);
            assert!(e.chars().count() <= 64);
        }
    }

    #[test]
    fn exact_repeat() {
        let mut rng = TestRng::deterministic("str2");
        assert_eq!(".{7}".generate(&mut rng).chars().count(), 7);
    }
}
