//! Offline shim for the subset of `crossbeam` used in this workspace:
//! MPMC channels (`crossbeam::channel`) and scoped threads
//! (`crossbeam::thread::scope`). Backed entirely by `std`.

pub mod channel;
pub mod thread;
