//! Index operation statistics.

use jdvs_metrics::{Counter, Gauge};

/// Counters describing an index partition's lifetime activity.
#[derive(Debug, Default)]
pub struct IndexStats {
    /// Fresh image insertions (new forward-index records).
    pub inserts: Counter,
    /// Insertions satisfied by reuse (re-listing of a known image: bitmap
    /// flip instead of extraction + append).
    pub reuses: Counter,
    /// Numeric/URL attribute updates applied.
    pub updates: Counter,
    /// Logical deletions (validity bits cleared).
    pub deletions: Counter,
    /// Queries served.
    pub searches: Counter,
    /// Applied-offset watermark: the queue offset *after* the newest event
    /// applied to this index (`RealtimeIndexer::apply_at` maintains it).
    /// Checkpoints record this value; recovery replays the log from it.
    pub applied_offset: Gauge,
}

impl IndexStats {
    /// Creates zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sum of all mutation counters (Table 1's "total").
    pub fn total_mutations(&self) -> u64 {
        self.inserts.get() + self.reuses.get() + self.updates.get() + self.deletions.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_mutations() {
        let s = IndexStats::new();
        s.inserts.add(2);
        s.reuses.add(3);
        s.updates.add(5);
        s.deletions.add(7);
        s.searches.add(100); // not a mutation
        assert_eq!(s.total_mutations(), 17);
    }
}
